#!/usr/bin/env python
"""Guard the declared ``requires-python = ">=3.9"`` floor.

Two checks over every Python file under ``src/``:

1. **Syntax** — each file must parse with ``ast.parse(...,
   feature_version=(3, 9))``, so 3.10+ syntax (``match``/``case``,
   parenthesized context managers relying on new grammar, ...) is
   rejected on any interpreter, not just when someone happens to run
   an actual 3.9.
2. **Known version-gated APIs** — a denylist of attribute calls that
   parse everywhere but explode at runtime on 3.9/3.10.  The motivating
   regression: ``BaseException.add_note`` (3.11+) inside an error path,
   where the report about the real failure itself raised
   ``AttributeError`` on 3.9.

Run directly (``python tools/check_py39_compat.py [roots...]``, exit 1
on findings) — CI's ``py39-compat`` job does — or through the tier-1
suite via ``tests/test_py39_compat.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Sequence

MIN_VERSION = (3, 9)

# Attribute calls that are syntactically fine everywhere but need a newer
# runtime than the declared floor.  Maps attribute name -> reason.
BANNED_ATTRIBUTE_CALLS = {
    "add_note": "BaseException.add_note is Python 3.11+",
}


def check_source(path: Path, source: str) -> List[str]:
    """All 3.9-compat findings for one file, as ``path:line: message``."""
    try:
        tree = ast.parse(source, filename=str(path), feature_version=MIN_VERSION)
    except SyntaxError as error:
        line = error.lineno or 0
        return [
            f"{path}:{line}: not valid Python "
            f"{'.'.join(map(str, MIN_VERSION))} syntax: {error.msg}"
        ]
    findings = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in BANNED_ATTRIBUTE_CALLS
        ):
            reason = BANNED_ATTRIBUTE_CALLS[node.func.attr]
            findings.append(
                f"{path}:{node.lineno}: call to .{node.func.attr}() — {reason}"
            )
    return findings


def check_tree(roots: Sequence[Path]) -> List[str]:
    findings: List[str] = []
    for root in roots:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            findings.extend(check_source(path, path.read_text(encoding="utf-8")))
    return findings


def main(argv: Sequence[str]) -> int:
    roots = [Path(arg) for arg in argv] or [Path("src")]
    findings = check_tree(roots)
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print(
            f"error: {len(findings)} Python-3.9 compatibility finding(s)",
            file=sys.stderr,
        )
        return 1
    checked = ", ".join(str(root) for root in roots)
    print(f"ok: {checked} is Python {'.'.join(map(str, MIN_VERSION))} compatible")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
