"""Paired event-vs-optimized timing harness (development tool).

Runs the two backends alternately in one process and reports the median
of per-pair CPU-time ratios, which cancels the machine's slow drift far
better than comparing two best-of-N aggregates.

Usage: PYTHONPATH=src python tools/ratio_bench.py [policy ...] [--pairs N]
       [--accesses N]
"""

from __future__ import annotations

import statistics
import sys
import time

from repro.bench import MACRO_MIX, MACRO_SEED, _macro_config
from repro.sim.system import System


def run_once(policy: str, backend: str, accesses: int) -> float:
    system = System(
        _macro_config(policy), list(MACRO_MIX), seed=MACRO_SEED, backend=backend
    )
    t0 = time.process_time()
    system.run(accesses)
    return time.process_time() - t0


def main(argv) -> None:
    policies = [a for a in argv if not a.startswith("--")]
    if not policies:
        policies = ["fcfs", "demand-first", "padc", "padc-rank"]
    pairs = 7
    accesses = 20000
    for arg in argv:
        if arg.startswith("--pairs="):
            pairs = int(arg.split("=")[1])
        if arg.startswith("--accesses="):
            accesses = int(arg.split("=")[1])
    for policy in policies:
        ratios = []
        opt_times = []
        event_times = []
        # Warmup pair (first run pays import/alloc warmup).
        run_once(policy, "optimized", accesses // 10)
        run_once(policy, "event", accesses // 10)
        for _ in range(pairs):
            opt = run_once(policy, "optimized", accesses)
            ev = run_once(policy, "event", accesses)
            opt_times.append(opt)
            event_times.append(ev)
            ratios.append(opt / ev)
        med = statistics.median(ratios)
        print(
            f"{policy:18s} opt_min={min(opt_times):.3f}s ev_min={min(event_times):.3f}s "
            f"ratio med={med:.3f}x min={min(ratios):.3f}x max={max(ratios):.3f}x",
            flush=True,
        )


if __name__ == "__main__":
    main(sys.argv[1:])
