"""Shared fixtures for the test suite."""

import os

import pytest

from repro import runtime as repro_runtime

from repro.params import (
    CacheConfig,
    CoreConfig,
    DRAMConfig,
    DRAMTimings,
    PADCConfig,
    PrefetcherConfig,
    SystemConfig,
    baseline_config,
)


@pytest.fixture(autouse=True)
def _isolated_runtime(tmp_path, monkeypatch):
    """Point the result cache at a per-test directory, never ~/.cache.

    Also drops any runtime installed by a previous test's configure()
    call, so every test starts from the env-derived default (serial,
    cache enabled, private directory).
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    # The whole suite runs under checked mode: every simulation audits its
    # conservation laws (repro/validate).  An explicit REPRO_CHECK in the
    # environment (e.g. REPRO_CHECK=0 while bisecting) still wins.
    monkeypatch.setenv("REPRO_CHECK", os.environ.get("REPRO_CHECK", "1"))
    # Trace workloads must never leak across tests: drop any registered
    # names and ignore a $REPRO_TRACE_PATH from the invoking shell.
    monkeypatch.delenv("REPRO_TRACE_PATH", raising=False)
    from repro.trace import unregister_traces

    unregister_traces()
    repro_runtime.reset()
    yield
    unregister_traces()
    repro_runtime.reset()


@pytest.fixture
def timings():
    return DRAMTimings()


@pytest.fixture
def dram_config():
    return DRAMConfig()


@pytest.fixture
def small_cache_config():
    """A tiny cache so eviction paths are easy to exercise."""
    return CacheConfig(size_bytes=8 * 1024, associativity=2, mshr_entries=8)


@pytest.fixture
def single_core_config():
    return baseline_config(1, policy="demand-first")


@pytest.fixture
def quad_core_config():
    return baseline_config(4, policy="padc")


def tiny_system_config(policy="padc", num_cores=1, **kwargs):
    """A deliberately small system for fast integration tests."""
    return SystemConfig(
        num_cores=num_cores,
        core=CoreConfig(rob_size=64, retire_width=4, **kwargs),
        cache=CacheConfig(size_bytes=32 * 1024, associativity=4, mshr_entries=8),
        dram=DRAMConfig(request_buffer_size=16),
        prefetcher=PrefetcherConfig(),
        padc=PADCConfig(accuracy_interval=5_000),
        policy=policy,
    )


@pytest.fixture
def tiny_config():
    return tiny_system_config()
