"""The JSON-over-HTTP campaign service: submit a spec, run workers,
poll status, pull the deterministic export — plus input validation
(bad bodies, unknown ids, traversal attempts).
"""

import json
import urllib.error
import urllib.request

import pytest

from repro import runtime
from repro.campaign import Campaign, CampaignRunner, CampaignSpec, run_worker
from repro.campaign.report import export
from repro.campaign.service import (
    CampaignService,
    ServiceError,
    _campaign_id,
    make_server,
)


def small_spec_dict(name="svc", accesses=250):
    return CampaignSpec.build(
        name,
        [["swim", "art"]],
        ["demand-first", "padc"],
        accesses,
        include_alone=False,
    ).to_dict()


@pytest.fixture
def server(tmp_path):
    """A live service on an ephemeral port, rooted in tmp_path."""
    import threading

    executor = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache"))
    httpd = make_server(host="127.0.0.1", port=0, root=tmp_path / "campaigns",
                        runtime=executor)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield f"http://{host}:{port}", executor
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)


def request(url, payload=None, method=None):
    """(status, parsed-or-text body) for one HTTP call."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            body = response.read().decode()
            status = response.status
            content_type = response.headers.get("Content-Type", "")
    except urllib.error.HTTPError as error:
        body = error.read().decode()
        status = error.code
        content_type = error.headers.get("Content-Type", "")
    if content_type.startswith("application/json"):
        return status, json.loads(body)
    return status, body


class TestServiceEndpoints:
    def test_healthz(self, server):
        base, _ = server
        status, body = request(f"{base}/healthz")
        assert status == 200
        assert body["ok"] is True

    def test_submit_poll_work_export_roundtrip(self, server, tmp_path):
        base, executor = server
        status, created = request(
            f"{base}/campaigns", payload={"spec": small_spec_dict()}, method="POST"
        )
        assert status == 201, created
        assert created["backend"] == "sqlite"  # the service default
        assert created["jobs"] == 2
        campaign_id = created["id"]

        status, body = request(f"{base}/campaigns/{campaign_id}/status")
        assert status == 200
        assert body["counts"]["pending"] == 2
        assert not body["complete"]

        # A worker drains the submitted campaign out-of-band.
        campaign = Campaign.open(created["directory"])
        stats = run_worker(campaign, runtime=executor, worker_id="w1", poll=0.05)
        assert stats.done == 2

        status, body = request(f"{base}/campaigns/{campaign_id}/status")
        assert status == 200
        assert body["complete"]
        assert body["counts"]["done"] == 2

        status, listing = request(f"{base}/campaigns")
        assert status == 200
        assert [entry["id"] for entry in listing["campaigns"]] == [campaign_id]

        # The HTTP export is the same bytes the library produces.
        status, csv_text = request(
            f"{base}/campaigns/{campaign_id}/export?format=csv"
        )
        assert status == 200
        assert csv_text == export(campaign, executor.store, fmt="csv")
        status, json_rows = request(
            f"{base}/campaigns/{campaign_id}/export?format=json"
        )
        assert status == 200
        assert json_rows == json.loads(export(campaign, executor.store, fmt="json"))

    def test_repost_same_spec_is_idempotent(self, server):
        base, _ = server
        payload = {"spec": small_spec_dict()}
        status1, first = request(f"{base}/campaigns", payload=payload, method="POST")
        status2, second = request(f"{base}/campaigns", payload=payload, method="POST")
        assert status1 == status2 == 201
        assert first["id"] == second["id"]
        assert first["fingerprint"] == second["fingerprint"]

    def test_different_spec_same_directory_conflicts(self, server):
        base, _ = server
        status, _ = request(
            f"{base}/campaigns",
            payload={"spec": small_spec_dict(), "directory": "pinned"},
            method="POST",
        )
        assert status == 201
        status, body = request(
            f"{base}/campaigns",
            payload={"spec": small_spec_dict(accesses=999), "directory": "pinned"},
            method="POST",
        )
        assert status == 409
        assert "different spec" in body["error"]

    def test_bare_spec_body_accepted(self, server):
        base, _ = server
        status, created = request(
            f"{base}/campaigns", payload=small_spec_dict("bare"), method="POST"
        )
        assert status == 201
        assert created["name"] == "bare"


class TestServiceValidation:
    def test_invalid_spec_is_400(self, server):
        base, _ = server
        status, body = request(
            f"{base}/campaigns",
            payload={"spec": {"name": "x"}},  # missing required fields
            method="POST",
        )
        assert status == 400
        assert "error" in body

    def test_non_json_body_is_400(self, server):
        base, _ = server
        req = urllib.request.Request(
            f"{base}/campaigns", data=b"not json{", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_campaign_is_404(self, server):
        base, _ = server
        status, body = request(f"{base}/campaigns/no-such-campaign/status")
        assert status == 404
        status, body = request(f"{base}/campaigns/no-such-campaign/export")
        assert status == 404

    def test_unknown_endpoint_is_404(self, server):
        base, _ = server
        status, _ = request(f"{base}/nope")
        assert status == 404

    def test_bad_export_format_is_400(self, server, tmp_path):
        base, executor = server
        _, created = request(
            f"{base}/campaigns", payload={"spec": small_spec_dict()}, method="POST"
        )
        status, body = request(
            f"{base}/campaigns/{created['id']}/export?format=xml"
        )
        assert status == 400
        assert "xml" in body["error"]

    def test_series_step_downsampling_and_validation(self, server):
        base, _ = server
        _, created = request(
            f"{base}/campaigns", payload={"spec": small_spec_dict()}, method="POST"
        )
        campaign_id = created["id"]
        # Valid steps are echoed back (no samples yet: jobs list is empty).
        status, body = request(f"{base}/campaigns/{campaign_id}/series")
        assert status == 200
        assert body["step"] == 1
        status, body = request(f"{base}/campaigns/{campaign_id}/series?step=5")
        assert status == 200
        assert body["step"] == 5
        assert body["jobs"] == []
        # Non-integer and non-positive steps are 400s, not server errors.
        status, body = request(f"{base}/campaigns/{campaign_id}/series?step=abc")
        assert status == 400
        assert "step" in body["error"]
        status, body = request(f"{base}/campaigns/{campaign_id}/series?step=0")
        assert status == 400
        assert "step" in body["error"]

    def test_traversal_ids_rejected(self):
        for raw in ("", ".", "..", "a/b", "a\\b", "../etc"):
            with pytest.raises(ServiceError) as excinfo:
                _campaign_id(raw)
            assert excinfo.value.status == 400
        assert _campaign_id("smoke-abc123") == "smoke-abc123"

    def test_unknown_backend_is_400(self, server):
        base, _ = server
        status, body = request(
            f"{base}/campaigns",
            payload={"spec": small_spec_dict(), "backend": "postgres"},
            method="POST",
        )
        assert status == 400
        assert "postgres" in body["error"]


class TestServiceObject:
    """CampaignService handlers directly (no HTTP), for the error paths."""

    def test_non_dict_body_rejected(self, tmp_path):
        service = CampaignService(root=tmp_path)
        with pytest.raises(ServiceError) as excinfo:
            service.create_campaign(["not", "a", "dict"])
        assert excinfo.value.status == 400

    def test_list_skips_non_campaign_dirs(self, tmp_path):
        service = CampaignService(root=tmp_path)
        (tmp_path / "stray").mkdir(parents=True)
        (tmp_path / "stray" / "notes.txt").write_text("not a campaign")
        assert service.list_campaigns() == {"campaigns": []}

    def test_service_export_matches_jsonl_runner(self, tmp_path):
        """The service path (sqlite) exports what a local jsonl run does."""
        executor = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache"))
        service = CampaignService(root=tmp_path / "campaigns", runtime=executor)
        created = service.create_campaign({"spec": small_spec_dict()})
        campaign = Campaign.open(created["directory"])
        run_worker(campaign, runtime=executor, worker_id="w1", poll=0.05)
        text, content_type = service.export(created["id"], "csv")
        assert content_type == "text/csv"

        spec = CampaignSpec.from_dict(small_spec_dict())
        baseline_rt = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache2"))
        baseline = Campaign.create(spec, tmp_path / "baseline")
        CampaignRunner(baseline, runtime=baseline_rt).run()
        assert text == export(baseline, baseline_rt.store, fmt="csv")
