"""Tests for the ablation experiments (registration and tiny runs)."""

from repro.experiments import REGISTRY, Scale, run_experiment

TINY = Scale(accesses=1_200)


class TestRegistration:
    def test_all_ablations_registered(self):
        for name in (
            "ablation_drop_threshold",
            "ablation_promotion",
            "ablation_interval",
            "ablation_aggressiveness",
        ):
            assert name in REGISTRY


class TestDropThresholdAblation:
    def test_variants_present_and_ordered(self):
        result = run_experiment("ablation_drop_threshold", TINY)
        rows = {row["variant"]: row for row in result.rows}
        assert rows["no-drop (aps)"]["dropped"] == 0
        assert rows["fixed-100"]["dropped"] >= rows["fixed-100K"]["dropped"]


class TestPromotionAblation:
    def test_sweep_covers_paper_value(self):
        result = run_experiment("ablation_promotion", TINY)
        thresholds = [row["promotion_threshold"] for row in result.rows]
        assert 0.85 in thresholds
        assert all(row["ws"] > 0 for row in result.rows)


class TestAggressivenessAblation:
    def test_both_policies_at_every_setting(self):
        result = run_experiment("ablation_aggressiveness", TINY)
        assert len(result.rows) == 8
        degrees = {row["degree"] for row in result.rows}
        assert degrees == {1, 2, 4, 8}
