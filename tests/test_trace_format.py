"""The ``.rtr`` binary trace format: round-trips, rejection, digests."""

import os
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace import TraceEntry
from repro.trace.format import (
    FORMAT_VERSION,
    HEADER_SIZE,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    probe_header,
    read_trace,
    trace_digest,
    validate_trace,
    write_trace,
)

entry_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 20),  # gap
        st.integers(min_value=0, max_value=1 << 58),  # line_addr
        st.integers(min_value=0, max_value=1 << 48),  # pc
        st.booleans(),  # is_write
    ).map(lambda t: TraceEntry(*t)),
    max_size=60,
)


def _sample_entries(count, seed=0):
    """A deterministic mixed stream: strides, jumps, writes, big values."""
    import random

    rng = random.Random(seed)
    line = 1 << 40
    entries = []
    for i in range(count):
        if rng.random() < 0.7:
            line += 1
        else:
            line = rng.randrange(1 << 50)
        entries.append(
            TraceEntry(
                gap=rng.randrange(0, 500),
                line_addr=line,
                pc=rng.randrange(1 << 44),
                is_write=rng.random() < 0.2,
            )
        )
    return entries


# -- round trips -------------------------------------------------------------


@pytest.mark.parametrize("count", [0, 1, 3, 4, 5, 8, 9, 100])
def test_round_trip_at_block_boundaries(tmp_path, count):
    # block_entries=4 exercises exact-fit, one-over and partial last blocks.
    entries = _sample_entries(count, seed=count)
    path = tmp_path / "t.rtr"
    header = write_trace(path, entries, block_entries=4)
    assert header.entries == count
    assert header.blocks == (count + 3) // 4
    assert list(read_trace(path)) == entries
    validate_trace(path)


@given(entries=entry_lists)
@settings(max_examples=60, deadline=None)
def test_round_trip_property(tmp_path_factory, entries):
    path = tmp_path_factory.mktemp("rtr") / "t.rtr"
    write_trace(path, entries, block_entries=7)
    assert list(read_trace(path)) == entries


@given(entries=entry_lists)
@settings(max_examples=30, deadline=None)
def test_digest_independent_of_block_size(tmp_path_factory, entries):
    root = tmp_path_factory.mktemp("rtr")
    small = write_trace(root / "small.rtr", entries, block_entries=3)
    large = write_trace(root / "large.rtr", entries, block_entries=1000)
    assert small.digest == large.digest
    # ... and the digest distinguishes different content.
    if entries:
        bumped = entries[:-1] + [
            entries[-1]._replace(line_addr=entries[-1].line_addr + 1)
        ]
        other = write_trace(root / "other.rtr", bumped, block_entries=3)
        assert other.digest != small.digest


def test_windowed_reads_and_offset(tmp_path):
    entries = _sample_entries(50, seed=9)
    path = tmp_path / "t.rtr"
    write_trace(path, entries, block_entries=8)
    assert list(read_trace(path, start=13, limit=11)) == entries[13:24]
    assert list(read_trace(path, start=48)) == entries[48:]
    assert list(read_trace(path, start=200)) == []
    shifted = list(read_trace(path, limit=5, offset=1 << 54))
    assert [e.line_addr for e in shifted] == [
        e.line_addr + (1 << 54) for e in entries[:5]
    ]
    # Everything else survives the offset untouched.
    assert [(e.gap, e.pc, e.is_write) for e in shifted] == [
        (e.gap, e.pc, e.is_write) for e in entries[:5]
    ]


def test_writer_limit_and_infinite_stream(tmp_path):
    def forever():
        line = 0
        while True:
            line += 1
            yield TraceEntry(1, line, 0, False)

    header = write_trace(tmp_path / "t.rtr", forever(), limit=1000, block_entries=64)
    assert header.entries == 1000


def test_writer_abort_leaves_nothing(tmp_path):
    path = tmp_path / "t.rtr"
    with pytest.raises(RuntimeError):
        with TraceWriter(path):
            raise RuntimeError("boom")
    assert not path.exists()
    assert list(tmp_path.iterdir()) == []  # no temp litter either


def test_writer_rejects_negative_fields(tmp_path):
    with TraceWriter(tmp_path / "t.rtr") as writer:
        with pytest.raises(ValueError):
            writer.append(TraceEntry(-1, 0, 0, False))
        writer.append(TraceEntry(0, 0, 0, False))


def test_writer_rejects_bad_block_entries(tmp_path):
    with pytest.raises(ValueError):
        TraceWriter(tmp_path / "t.rtr", block_entries=0)


# -- rejection ---------------------------------------------------------------


def _write_sample(tmp_path, count=40, block_entries=8):
    path = tmp_path / "t.rtr"
    entries = _sample_entries(count, seed=1)
    write_trace(path, entries, block_entries=block_entries)
    return path


def test_bad_magic_rejected(tmp_path):
    path = _write_sample(tmp_path)
    raw = bytearray(path.read_bytes())
    raw[:4] = b"NOPE"
    path.write_bytes(bytes(raw))
    with pytest.raises(TraceFormatError, match="bad magic"):
        probe_header(path)


def test_future_version_rejected(tmp_path):
    path = _write_sample(tmp_path)
    raw = bytearray(path.read_bytes())
    struct.pack_into("<H", raw, 4, FORMAT_VERSION + 1)
    path.write_bytes(bytes(raw))
    with pytest.raises(TraceFormatError, match="version"):
        probe_header(path)


def test_short_file_rejected(tmp_path):
    path = tmp_path / "t.rtr"
    path.write_bytes(b"RPTR123")
    with pytest.raises(TraceFormatError, match="too short"):
        probe_header(path)


def test_truncated_payload_rejected(tmp_path):
    path = _write_sample(tmp_path)
    raw = path.read_bytes()
    path.write_bytes(raw[:-5])
    with pytest.raises(TraceFormatError, match="truncated"):
        list(read_trace(path))


def test_corrupt_block_rejected(tmp_path):
    path = _write_sample(tmp_path)
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF  # flip a payload byte in the last block
    path.write_bytes(bytes(raw))
    with pytest.raises(TraceFormatError, match="checksum"):
        list(read_trace(path))


def test_digest_mismatch_caught_by_validate(tmp_path):
    path = _write_sample(tmp_path)
    raw = bytearray(path.read_bytes())
    raw[32] ^= 0xFF  # flip a digest byte: blocks still decode and CRC fine
    path.write_bytes(bytes(raw))
    assert list(read_trace(path))  # plain decode does not recompute digests
    with pytest.raises(TraceFormatError, match="digest mismatch"):
        validate_trace(path)


def test_missing_file_rejected(tmp_path):
    with pytest.raises(TraceFormatError, match="cannot stat"):
        probe_header(tmp_path / "absent.rtr")


# -- header probing ----------------------------------------------------------


def test_probe_header_tracks_edits(tmp_path):
    path = tmp_path / "t.rtr"
    write_trace(path, _sample_entries(10, seed=1))
    first = trace_digest(path)
    write_trace(path, _sample_entries(10, seed=2))
    os.utime(path, ns=(1, 1))  # defeat mtime granularity deliberately ...
    os.utime(path, ns=(2, 2))  # ... then move it again: distinct stat key
    assert trace_digest(path) != first


def test_copied_file_probes_equal(tmp_path):
    a = tmp_path / "a.rtr"
    b = tmp_path / "sub" / "b.rtr"
    write_trace(a, _sample_entries(10, seed=3))
    b.parent.mkdir()
    b.write_bytes(a.read_bytes())
    assert trace_digest(a) == trace_digest(b)


def test_reader_context_manager(tmp_path):
    path = _write_sample(tmp_path, count=5)
    with TraceReader(path) as reader:
        assert reader.header.entries == 5
        assert len(list(reader)) == 5


def test_empty_trace(tmp_path):
    path = tmp_path / "t.rtr"
    header = write_trace(path, [])
    assert header.entries == 0
    assert header.blocks == 0
    assert os.path.getsize(path) == HEADER_SIZE
    assert list(read_trace(path)) == []
    validate_trace(path)
