"""Interval telemetry: equivalence, golden trace, serialization, export."""

import json

import pytest

from tests.conftest import tiny_system_config
from repro import api
from repro.campaign import CampaignSpec, PolicyVariant, Workload, submit
from repro.campaign.report import EXPORT_COLUMNS, export_rows, render_csv
from repro.runtime import get_runtime
from repro.sim.results import RESULT_SCHEMA_VERSION, CoreResult, SimResult
from repro.telemetry import (
    CORE_SERIES,
    SYSTEM_SERIES,
    NoopCollector,
    SimTrace,
    TelemetryCollector,
    TraceSchemaError,
    as_collector,
    phase_summary,
    render_report,
)
from repro.telemetry.__main__ import main as telemetry_main


def _traced_run(num_cores=2, accesses=2_500, **kwargs):
    benchmarks = ["swim", "art"][:num_cores]
    config = tiny_system_config(num_cores=num_cores)
    return api.simulate(
        config, benchmarks, accesses, seed=3, telemetry=True, **kwargs
    )


# -- telemetry-off equivalence -------------------------------------------------


def test_telemetry_off_is_equivalent_to_pre_telemetry_run():
    """Tracing must not perturb the simulation: aggregates are identical."""
    config = tiny_system_config(num_cores=2)
    off = api.simulate(config, ["swim", "art"], 2_500, seed=3)
    on = _traced_run()
    assert off.trace is None
    assert on.trace is not None
    off_dict, on_dict = off.to_dict(), on.to_dict()
    off_dict.pop("trace")
    on_dict.pop("trace")
    assert off_dict == on_dict


def test_noop_collector_is_default_and_shared():
    assert as_collector(None) is as_collector(False)
    assert not as_collector(None).enabled
    assert as_collector(True).enabled
    collector = TelemetryCollector()
    assert as_collector(collector) is collector
    with pytest.raises(TypeError, match="telemetry"):
        as_collector("yes")


def test_collector_refuses_reuse():
    _ = _traced_run()
    collector = TelemetryCollector()
    config = tiny_system_config(num_cores=1)
    api.simulate(config, ["swim"], 400, telemetry=collector)
    with pytest.raises(RuntimeError, match="one run"):
        api.simulate(config, ["swim"], 400, telemetry=collector)


# -- golden trace --------------------------------------------------------------


def test_golden_trace_two_core_quick_run():
    """The trace's series agree with the result's own aggregates."""
    result = _traced_run()
    trace = result.trace.validate()

    # Interval layout: 5_000-cycle boundaries plus one partial tail.
    assert trace.interval_cycles == 5_000
    assert trace.num_cores == 2
    assert trace.num_intervals >= 2
    assert trace.intervals == sorted(trace.intervals)
    full_boundaries = [c for c in trace.intervals if c % 5_000 == 0]
    assert len(full_boundaries) >= trace.num_intervals - 1

    # PAR series: every full-boundary sample mirrors accuracy_history.
    for core_id in range(2):
        history = result.accuracy_history[core_id]
        par = trace.core("par")[core_id]
        assert len(par) >= len(history)
        for sampled, recorded in zip(par, history):
            assert sampled == pytest.approx(recorded, abs=1e-6)

    # Conservation: per-interval deltas sum to the lifetime counters.
    for name, total in (
        ("pf_sent", sum(core.pf_sent for core in result.cores)),
        ("pf_used", sum(core.pf_used for core in result.cores)),
        ("pf_dropped", sum(core.pf_dropped for core in result.cores)),
    ):
        assert sum(sum(series) for series in trace.core(name)) == total
    assert sum(trace.system("drops")) == result.dropped_prefetches
    assert sum(trace.system("demand_overflows")) == result.demand_overflows
    row_total = (
        sum(trace.system("row_hits"))
        + sum(trace.system("row_closed"))
        + sum(trace.system("row_conflicts"))
    )
    assert row_total > 0
    hit_rate = sum(trace.system("row_hits")) / row_total
    assert hit_rate == pytest.approx(result.row_buffer_hit_rate, abs=1e-9)

    # Utilizations and occupancies stay in their sane ranges.
    assert all(0.0 <= value <= 1.0 for value in trace.system("bus_utilization"))
    assert all(0.0 <= value <= 1.0 for value in trace.system("bank_utilization"))
    buffer_cap = 16  # tiny_system_config's request_buffer_size
    assert all(
        0 <= value <= buffer_cap for value in trace.system("buffer_occupancy_max")
    )
    assert max(trace.system("buffer_occupancy_max")) > 0


def test_trace_determinism():
    assert _traced_run().to_dict() == _traced_run().to_dict()


def test_traced_run_under_checked_mode():
    result = _traced_run(check=True)  # explicit, not just conftest's env
    assert result.trace.num_intervals >= 1


# -- schema and serialization --------------------------------------------------


def test_simresult_roundtrip_with_trace():
    result = _traced_run()
    payload = json.loads(json.dumps(result.to_dict()))
    restored = SimResult.from_dict(payload)
    assert restored == result
    assert restored.schema_version == RESULT_SCHEMA_VERSION
    assert all(
        core.schema_version == RESULT_SCHEMA_VERSION for core in restored.cores
    )
    assert isinstance(restored.trace, SimTrace)


def test_simresult_roundtrip_without_trace():
    config = tiny_system_config(num_cores=1)
    result = api.simulate(config, ["swim"], 500)
    restored = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert restored == result
    assert restored.trace is None


def test_trace_validate_rejects_ragged_and_unknown():
    trace = _traced_run().trace
    trace.core_series["par"][0].append(0.5)
    with pytest.raises(TraceSchemaError, match="par"):
        trace.validate()

    good = _traced_run().trace
    del good.core_series["par"]
    with pytest.raises(TraceSchemaError, match="core series mismatch"):
        good.validate()

    with pytest.raises(TraceSchemaError, match="unknown core series"):
        _traced_run().trace.core("nope")
    with pytest.raises(TraceSchemaError, match="malformed"):
        SimTrace.from_dict({"interval_cycles": 1})


def test_trace_validate_rejects_future_schema():
    trace = _traced_run().trace
    trace.schema_version = 99
    with pytest.raises(TraceSchemaError, match="schema_version 99"):
        trace.validate()


def test_trace_series_names_are_complete():
    trace = _traced_run().trace
    assert set(trace.core_series) == set(CORE_SERIES)
    assert set(trace.system_series) == set(SYSTEM_SERIES)


def test_result_store_roundtrips_trace():
    runtime = get_runtime()
    result = _traced_run()
    runtime.store.put("telemetry-test", result)
    restored = runtime.store.get("telemetry-test")
    assert restored == result
    assert restored.trace is not None


def test_submit_caches_traced_results():
    config = tiny_system_config(num_cores=1)
    first = api.submit(config, ["swim"], 500, telemetry=True)
    second = api.submit(config, ["swim"], 500, telemetry=True)
    assert first.trace is not None
    assert first == second
    # The untraced variant is a different job entirely.
    untraced = api.submit(config, ["swim"], 500)
    assert untraced.trace is None


# -- report rendering ----------------------------------------------------------


def test_render_report_and_phase_summary():
    trace = _traced_run().trace
    report = render_report(trace)
    assert "telemetry:" in report
    assert str(trace.intervals[-1]) in report
    summary = phase_summary(trace)
    assert summary
    assert any("threshold" in line for line in summary)


def test_render_report_handles_empty_trace():
    empty = SimTrace(
        interval_cycles=100,
        num_cores=1,
        core_series={name: [[]] for name in CORE_SERIES},
        system_series={name: [] for name in SYSTEM_SERIES},
    ).validate()
    assert "no intervals" in render_report(empty)
    assert phase_summary(empty) == ["no intervals sampled; nothing to summarize"]


def test_phase_summary_attributes_drop_spike_to_crossing():
    trace = SimTrace(
        interval_cycles=100,
        num_cores=1,
        promotion_threshold=0.85,
        intervals=[100, 200, 300, 400],
        core_series={name: [[0] * 4] for name in CORE_SERIES},
        system_series={name: [0] * 4 for name in SYSTEM_SERIES},
    )
    trace.core_series["prefetch_critical"] = [[1, 0, 0, 0]]
    trace.system_series["drops"] = [0, 0, 0, 12]
    lines = phase_summary(trace.validate())
    assert any("crossed below" in line and "interval 1" in line for line in lines)
    assert any(
        "spiked at interval 3" in line and "2 interval(s) after core 0" in line
        for line in lines
    )


# -- CLI -----------------------------------------------------------------------


def test_telemetry_cli_run_and_report(tmp_path, capsys):
    output = tmp_path / "result.json"
    aggregates = tmp_path / "agg.json"
    code = telemetry_main(
        [
            "run",
            "--benchmarks",
            "swim,art",
            "--policy",
            "padc",
            "--accesses",
            "1500",
            "--interval",
            "5000",
            "--output",
            str(output),
            "--aggregates",
            str(aggregates),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "phase summary:" in out
    assert "trace" not in json.loads(aggregates.read_text())

    assert telemetry_main(["report", str(output)]) == 0
    assert "phase summary:" in capsys.readouterr().out


def test_telemetry_cli_report_rejects_untraced(tmp_path, capsys):
    config = tiny_system_config(num_cores=1)
    result = api.simulate(config, ["swim"], 400)
    path = tmp_path / "untraced.json"
    path.write_text(json.dumps(result.to_dict()))
    assert telemetry_main(["report", str(path)]) == 2
    assert "no telemetry trace" in capsys.readouterr().err


def test_telemetry_cli_reads_store_envelope(tmp_path, capsys):
    result = _traced_run()
    path = tmp_path / "entry.json"
    path.write_text(json.dumps({"key": "k", "version": 3, "result": result.to_dict()}))
    assert telemetry_main(["report", str(path), "--summary-only"]) == 0


# -- campaign export -----------------------------------------------------------


def _tiny_traced_spec():
    return CampaignSpec(
        name="telemetry-export",
        workloads=(Workload(benchmarks=("swim", "art")),),
        policies=(PolicyVariant(label="padc", policy="padc"),),
        accesses=800,
        include_alone=False,
        sim_kwargs=(("telemetry", True),),
    )


def test_campaign_export_carries_telemetry_series(tmp_path, capsys):
    run = submit(_tiny_traced_spec(), directory=tmp_path / "campaign")
    store = get_runtime().store
    rows = export_rows(run.campaign, store)
    assert len(rows) == 1
    row = rows[0]
    assert row["status"] == "done"
    assert row["telemetry_intervals"]
    intervals = row["telemetry_intervals"].split("|")
    assert row["telemetry_par"].count("|") == len(intervals) - 1
    assert all("/" in cell for cell in row["telemetry_par"].split("|"))
    assert row["telemetry_row_hits"]
    assert row["telemetry_drops"]
    assert row["telemetry_buffer_occupancy"]
    # CSV stays deterministic: same ledger + store, same bytes.
    assert render_csv(rows) == render_csv(export_rows(run.campaign, store))
    header = render_csv(rows).splitlines()[0]
    assert header == ",".join(EXPORT_COLUMNS)

    # The telemetry campaign CLI renders summaries for traced results.
    code = telemetry_main(["campaign", str(tmp_path / "campaign")])
    assert code == 0
    assert "1 traced result(s)" in capsys.readouterr().out


def test_campaign_export_untraced_leaves_columns_empty(tmp_path):
    spec = CampaignSpec(
        name="telemetry-off-export",
        workloads=(Workload(benchmarks=("swim",)),),
        policies=(PolicyVariant(label="padc", policy="padc"),),
        accesses=500,
        include_alone=False,
    )
    run = submit(spec, directory=tmp_path / "campaign")
    (row,) = export_rows(run.campaign, get_runtime().store)
    assert row["telemetry_intervals"] == ""
    assert row["telemetry_par"] == ""
