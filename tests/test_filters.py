"""Tests for the DDPF prefetch filter and the FDP throttle."""

from repro.prefetch.ddpf import DDPFFilter
from repro.prefetch.fdp import AGGRESSIVENESS_LEVELS, FDPController, PollutionFilter
from repro.prefetch.stream import StreamPrefetcher


class TestDDPF:
    def test_initially_optimistic(self):
        ddpf = DDPFFilter()
        assert ddpf.allow(0x100)
        assert ddpf.allowed == 1

    def test_repeated_useless_outcomes_filter_address(self):
        ddpf = DDPFFilter()
        for _ in range(3):
            ddpf.train(0x100, useful=False)
        assert not ddpf.allow(0x100)
        assert ddpf.filtered == 1

    def test_useful_training_restores(self):
        ddpf = DDPFFilter()
        for _ in range(3):
            ddpf.train(0x100, useful=False)
        ddpf.train(0x100, useful=True)
        assert ddpf.allow(0x100)

    def test_counters_saturate(self):
        ddpf = DDPFFilter()
        for _ in range(10):
            ddpf.train(0x100, useful=True)
        index = ddpf._index(0x100, 0)
        assert ddpf.table[index] == 3
        for _ in range(10):
            ddpf.train(0x100, useful=False)
        assert ddpf.table[index] == 0

    def test_pc_affects_index(self):
        ddpf = DDPFFilter()
        assert ddpf._index(0x100, 1) != ddpf._index(0x100, 2)

    def test_aliasing_can_filter_innocent_addresses(self):
        """The finite PHT aliases — the paper's stated DDPF weakness."""
        ddpf = DDPFFilter(table_bits=4)
        victim_index = ddpf._index(0x5, 0)
        aliases = [
            addr for addr in range(10_000) if ddpf._index(addr, 0) == victim_index
        ]
        for addr in aliases[:5]:
            ddpf.train(addr, useful=False)
        assert not ddpf.allow(0x5)


class TestPollutionFilter:
    def test_records_and_clears(self):
        filt = PollutionFilter()
        filt.record_eviction(0x42)
        assert filt.check_miss(0x42)
        assert not filt.check_miss(0x42)  # cleared after the hit

    def test_unrelated_miss_not_flagged(self):
        filt = PollutionFilter()
        filt.record_eviction(0x42)
        assert not filt.check_miss(0x43)


class TestFDP:
    def make(self, level=4):
        prefetcher = StreamPrefetcher()
        return FDPController(prefetcher, initial_level=level), prefetcher

    def test_initial_level_applied(self):
        fdp, prefetcher = self.make(level=2)
        assert prefetcher.aggressiveness == AGGRESSIVENESS_LEVELS[2]

    def test_low_accuracy_throttles_down(self):
        fdp, prefetcher = self.make(level=4)
        fdp.sent, fdp.used = 100, 10  # 10% accuracy
        assert fdp.adjust() == 3
        assert prefetcher.aggressiveness == AGGRESSIVENESS_LEVELS[3]

    def test_high_accuracy_and_late_boosts(self):
        fdp, _ = self.make(level=2)
        fdp.sent, fdp.used, fdp.late = 100, 95, 50
        assert fdp.adjust() == 3

    def test_high_accuracy_not_late_holds(self):
        fdp, _ = self.make(level=2)
        fdp.sent, fdp.used, fdp.late = 100, 95, 0
        assert fdp.adjust() == 2

    def test_mid_accuracy_polluting_throttles(self):
        fdp, _ = self.make(level=3)
        fdp.sent, fdp.used = 100, 60
        fdp.pollution_misses, fdp.demand_misses = 10, 100
        assert fdp.adjust() == 2

    def test_no_samples_holds_level(self):
        fdp, _ = self.make(level=3)
        assert fdp.adjust() == 3

    def test_level_bounded_below(self):
        fdp, _ = self.make(level=0)
        fdp.sent, fdp.used = 100, 0
        assert fdp.adjust() == 0

    def test_level_bounded_above(self):
        fdp, _ = self.make(level=4)
        fdp.sent, fdp.used, fdp.late = 100, 95, 50
        assert fdp.adjust() == 4

    def test_counters_reset_after_adjust(self):
        fdp, _ = self.make()
        fdp.sent, fdp.used, fdp.late = 10, 5, 1
        fdp.adjust()
        assert (fdp.sent, fdp.used, fdp.late) == (0, 0, 0)

    def test_slow_phase_reaction(self):
        """FDP moves one level per interval — the paper's noted weakness."""
        fdp, _ = self.make(level=0)
        for expected in (1, 2, 3):
            fdp.sent, fdp.used, fdp.late = 100, 95, 50
            assert fdp.adjust() == expected
