"""Tests for the hardware cost model — must match paper Tables 1-2 exactly."""

import pytest

from repro.controller.cost import cost_as_fraction_of_l2, padc_storage_cost


class TestPaperTable2:
    """The 4-core system of the paper: 512KB L2/core, 128-entry buffer."""

    @pytest.fixture
    def cost(self):
        return padc_storage_cost(
            num_cores=4, cache_lines_per_core=8192, request_buffer_entries=128
        )

    def test_p_bits(self, cost):
        assert cost.prefetch_bits == 32_896

    def test_psc_puc_par(self, cost):
        assert cost.psc_bits == 64
        assert cost.puc_bits == 64
        assert cost.par_bits == 32

    def test_urgent_bits(self, cost):
        assert cost.urgent_bits == 128

    def test_core_id_bits(self, cost):
        assert cost.core_id_bits == 256

    def test_age_bits(self, cost):
        assert cost.age_bits == 1_280

    def test_total_is_34720_bits(self, cost):
        assert cost.total_bits == 34_720

    def test_total_is_about_4_25_kb(self, cost):
        assert cost.total_bits / 8192 == pytest.approx(4.25, abs=0.02)

    def test_without_p_bits_is_1824(self, cost):
        assert cost.total_bits_without_p_bits == 1_824

    def test_fraction_of_l2_is_0_2_percent(self, cost):
        fraction = cost_as_fraction_of_l2(cost, 4 * 512 * 1024)
        assert fraction == pytest.approx(0.002, abs=0.0002)


class TestScaling:
    def test_single_core(self):
        cost = padc_storage_cost(
            num_cores=1, cache_lines_per_core=16384, request_buffer_entries=64
        )
        assert cost.prefetch_bits == 16384 + 64
        assert cost.core_id_bits == 64  # 1-bit ID floor

    def test_ranking_adds_rank_fields(self):
        plain = padc_storage_cost(num_cores=4)
        ranked = padc_storage_cost(num_cores=4, with_ranking=True)
        assert ranked.total_bits > plain.total_bits
        assert ranked.rank_bits == 128 * 2
        assert ranked.rank_counter_bits == 4 * 16

    def test_as_dict_sums_to_total(self):
        cost = padc_storage_cost(num_cores=8, request_buffer_entries=256)
        breakdown = cost.as_dict()
        total = breakdown.pop("total")
        assert sum(breakdown.values()) == total

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            padc_storage_cost(num_cores=0)
