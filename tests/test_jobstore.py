"""SQLite job store + worker tests: the ledger contract on WAL SQLite,
atomic lease-based claims, heartbeat renewal, crash reclaim (including a
real SIGKILL'd worker subprocess), concurrent creators, multi-writer
JSONL appends, and jsonl-vs-sqlite export byte-equality.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import runtime
from repro.campaign import (
    Campaign,
    CampaignError,
    CampaignRunner,
    CampaignSpec,
    JobStoreError,
    Ledger,
    SqliteJobStore,
    make_store,
    resolve_backend,
    run_worker,
)
from repro.campaign.jobstore import DB_NAME
from repro.campaign.report import export
from repro.campaign.worker import job_meta

POLICIES = ("demand-first", "padc")


def small_spec(name="dist", accesses=250, **kwargs):
    kwargs.setdefault("include_alone", False)
    return CampaignSpec.build(
        name,
        [["swim", "art"], ["libquantum", "milc"]],
        POLICIES,
        accesses,
        **kwargs,
    )


@pytest.fixture
def store(tmp_path):
    return SqliteJobStore(tmp_path / DB_NAME, lease=30.0)


class TestLedgerContractParity:
    """Identical record histories fold identically on both backends."""

    HISTORY = [
        {"key": "k1", "status": "running", "attempt": 1, "worker": "w1"},
        {"key": "k1", "status": "failed", "attempt": 1, "error": "boom"},
        {"key": "k1", "status": "running", "attempt": 2, "worker": "w2"},
        {"key": "k1", "status": "done", "attempt": 2, "elapsed": 0.5, "cached": False,
         "job": {"policy": "padc"}},
        {"key": "k2", "status": "running", "attempt": 1, "worker": "w1"},
    ]

    def test_fold_matches_jsonl(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        # lease=0 so the running record's executor-granted lease is born
        # expired: this compares pure journal-fold semantics, without the
        # sqlite fold's live-lease overlay (tested separately below).
        store = SqliteJobStore(tmp_path / DB_NAME, lease=0.0)
        for record in self.HISTORY:
            ledger.append(dict(record))
            store.append(dict(record))
        jsonl_fold = ledger.fold()
        sqlite_fold = store.fold()
        assert set(jsonl_fold) == set(sqlite_fold) == {"k1", "k2"}
        for key in jsonl_fold:
            assert jsonl_fold[key] == sqlite_fold[key]
        assert sqlite_fold["k1"].status == "done"
        assert sqlite_fold["k1"].attempts == 2
        assert sqlite_fold["k1"].meta == {"policy": "padc"}

    def test_records_preserve_append_order(self, store):
        for record in self.HISTORY:
            store.append(dict(record))
        keys = [(r["key"], r["status"]) for r in store.records()]
        assert keys == [(r["key"], r["status"]) for r in self.HISTORY]

    def test_interrupted_with_live_lease_shows_running(self, store):
        store.ensure_jobs([("k1", None)])
        claim = store.claim("w1", lease=30.0)
        assert claim.key == "k1"
        # Journal fold alone would say interrupted; the live lease says
        # a worker is actually on it.
        assert store.fold()["k1"].status == "running"

    def test_interrupted_with_expired_lease_shows_interrupted(self, store):
        store.ensure_jobs([("k1", None)])
        store.claim("w1", lease=0.01)
        time.sleep(0.05)
        assert store.fold()["k1"].status == "interrupted"

    def test_clear_removes_wal_sidecars(self, store):
        store.append({"key": "k1", "status": "done"})
        assert store.exists()
        store.clear()
        assert not store.exists()
        assert not list(store.path.parent.glob(f"{DB_NAME}*"))


class TestClaims:
    def test_claim_order_is_enqueue_order(self, store):
        store.ensure_jobs([("a", None), ("b", None), ("c", None)])
        assert store.claim("w1").key == "a"
        assert store.claim("w1").key == "b"
        assert store.claim("w2").key == "c"
        assert store.claim("w2") is None

    def test_enqueue_is_idempotent(self, store):
        assert store.ensure_jobs([("a", None), ("b", None)]) == 2
        assert store.ensure_jobs([("a", None), ("b", None), ("c", None)]) == 1

    def test_done_job_is_not_claimable(self, store):
        store.ensure_jobs([("a", None)])
        claim = store.claim("w1")
        store.append({"key": "a", "status": "done", "attempt": claim.attempt})
        assert store.claim("w2") is None
        assert store.unfinished() == 0

    def test_running_job_with_live_lease_is_not_claimable(self, store):
        store.ensure_jobs([("a", None)])
        store.claim("w1", lease=30.0)
        assert store.claim("w2") is None
        assert store.unfinished() == 1  # in flight, so a sibling waits

    def test_expired_lease_is_reclaimed(self, store):
        store.ensure_jobs([("a", None)])
        first = store.claim("w1", lease=0.01)
        time.sleep(0.05)
        second = store.claim("w2", lease=30.0)
        assert second is not None
        assert second.key == "a"
        assert second.attempt == first.attempt + 1
        # The reclaim journaled a second running record.
        assert store.fold()["a"].attempts == 2

    def test_heartbeat_extends_lease(self, store):
        store.ensure_jobs([("a", None)])
        claim = store.claim("w1", lease=0.2)
        deadline = time.time() + 1.0
        while time.time() < deadline:
            assert store.heartbeat("a", "w1", lease=0.2)
            time.sleep(0.05)
        # Despite the 0.2s lease, a second worker could never claim it.
        assert store.claim("w2") is None
        assert claim.lease_expires < time.time()  # original lease long gone

    def test_heartbeat_from_evicted_worker_fails(self, store):
        store.ensure_jobs([("a", None)])
        store.claim("w1", lease=0.01)
        time.sleep(0.05)
        store.claim("w2", lease=30.0)
        assert not store.heartbeat("a", "w1")
        assert store.heartbeat("a", "w2")

    def test_failed_job_retryable_within_budget(self, store):
        store.ensure_jobs([("a", None)])
        claim = store.claim("w1")
        store.append(
            {"key": "a", "status": "failed", "attempt": claim.attempt, "error": "x"}
        )
        assert store.claim("w1", max_attempts=1) is None  # budget exhausted
        assert store.unfinished(max_attempts=1) == 0  # terminal
        assert store.unfinished(max_attempts=2) == 1
        retry = store.claim("w1", max_attempts=2)
        assert retry is not None and retry.attempt == 2

    def test_claim_meta_round_trips(self, store):
        store.ensure_jobs([("a", {"policy": "padc", "seed": 3})])
        claim = store.claim("w1")
        assert claim.meta == {"policy": "padc", "seed": 3}

    def test_concurrent_claims_never_collide(self, store):
        keys = [f"k{i}" for i in range(40)]
        store.ensure_jobs([(key, None) for key in keys])
        claimed = []
        lock = threading.Lock()

        def drain(worker_id):
            while True:
                claim = store.claim(worker_id, lease=30.0)
                if claim is None:
                    return
                with lock:
                    claimed.append(claim.key)
                store.append(
                    {"key": claim.key, "status": "done", "attempt": claim.attempt}
                )

        threads = [
            threading.Thread(target=drain, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(claimed) == sorted(keys)  # each exactly once
        assert store.unfinished() == 0


class TestBackendResolution:
    def test_default_is_jsonl(self, tmp_path):
        assert resolve_backend(None, tmp_path) == "jsonl"
        assert isinstance(make_store(tmp_path), Ledger)

    def test_explicit_wins(self, tmp_path):
        assert resolve_backend("sqlite", tmp_path) == "sqlite"
        assert isinstance(make_store(tmp_path, "sqlite"), SqliteJobStore)

    def test_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_BACKEND", "sqlite")
        assert resolve_backend(None, tmp_path) == "sqlite"

    def test_existing_db_detected(self, tmp_path):
        SqliteJobStore(tmp_path / DB_NAME).initialize()
        assert resolve_backend(None, tmp_path) == "sqlite"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(JobStoreError) as excinfo:
            resolve_backend("postgres", tmp_path)
        assert "postgres" in str(excinfo.value)

    def test_campaign_create_pins_backend_for_reopen(self, tmp_path):
        campaign = Campaign.create(small_spec(), tmp_path / "c", backend="sqlite")
        assert campaign.backend == "sqlite"
        # A later open with no flag/env auto-detects the database.
        assert Campaign.open(tmp_path / "c").backend == "sqlite"


class TestConcurrentCreate:
    def test_racing_creators_same_spec_all_succeed(self, tmp_path):
        spec = small_spec()
        results, errors = [], []

        def create():
            try:
                results.append(Campaign.create(spec, tmp_path / "c"))
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 8
        # Exactly one snapshot, valid JSON, correct fingerprint.
        payload = json.loads((tmp_path / "c" / "campaign.json").read_text())
        assert payload["fingerprint"] == spec.fingerprint()
        assert not list((tmp_path / "c").glob("*.tmp"))

    def test_loser_with_different_spec_fails_loudly(self, tmp_path):
        Campaign.create(small_spec(), tmp_path / "c")
        with pytest.raises(CampaignError) as excinfo:
            Campaign.create(small_spec(accesses=999), tmp_path / "c")
        assert "different spec" in str(excinfo.value)


class TestLedgerMultiWriter:
    def test_torn_trailing_line_then_append_recovers(self, tmp_path):
        """A crash mid-append must not corrupt the *next* record too."""
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.append({"key": "k1", "status": "done"})
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "k2", "status": "don')  # torn, no newline
        ledger.append({"key": "k3", "status": "done"})
        keys = [record["key"] for record in ledger.records()]
        assert keys == ["k1", "k3"]
        assert ledger.fold()["k3"].status == "done"

    def test_concurrent_appends_never_interleave(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        per_writer = 50

        def write(worker_index):
            for i in range(per_writer):
                ledger.append(
                    {
                        "key": f"w{worker_index}-{i}",
                        "status": "done",
                        "payload": "x" * 256,
                    }
                )

        threads = [threading.Thread(target=write, args=(w,)) for w in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = ledger.records()
        assert len(records) == 6 * per_writer  # nothing torn, nothing lost
        assert len({record["key"] for record in records}) == 6 * per_writer

    def test_fsync_knob_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_FSYNC", "1")
        assert Ledger(tmp_path / "l.jsonl").fsync
        monkeypatch.delenv("REPRO_LEDGER_FSYNC")
        assert not Ledger(tmp_path / "l.jsonl").fsync
        assert Ledger(tmp_path / "l.jsonl", fsync=True).fsync


class TestWorkerLoop:
    def test_single_worker_drains_campaign(self, tmp_path):
        executor = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache"))
        campaign = Campaign.create(small_spec(), tmp_path / "c", backend="sqlite")
        stats = run_worker(campaign, runtime=executor, worker_id="w1", poll=0.05)
        assert stats.done == 4 and stats.failed == 0
        assert campaign.status_counts()["done"] == 4

    def test_jsonl_campaign_is_rejected(self, tmp_path):
        executor = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache"))
        campaign = Campaign.create(small_spec(), tmp_path / "c")  # jsonl
        with pytest.raises(CampaignError) as excinfo:
            run_worker(campaign, runtime=executor)
        assert "sqlite" in str(excinfo.value)

    def test_two_workers_split_the_campaign(self, tmp_path):
        executor = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache"))
        campaign = Campaign.create(small_spec(), tmp_path / "c", backend="sqlite")
        all_stats = []

        def work(worker_id):
            all_stats.append(
                run_worker(
                    campaign, runtime=executor, worker_id=worker_id, poll=0.05
                )
            )

        threads = [threading.Thread(target=work, args=(f"w{i}",)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(stats.done for stats in all_stats) == 4
        assert campaign.status_counts()["done"] == 4
        # Every done record names the worker that produced it.
        workers = {
            record.get("worker")
            for record in campaign.ledger.records()
            if record["status"] == "done"
        }
        assert workers <= {"w0", "w1"}

    def test_should_stop_drains_gracefully(self, tmp_path):
        executor = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache"))
        campaign = Campaign.create(small_spec(), tmp_path / "c", backend="sqlite")
        calls = []

        def stop_after_two():
            # Consulted once before each claim: let two jobs through.
            calls.append(1)
            return len(calls) > 2

        stats = run_worker(
            campaign, runtime=executor, worker_id="w1", should_stop=stop_after_two
        )
        assert stats.drained
        assert stats.done == 2
        counts = campaign.status_counts()
        assert counts["done"] == 2 and counts["pending"] == 2
        # Nothing left half-claimed: a sibling can finish the rest.
        resumed = run_worker(campaign, runtime=executor, worker_id="w2", poll=0.05)
        assert resumed.done == 2
        assert campaign.status_counts()["done"] == 4

    def test_failed_job_journaled_and_retried(self, tmp_path, monkeypatch):
        from repro import sim

        executor = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache"))
        spec = CampaignSpec.build(
            "flaky", [["swim"]], ["padc"], 200, include_alone=False
        )
        campaign = Campaign.create(spec, tmp_path / "c", backend="sqlite")
        real = sim.simulate
        attempts = []

        def flaky(config, benchmarks, **kwargs):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient blip")
            return real(config, benchmarks, **kwargs)

        monkeypatch.setattr(sim, "simulate", flaky)
        stats = run_worker(
            campaign, runtime=executor, worker_id="w1", retries=1, poll=0.05
        )
        assert stats.failed == 1 and stats.done == 1
        (state,) = campaign.states().values()
        assert state.status == "done"
        assert state.attempts == 2


class TestExportEquality:
    """The PR 3 guarantee survives the new backend: sqlite multi-worker
    campaigns export byte-identical CSV/JSON to single-process JSONL."""

    def _jsonl_baseline(self, spec, tmp_path):
        executor = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache-jsonl"))
        campaign = Campaign.create(spec, tmp_path / "jsonl")
        CampaignRunner(campaign, runtime=executor).run()
        return (
            export(campaign, executor.store, fmt="csv"),
            export(campaign, executor.store, fmt="json"),
        )

    def test_worker_export_matches_jsonl_runner(self, tmp_path):
        spec = small_spec(include_alone=True)
        jsonl_csv, jsonl_json = self._jsonl_baseline(spec, tmp_path)
        executor = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache-sqlite"))
        campaign = Campaign.create(spec, tmp_path / "sqlite", backend="sqlite")
        run_worker(campaign, runtime=executor, worker_id="w1", poll=0.05)
        assert export(campaign, executor.store, fmt="csv") == jsonl_csv
        assert export(campaign, executor.store, fmt="json") == jsonl_json

    def test_runner_on_sqlite_matches_jsonl(self, tmp_path):
        """CampaignRunner itself also drives the sqlite backend."""
        spec = small_spec()
        jsonl_csv, _ = self._jsonl_baseline(spec, tmp_path)
        executor = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache-sqlite"))
        campaign = Campaign.create(spec, tmp_path / "sqlite", backend="sqlite")
        run = CampaignRunner(campaign, runtime=executor).run()
        assert not run.incomplete()
        assert export(campaign, executor.store, fmt="csv") == jsonl_csv

    def test_crash_reclaimed_export_matches_jsonl(self, tmp_path):
        """Kill a claim mid-flight (lease expiry), let a second worker
        reclaim it, and the export is still byte-identical."""
        spec = small_spec()
        jsonl_csv, _ = self._jsonl_baseline(spec, tmp_path)
        executor = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache-sqlite"))
        campaign = Campaign.create(spec, tmp_path / "sqlite", backend="sqlite")
        store = campaign.ledger
        # Emulate the SIGKILL: a claim that never completes nor heartbeats.
        store.ensure_jobs(
            [(job.key, job_meta(job)) for job in campaign.unique_jobs()]
        )
        doomed = store.claim("doomed", lease=0.01)
        assert doomed is not None
        time.sleep(0.05)
        stats = run_worker(campaign, runtime=executor, worker_id="w2", poll=0.05)
        assert stats.done == 4  # includes the reclaimed job
        assert campaign.states()[doomed.key].attempts == 2
        assert export(campaign, executor.store, fmt="csv") == jsonl_csv


@pytest.mark.slow
class TestSigkillWorkerSubprocess:
    """The acceptance scenario end-to-end: a real worker process is
    SIGKILL'd mid-job; a second worker reclaims and finishes; the export
    is byte-identical to a single-process JSONL run."""

    def test_kill9_worker_loses_nothing(self, tmp_path):
        spec = small_spec(name="kill9")
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec.to_dict()))
        campaign_dir = tmp_path / "campaign"
        cache_dir = tmp_path / "cache"

        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        env.pop("REPRO_CAMPAIGN_BACKEND", None)

        create = subprocess.run(
            [
                sys.executable, "-m", "repro.campaign", "create",
                "--spec", str(spec_file), "--dir", str(campaign_dir),
                "--backend", "sqlite",
            ],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert create.returncode == 0, create.stderr

        # Worker A claims its first job, then sits in the throttle sleep
        # (heartbeating) long enough for us to SIGKILL it mid-job.
        doomed = subprocess.Popen(
            [
                sys.executable, "-m", "repro.campaign", "worker",
                str(campaign_dir), "--cache-dir", str(cache_dir),
                "--worker-id", "doomed", "--lease", "1", "--throttle", "60",
                "--quiet",
            ],
            env=env,
        )
        try:
            store = SqliteJobStore(campaign_dir / DB_NAME)
            deadline = time.time() + 30
            while time.time() < deadline:
                rows = [row for row in store.job_rows() if row["state"] == "running"]
                if rows:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("worker never claimed a job")
            doomed.send_signal(signal.SIGKILL)
            doomed.wait(timeout=30)
        finally:
            if doomed.poll() is None:
                doomed.kill()
        (claimed,) = [row for row in store.job_rows() if row["state"] == "running"]
        assert claimed["worker"] == "doomed"

        # A second worker reclaims the orphaned job after the 1s lease
        # expires and drains the campaign.
        executor = runtime.configure(jobs=1, cache_dir=str(cache_dir))
        campaign = Campaign.open(campaign_dir)
        stats = run_worker(
            campaign, runtime=executor, worker_id="rescuer", poll=0.1
        )
        assert stats.done == 4
        states = campaign.states()
        assert states[claimed["key"]].status == "done"
        assert states[claimed["key"]].attempts == 2  # doomed's try + rescue
        assert states[claimed["key"]].worker == "rescuer"

        # Byte-identical to the single-process JSONL baseline.
        clean_rt = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache2"))
        clean = Campaign.create(spec, tmp_path / "clean")
        CampaignRunner(clean, runtime=clean_rt).run()
        assert export(campaign, executor.store) == export(clean, clean_rt.store)
