"""Property-based tests: random request streams through the engine.

Invariants checked over arbitrary admission/tick sequences:

* every admitted request is eventually serviced or dropped, never both;
* completions are causally consistent (no service before arrival, data
  after service);
* the data bus never carries two bursts at once;
* buffer occupancy never exceeds its capacity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.accuracy import PrefetchAccuracyTracker
from repro.controller.apd import AdaptivePrefetchDropper
from repro.controller.engine import DRAMControllerEngine
from repro.controller.policies import make_policy
from repro.params import DRAMConfig

# (is_prefetch, line_addr, delay-to-next-event)
request_stream = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=2_000),
        st.integers(min_value=0, max_value=300),
    ),
    min_size=1,
    max_size=60,
)


def drive(engine, stream, drop_log=None):
    """Admit the stream with interleaved ticks; then drain."""
    serviced = []
    now = 0
    seen_lines = set()
    for is_prefetch, line, delay in stream:
        if line in seen_lines:
            continue  # MSHRs upstream would have merged duplicates
        seen_lines.add(line)
        request = engine.build_request(line, 0, is_prefetch, now)
        if is_prefetch:
            engine.enqueue_prefetch(request)
        else:
            engine.enqueue_demand(request)
        done, _wake = engine.tick(0, now)
        serviced.extend(done)
        now += delay
    # Drain: keep ticking until nothing is queued anywhere.
    for _ in range(10_000):
        if not engine.queued_requests(0) and engine.occupancy(0) == 0:
            break
        done, wake = engine.tick(0, now)
        serviced.extend(done)
        now = max(now + 1, wake if wake is not None else now + 1)
    return serviced, now


class TestEngineProperties:
    @given(request_stream)
    @settings(max_examples=80, deadline=None)
    def test_everything_serviced_under_demand_first(self, stream):
        engine = DRAMControllerEngine(
            DRAMConfig(request_buffer_size=16), make_policy("demand-first")
        )
        serviced, _ = drive(engine, stream)
        admitted = (
            engine.stats.scheduled_demands + engine.stats.scheduled_prefetches
        )
        assert len(serviced) == admitted
        assert engine.occupancy(0) == 0

    @given(request_stream)
    @settings(max_examples=80, deadline=None)
    def test_causality(self, stream):
        engine = DRAMControllerEngine(
            DRAMConfig(request_buffer_size=16), make_policy("demand-prefetch-equal")
        )
        serviced, _ = drive(engine, stream)
        for request in serviced:
            assert request.service_start >= request.arrival
            assert request.completion > request.service_start

    @given(request_stream)
    @settings(max_examples=80, deadline=None)
    def test_lines_transferred_match_services(self, stream):
        engine = DRAMControllerEngine(
            DRAMConfig(request_buffer_size=16), make_policy("demand-first")
        )
        serviced, _ = drive(engine, stream)
        assert engine.total_lines_transferred() == len(serviced)

    @given(request_stream)
    @settings(max_examples=60, deadline=None)
    def test_serviced_plus_dropped_equals_admitted_under_padc(self, stream):
        tracker = PrefetchAccuracyTracker(num_cores=1)
        for _ in range(10):
            tracker.record_sent(0)
        tracker.end_interval()  # accuracy 0 -> 100-cycle drop threshold
        dropped = []
        engine = DRAMControllerEngine(
            DRAMConfig(request_buffer_size=16),
            make_policy("padc", tracker),
            dropper=AdaptivePrefetchDropper(tracker),
            on_drop=dropped.append,
        )
        serviced, _ = drive(engine, stream)
        admitted = (
            engine.stats.scheduled_demands
            + engine.stats.scheduled_prefetches
            + engine.stats.dropped_prefetches
        )
        assert len(serviced) + len(dropped) == admitted
        assert not (set(id(r) for r in serviced) & set(id(r) for r in dropped))
        for victim in dropped:
            assert victim.is_prefetch
            assert victim.dropped

    @given(request_stream)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_bounded(self, stream):
        engine = DRAMControllerEngine(
            DRAMConfig(request_buffer_size=8), make_policy("demand-first")
        )
        now = 0
        seen = set()
        for is_prefetch, line, delay in stream:
            if line in seen:
                continue
            seen.add(line)
            request = engine.build_request(line, 0, is_prefetch, now)
            if is_prefetch:
                engine.enqueue_prefetch(request)
            else:
                engine.enqueue_demand(request)
            assert engine.occupancy(0) <= 8
            engine.tick(0, now)
            now += delay

    @given(request_stream)
    @settings(max_examples=40, deadline=None)
    def test_bus_bursts_never_overlap(self, stream):
        engine = DRAMControllerEngine(
            DRAMConfig(request_buffer_size=16), make_policy("demand-first")
        )
        serviced, _ = drive(engine, stream)
        burst = engine.config.timings.burst
        cl = engine.config.timings.cl
        # With pipelined CAS, completion = burst_end + CL; reconstruct the
        # burst windows and check pairwise disjointness.
        windows = sorted(
            (request.completion - cl - burst, request.completion - cl)
            for request in serviced
        )
        for (start_a, end_a), (start_b, _end_b) in zip(windows, windows[1:]):
            assert start_b >= end_a
