"""Tests for the DRAM bank / row-buffer model."""

from repro.dram.bank import Bank, RowBufferState
from repro.params import DRAMTimings


def make_bank():
    return Bank(DRAMTimings())


class TestClassification:
    def test_initially_closed(self):
        assert make_bank().classify(5) is RowBufferState.CLOSED

    def test_hit_after_open(self):
        bank = make_bank()
        bank.record_access(5)
        assert bank.classify(5) is RowBufferState.HIT
        assert bank.is_row_hit(5)

    def test_conflict_on_other_row(self):
        bank = make_bank()
        bank.record_access(5)
        assert bank.classify(6) is RowBufferState.CONFLICT
        assert not bank.is_row_hit(6)


class TestLatency:
    def test_closed_latency(self, timings):
        assert make_bank().access_latency(1) == timings.row_closed_latency

    def test_hit_latency(self, timings):
        bank = make_bank()
        bank.record_access(1)
        assert bank.access_latency(1) == timings.row_hit_latency

    def test_conflict_latency(self, timings):
        bank = make_bank()
        bank.record_access(1)
        assert bank.access_latency(2) == timings.row_conflict_latency

    def test_pre_burst_work_pipelined_hit_is_free(self):
        bank = make_bank()
        bank.record_access(1)
        assert bank.pre_burst_work(1, pipelined_cas=True) == 0

    def test_pre_burst_work_serialized_hit_costs_cl(self, timings):
        bank = make_bank()
        bank.record_access(1)
        assert bank.pre_burst_work(1, pipelined_cas=False) == timings.cl

    def test_pre_burst_work_conflict(self, timings):
        bank = make_bank()
        bank.record_access(1)
        assert (
            bank.pre_burst_work(2, pipelined_cas=True)
            == timings.t_rp + timings.t_rcd
        )


class TestStateTransitions:
    def test_record_access_opens_row(self):
        bank = make_bank()
        bank.record_access(3)
        assert bank.open_row == 3

    def test_precharge_closes_row(self):
        bank = make_bank()
        bank.record_access(3)
        bank.precharge()
        assert bank.open_row is None
        assert bank.classify(3) is RowBufferState.CLOSED

    def test_counters(self):
        bank = make_bank()
        assert bank.record_access(1) is RowBufferState.CLOSED
        assert bank.record_access(1) is RowBufferState.HIT
        assert bank.record_access(2) is RowBufferState.CONFLICT
        assert bank.record_access(2) is RowBufferState.HIT
        assert bank.hits == 2
        assert bank.closed_accesses == 1
        assert bank.conflicts == 1
        assert bank.total_accesses == 4
        assert bank.row_hit_rate() == 0.5

    def test_row_hit_rate_empty(self):
        assert make_bank().row_hit_rate() == 0.0
