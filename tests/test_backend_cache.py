"""Backend × result-cache interaction (DESIGN.md §11).

The backend knob selects among certified-identical simulation loops, so
it must never fragment the result cache: ``SystemConfig.backend`` is the
one sanctioned ``exclude_from_hash`` field, ``repro.api`` strips the
``backend`` simulate-kwarg before a job is keyed, and a result computed
under one backend answers for every other.  Conversely CACHE_VERSION
must have moved with this PR so pre-certification entries stop matching.
"""

import dataclasses
from dataclasses import fields, is_dataclass

import pytest

import repro.runtime.store as store_module
from repro.api import _make_job, submit
from repro.params import BACKENDS, SystemConfig, baseline_config
from repro.runtime import CACHE_VERSION, Runtime, cache_key
from repro.runtime.hashing import config_fingerprint


def _config(policy="demand-first"):
    return baseline_config(num_cores=2, policy=policy)


MIX = ["swim_00", "art_00"]


class TestHashExclusion:
    def test_backend_field_never_changes_the_fingerprint(self):
        config = _config()
        fingerprints = {
            config_fingerprint(dataclasses.replace(config, backend=backend))
            for backend in (None,) + tuple(BACKENDS)
        }
        assert len(fingerprints) == 1

    def test_backend_is_the_only_hash_excluded_field(self):
        # The escape hatch is sanctioned for exactly one knob.  Walk the
        # whole config dataclass tree; any new exclusion must be debated
        # here, not slipped in via metadata.
        excluded = set()

        def walk(obj):
            for field in fields(obj):
                if field.metadata.get("exclude_from_hash"):
                    excluded.add((type(obj).__name__, field.name))
                value = getattr(obj, field.name)
                if is_dataclass(value) and not isinstance(value, type):
                    walk(value)

        walk(_config())
        assert excluded == {("SystemConfig", "backend")}

    def test_backend_kwarg_stripped_from_job_key(self):
        config = _config()
        keys = {
            _make_job(config, MIX, 300, 0, backend=backend).key()
            for backend in (None,) + tuple(BACKENDS)
        }
        assert len(keys) == 1

    def test_other_kwargs_still_change_the_key(self):
        config = _config()
        base = _make_job(config, MIX, 300, 0).key()
        assert _make_job(config, MIX, 300, 1).key() != base
        assert _make_job(config, MIX, 301, 0).key() != base
        assert (
            _make_job(config, MIX, 300, 0, collect_service_times=True).key() != base
        )


class TestCacheVersion:
    def test_version_bumped_for_event_backend(self):
        # v5 was the skip-ahead-backend bump; v6 is the trace-subsystem
        # bump (canonical_workload keying).  Pre-bump entries must miss.
        assert CACHE_VERSION >= 6

    def test_version_bump_invalidates_every_key(self, monkeypatch):
        job = _make_job(_config(), MIX, 300, 0)
        before = cache_key(job)
        monkeypatch.setattr(store_module, "CACHE_VERSION", CACHE_VERSION + 1)
        assert cache_key(job) != before


class TestCrossBackendCacheSharing:
    def test_result_computed_once_serves_all_backends(self, tmp_path, monkeypatch):
        config = _config()
        runtime = Runtime(jobs=1, cache_dir=tmp_path, cache_enabled=True)
        cold = submit(config, MIX, 300, seed=3, runtime=runtime, backend="reference")
        entries_after_cold = sorted(p.name for p in tmp_path.glob("*.json"))
        assert len(entries_after_cold) == 1

        # A different explicit backend and a different $REPRO_BACKEND
        # both hit the entry the reference run wrote.
        monkeypatch.setenv("REPRO_BACKEND", "event")
        warm = submit(config, MIX, 300, seed=3, runtime=runtime, backend="event")
        assert warm.to_dict() == cold.to_dict()
        assert sorted(p.name for p in tmp_path.glob("*.json")) == entries_after_cold

        monkeypatch.delenv("REPRO_BACKEND")
        warm2 = submit(config, MIX, 300, seed=3, runtime=runtime)
        assert warm2.to_dict() == cold.to_dict()
        assert sorted(p.name for p in tmp_path.glob("*.json")) == entries_after_cold
