"""Tests for channel-level service timing (bank work, bus queueing)."""

import pytest

from repro.dram.bank import RowBufferState
from repro.dram.channel import Channel
from repro.params import DRAMConfig, DRAMTimings

PIPE = DRAMTimings(pipelined_cas=True)
SERIAL = DRAMTimings(pipelined_cas=False)


def make_channel(timings=PIPE, banks=8):
    return Channel(DRAMConfig(timings=timings, banks_per_channel=banks))


class TestPipelinedTiming:
    def test_isolated_row_closed_access(self):
        channel = make_channel()
        state, completion = channel.service(0, row=1, now=0)
        assert state is RowBufferState.CLOSED
        # tRCD work + burst + CL pipe delay.
        assert completion == PIPE.t_rcd + PIPE.burst + PIPE.cl

    def test_row_hits_stream_at_burst_rate(self):
        """Back-to-back row hits deliver one line per burst time."""
        channel = make_channel()
        channel.service(0, row=1, now=0)
        free = channel.banks[0].busy_until
        _, first = channel.service(0, row=1, now=free)
        _, second = channel.service(0, row=1, now=free + PIPE.burst)
        assert second - first == PIPE.burst

    def test_conflict_pays_precharge_and_activate(self):
        channel = make_channel()
        channel.service(0, row=1, now=0)
        free = channel.banks[0].busy_until
        state, completion = channel.service(0, row=2, now=free)
        assert state is RowBufferState.CONFLICT
        assert completion == free + PIPE.t_rp + PIPE.t_rcd + PIPE.burst + PIPE.cl

    def test_bus_serializes_across_banks(self):
        """Two simultaneous bursts from different banks queue on the bus."""
        channel = make_channel()
        _, first = channel.service(0, row=1, now=0)
        _, second = channel.service(1, row=1, now=0)
        assert second - first == PIPE.burst

    def test_bus_granted_in_scheduling_order(self):
        """A later-scheduled burst never overtakes an earlier one.

        This is the paper's Figure 2 service model: the scheduled
        row-conflict occupies the DRAM system until its data completes,
        so scheduling order carries the performance consequences.
        """
        channel = make_channel()
        channel.service(0, row=1, now=0)       # opens row 1 on bank 0
        free0 = channel.banks[0].busy_until
        _, conflict = channel.service(0, row=2, now=free0)
        _, later_hit = channel.service(1, row=1, now=free0)
        assert later_hit > conflict - PIPE.cl  # burst follows the conflict's


class TestSerializedTiming:
    def test_row_hit_occupies_bank_for_cl(self):
        channel = make_channel(timings=SERIAL)
        channel.service(0, row=1, now=0)
        free = channel.banks[0].busy_until
        _, completion = channel.service(0, row=1, now=free)
        assert completion == free + SERIAL.cl + SERIAL.burst

    def test_no_cl_pipe_delay_after_burst(self):
        channel = make_channel(timings=SERIAL)
        _, completion = channel.service(0, row=1, now=0)
        assert completion == SERIAL.t_rcd + SERIAL.cl + SERIAL.burst


class TestChannelBookkeeping:
    def test_busy_bank_rejected(self):
        channel = make_channel()
        channel.service(0, row=1, now=0)
        with pytest.raises(ValueError):
            channel.service(0, row=1, now=0)

    def test_bank_free_predicate(self):
        channel = make_channel()
        assert channel.bank_free(0, now=0)
        channel.service(0, row=1, now=0)
        assert not channel.bank_free(0, now=1)
        assert channel.bank_free(0, now=channel.banks[0].busy_until)

    def test_lines_transferred_counts(self):
        channel = make_channel()
        channel.service(0, row=1, now=0)
        channel.service(1, row=1, now=0)
        assert channel.lines_transferred == 2

    def test_row_hit_rate_aggregates_banks(self):
        channel = make_channel()
        channel.service(0, row=1, now=0)
        free = channel.banks[0].busy_until
        channel.service(0, row=1, now=free)
        assert channel.row_hit_rate() == 0.5

    def test_next_bank_free_time(self):
        channel = make_channel()
        channel.service(0, row=1, now=0)
        assert channel.next_bank_free_time([0]) == channel.banks[0].busy_until
        assert channel.next_bank_free_time([1]) == 0
