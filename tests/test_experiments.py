"""Tests for the experiment layer (registry, tables, exact walkthroughs)."""

import pytest

from repro.experiments import REGISTRY, ExperimentResult, Scale, run_experiment
from repro.experiments.fig02 import execution_time, service_order, service_timeline


class TestFig02Walkthrough:
    """Figure 2's numbers are stated exactly in the paper."""

    def test_useful_demand_first_is_725(self):
        assert execution_time("demand-first", prefetches_useful=True) == 725

    def test_useful_equal_is_575(self):
        assert execution_time("demand-prefetch-equal", prefetches_useful=True) == 575

    def test_useless_demand_first_is_325(self):
        assert execution_time("demand-first", prefetches_useful=False) == 325

    def test_useless_equal_is_525(self):
        assert execution_time("demand-prefetch-equal", prefetches_useful=False) == 525

    def test_demand_first_services_demand_first(self):
        order = [request.name for request in service_order("demand-first")]
        assert order[0] == "Y"

    def test_equal_services_row_hits_first(self):
        order = [request.name for request in service_order("demand-prefetch-equal")]
        assert order == ["X", "Z", "Y"]

    def test_timeline_demand_first(self):
        completions = dict(service_timeline(service_order("demand-first")))
        assert completions == {"Y": 300, "X": 600, "Z": 700}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            service_order("prefetch-first")


class TestRegistry:
    EXPECTED = {
        "fig01", "fig02", "fig04a", "fig04b", "fig06", "fig07", "fig08",
        "fig09", "fig10_11", "fig12_13", "fig14_15", "fig16", "fig17",
        "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25",
        "fig26", "fig27", "fig28", "fig29", "fig30", "fig31", "fig32",
        "table01_02", "table05", "table07", "table08", "table09", "table10",
    }

    def test_every_paper_artifact_registered(self):
        assert self.EXPECTED <= set(REGISTRY)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_cost_experiment_matches_paper(self):
        result = run_experiment("table01_02")
        four_core = next(row for row in result.rows if row["cores"] == 4)
        assert four_core["total_bits"] == 34_720
        assert four_core["no_P_bits"] == 1_824

    def test_fig02_experiment_rows(self):
        result = run_experiment("fig02")
        values = {
            (row["prefetches"], row["policy"]): row["total_cycles"]
            for row in result.rows
        }
        assert values[("useful", "demand-first")] == 725
        assert values[("useful", "demand-prefetch-equal")] == 575
        assert values[("useless", "demand-first")] == 325
        assert values[("useless", "demand-prefetch-equal")] == 525


class TestExperimentResult:
    def test_table_rendering(self):
        result = ExperimentResult(
            "x", "demo", rows=[{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        )
        table = result.to_table()
        assert "demo" in table
        assert "2.500" in table
        assert "10" in table

    def test_empty_table(self):
        assert "(no rows)" in ExperimentResult("x", "demo").to_table()

    def test_columns_are_union_of_all_rows(self):
        """Keys appearing only in later rows must still become columns."""
        result = ExperimentResult(
            "x",
            "demo",
            rows=[{"a": 1}, {"a": 2, "late": 7.5}, {"other": "x"}],
        )
        table = result.to_table()
        assert "late" in table
        assert "other" in table
        assert "7.500" in table

    def test_column_extraction(self):
        result = ExperimentResult("x", "demo", rows=[{"a": 1}, {"a": 2}])
        assert result.column("a") == [1, 2]


class TestScale:
    def test_unknown_scale_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "nonsense")
        with pytest.raises(ValueError) as excinfo:
            Scale.from_env()
        message = str(excinfo.value)
        assert "nonsense" in message
        for known in ("tiny", "quick", "medium", "paper"):
            assert known in message

    def test_unset_defaults_to_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert Scale.from_env() == Scale()

    @pytest.mark.parametrize("name", ["tiny", "quick", "medium", "paper"])
    def test_every_known_scale_resolves(self, name, monkeypatch):
        from repro.experiments.runner import SCALES

        monkeypatch.setenv("REPRO_SCALE", name)
        assert Scale.from_env() == SCALES[name]

    def test_named_scales(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert Scale.from_env().mixes_4core == 32


class TestSmallExperimentRun:
    """Run one cheap simulation-backed experiment end to end."""

    def test_fig04b_produces_phase_history(self):
        scale = Scale(accesses=1500)
        result = run_experiment("fig04b", scale)
        assert result.rows
        assert all(0.0 <= row["accuracy"] <= 1.0 for row in result.rows)

    def test_fig01_subset_shape(self):
        scale = Scale(accesses=1200)
        result = run_experiment("fig01", scale)
        assert len(result.rows) == 10
        for row in result.rows:
            assert row["demand-first"] > 0
            assert row["demand-pref-equal"] > 0
