"""Tests for the analysis/report helpers."""

from repro.analysis import ascii_bar_chart, compare_policies, run_report
from repro.params import baseline_config
from repro.sim import simulate


class TestAsciiBarChart:
    def test_bars_scale_to_peak(self):
        chart = ascii_bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_labels_aligned(self):
        chart = ascii_bar_chart({"short": 1.0, "a-long-label": 1.0})
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_empty(self):
        assert ascii_bar_chart({}) == "(no data)"

    def test_zero_peak(self):
        assert "0.000" in ascii_bar_chart({"x": 0.0})

    def test_unit_suffix(self):
        assert "1.000x" in ascii_bar_chart({"x": 1.0}, unit="x")


class TestRunReport:
    def test_single_core_report(self):
        result = simulate(
            baseline_config(1, policy="padc"), ["swim"], max_accesses_per_core=800
        )
        report = run_report(result)
        assert "swim_00" in report
        assert "traffic" in report
        assert "WS=" not in report  # no alone IPCs given

    def test_multicore_report_with_speedups(self):
        result = simulate(
            baseline_config(2, policy="padc"),
            ["swim", "milc"],
            max_accesses_per_core=800,
        )
        report = run_report(result, alone_ipcs=[1.0, 1.0])
        assert "WS=" in report and "UF=" in report


class TestComparePolicies:
    def test_compare_runs_and_tabulates(self):
        results, table = compare_policies(
            ["swim"], policies=("no-pref", "padc"), accesses=600
        )
        assert set(results) == {"no-pref", "padc"}
        assert "padc" in table
        assert "IPC(sum)" in table

    def test_custom_base_config(self):
        base = baseline_config(1, policy="demand-first", prefetcher_kind="stride")
        results, _table = compare_policies(
            ["leslie3d"], policies=("padc",), accesses=500, config_base=base
        )
        assert results["padc"].policy == "padc"
