"""Live telemetry streaming (DESIGN.md §14): the record contract, the
byte-identical fold, cache-neutrality, sample persistence on both
campaign backends, torn-stream reclaim, and the ``api.Campaign`` handle
the whole surface hangs off.
"""

import json
import warnings

import pytest

from tests.conftest import tiny_system_config
from repro import api
from repro.campaign import Campaign, CampaignRunner, CampaignSpec, run_worker
from repro.campaign.executor import CampaignError
from repro.campaign.jobstore import make_store
from repro.params import BACKENDS, BackendError, backend_from_env
from repro.telemetry import TelemetryCollector
from repro.telemetry.stream import (
    STREAM_SCHEMA_VERSION,
    SampleBatcher,
    StreamError,
    fold_samples,
    records_from_trace,
    streamed_execute,
)


def _canon(trace):
    return json.dumps(trace.to_dict(), sort_keys=True)


def _streamed_run(backend=None, accesses=2_500, num_cores=2):
    """One simulation with a recording on_sample hook; (records, result)."""
    records = []
    collector = TelemetryCollector(on_sample=records.append)
    config = tiny_system_config(num_cores=num_cores)
    result = api.simulate(
        config,
        ["swim", "art"][:num_cores],
        accesses,
        seed=3,
        telemetry=collector,
        backend=backend,
    )
    return records, result


def small_spec(name="stream", accesses=300):
    return CampaignSpec.build(
        name,
        [["swim", "art"]],
        ["demand-first", "padc"],
        accesses,
        include_alone=False,
    )


# -- the equivalence contract --------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_streamed_fold_is_byte_identical_per_backend(backend):
    """Folding the live stream reproduces the post-hoc trace exactly."""
    records, result = _streamed_run(backend=backend)
    assert result.trace is not None
    assert len(records) >= 2  # header + at least one interval
    assert _canon(fold_samples(records)) == _canon(result.trace)


def test_streamed_records_match_trace_recut():
    """The live emission and the cache-hit synthesis are the same stream."""
    records, result = _streamed_run()
    assert records == records_from_trace(result.trace)


def test_fold_survives_json_round_trip():
    """Records serialized and parsed back (the SQLite path) fold identically."""
    records, result = _streamed_run()
    round_tripped = [json.loads(json.dumps(r, sort_keys=True)) for r in records]
    assert _canon(fold_samples(round_tripped)) == _canon(result.trace)


def test_streaming_does_not_perturb_the_run():
    """A streamed run's result equals an unstreamed telemetry run's."""
    records, streamed = _streamed_run()
    config = tiny_system_config(num_cores=2)
    plain = api.simulate(config, ["swim", "art"], 2_500, seed=3, telemetry=True)
    assert json.dumps(streamed.to_dict(), sort_keys=True) == json.dumps(
        plain.to_dict(), sort_keys=True
    )


def test_header_carries_stream_version():
    records, _ = _streamed_run()
    assert records[0]["type"] == "header"
    assert records[0]["stream_version"] == STREAM_SCHEMA_VERSION


# -- fold error handling -------------------------------------------------------


def test_fold_rejects_malformed_streams():
    records, _ = _streamed_run()
    with pytest.raises(StreamError, match="empty"):
        fold_samples([])
    with pytest.raises(StreamError, match="must start with a header"):
        fold_samples(records[1:])
    with pytest.raises(StreamError, match="duplicate header"):
        fold_samples([records[0], records[0]])
    with pytest.raises(StreamError, match="unknown sample record type"):
        fold_samples([records[0], {"type": "mystery"}])
    stale = dict(records[0], stream_version=STREAM_SCHEMA_VERSION + 1)
    with pytest.raises(StreamError, match="version"):
        fold_samples([stale] + records[1:])
    torn = json.loads(json.dumps(records[1]))
    torn["core"]["par"] = torn["core"]["par"][:1]
    with pytest.raises(StreamError, match="core series"):
        fold_samples([records[0], torn])


def test_batcher_flushes_in_batches_and_on_demand():
    batches = []
    batcher = SampleBatcher(batches.append, batch=3)
    for index in range(7):
        batcher({"n": index})
    assert [len(batch) for batch in batches] == [3, 3]
    batcher.flush()
    assert [len(batch) for batch in batches] == [3, 3, 1]
    assert batcher.emitted == 7
    batcher.flush()  # empty flush is a no-op
    assert len(batches) == 3


# -- cache-neutrality of streamed_execute --------------------------------------


def test_streamed_execute_is_cache_neutral(tmp_path):
    """Streaming a job that did not ask for telemetry leaves its persisted
    result byte-identical to an unstreamed run (trace stripped)."""
    from repro.runtime import SimJob, execute_job

    job = SimJob.make(tiny_system_config(), ["swim"], 400, seed=1)
    store = make_store(tmp_path, "sqlite")
    store.initialize()
    plain = execute_job(job)
    streamed = streamed_execute(job, store, "some-key")
    assert streamed.trace is None
    assert json.dumps(streamed.to_dict(), sort_keys=True) == json.dumps(
        plain.to_dict(), sort_keys=True
    )
    # ... but the samples landed anyway, and they fold.
    folded = fold_samples(store.samples("some-key"))
    assert folded.num_intervals >= 1


def test_streamed_execute_keeps_requested_trace(tmp_path):
    """A job that itself asked for telemetry still gets its trace, equal
    to the folded stream."""
    from repro.runtime import SimJob

    job = SimJob.make(tiny_system_config(), ["swim"], 400, seed=1, telemetry=True)
    store = make_store(tmp_path, "sqlite")
    store.initialize()
    result = streamed_execute(job, store, "k")
    assert result.trace is not None
    assert _canon(fold_samples(store.samples("k"))) == _canon(result.trace)


# -- sample persistence: both backends -----------------------------------------


@pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
def test_sample_store_surface(tmp_path, backend):
    """append/samples/samples_since/sample_counts/clear agree across the
    sqlite table and the jsonl sidecar."""
    sink = make_store(tmp_path, backend)
    sink.initialize()
    records, _ = _streamed_run(accesses=400, num_cores=1)
    sink.append_samples("a", records[:2])
    sink.append_samples("a", records[2:])
    sink.append_samples("b", records)
    assert sink.samples("a") == records
    assert sink.sample_counts() == {"a": len(records), "b": len(records)}
    rows, cursor = sink.samples_since(0)
    assert [row["record"] for row in rows if row["key"] == "a"] == records
    assert all(set(row) == {"id", "key", "idx", "record"} for row in rows)
    # idx is the per-key stream position, continuous across batches.
    assert [row["idx"] for row in rows if row["key"] == "a"] == list(
        range(len(records))
    )
    # Incremental poll: nothing new after the cursor ...
    again, cursor2 = sink.samples_since(cursor)
    assert again == [] and cursor2 == cursor
    # ... until something lands.
    sink.append_samples("c", records[:1])
    fresh, _ = sink.samples_since(cursor)
    assert [row["key"] for row in fresh] == ["c"]
    # Key filter and reset.
    only_b, _ = sink.samples_since(0, key="b")
    assert [row["record"] for row in only_b] == records
    sink.clear_samples("a")
    assert sink.samples("a") == []
    assert "a" not in sink.sample_counts()
    assert sink.samples("b") == records  # other streams untouched


def test_ledger_clear_drops_samples_sidecar(tmp_path):
    ledger = make_store(tmp_path, "jsonl")
    ledger.initialize()
    ledger.append_samples("k", [{"type": "header"}])
    assert ledger.sample_counts() == {"k": 1}
    ledger.clear()
    assert ledger.sample_counts() == {}


def test_reclaim_clears_torn_stream(tmp_path):
    """A dead worker's partial stream vanishes when its job is reclaimed:
    the claim transaction deletes the key's samples."""
    store = make_store(tmp_path, "sqlite")
    store.initialize()
    store.ensure_jobs([("job-1", None)])
    claim = store.claim("worker-a", lease=0.01)
    assert claim.key == "job-1"
    store.append_samples("job-1", [{"type": "header"}, {"type": "interval"}])
    assert store.sample_counts() == {"job-1": 2}
    import time

    time.sleep(0.05)  # lease expires; worker-a is "dead"
    reclaimed = store.claim("worker-b", lease=30.0)
    assert reclaimed is not None and reclaimed.key == "job-1"
    assert store.sample_counts() == {}


# -- campaign integration ------------------------------------------------------


def test_worker_stream_lands_samples_and_export_is_unchanged(tmp_path):
    """worker(stream=True): samples land per job, fold to valid traces,
    and the deterministic export is byte-identical to an unstreamed run."""
    runtime = __import__("repro.runtime", fromlist=["configure"]).configure(
        jobs=1, cache_dir=str(tmp_path / "cache-streamed")
    )
    spec = small_spec()
    streamed = Campaign.create(spec, tmp_path / "streamed", backend="sqlite")
    run_worker(streamed, runtime=runtime, stream=True, lease=30.0)
    store = streamed.ledger
    counts = store.sample_counts()
    assert set(counts) == {job.key for job in streamed.unique_jobs()}
    for job in streamed.unique_jobs():
        assert fold_samples(store.samples(job.key)).num_intervals >= 1
    streamed_export = api.campaign_open(tmp_path / "streamed").export(fmt="csv")

    from repro import runtime as runtime_mod

    plain_runtime = runtime_mod.configure(jobs=1, cache_dir=str(tmp_path / "cache-plain"))
    plain = Campaign.create(spec, tmp_path / "plain", backend="sqlite")
    run_worker(plain, runtime=plain_runtime, lease=30.0)
    plain_export = api.campaign_open(tmp_path / "plain").export(fmt="csv")
    assert streamed_export == plain_export


def test_worker_stream_synthesizes_cache_hits(tmp_path):
    """A warm re-drain streams cache-hit jobs' traces so the live view is
    complete even when nothing simulated."""
    from repro import runtime as runtime_mod

    runtime = runtime_mod.configure(jobs=1, cache_dir=str(tmp_path / "cache"))
    spec = CampaignSpec.build(
        "warm", [["swim"]], ["padc"], 300, include_alone=False, telemetry=True
    )
    first = Campaign.create(spec, tmp_path / "first", backend="sqlite")
    run_worker(first, runtime=runtime, lease=30.0)
    assert first.ledger.sample_counts() == {}  # no --stream: nothing landed
    second = Campaign.create(spec, tmp_path / "second", backend="sqlite")
    stats = run_worker(second, runtime=runtime, stream=True, lease=30.0)
    assert stats.cache_hits == len(second.unique_jobs())
    for job in second.unique_jobs():
        assert fold_samples(second.ledger.samples(job.key)).num_intervals >= 1


def test_serial_runner_streams_into_jsonl_sidecar(tmp_path):
    campaign = Campaign.create(small_spec(), tmp_path / "c", backend="jsonl")
    run = CampaignRunner(campaign, stream=True).run()
    assert not run.incomplete()
    counts = campaign.ledger.sample_counts()
    assert set(counts) == {job.key for job in campaign.unique_jobs()}
    assert (tmp_path / "c" / "samples.jsonl").is_file()


def test_parallel_runner_rejects_streaming(tmp_path, monkeypatch):
    from repro import runtime as runtime_mod

    runtime = runtime_mod.configure(jobs=4, cache_dir=str(tmp_path / "cache"))
    campaign = Campaign.create(small_spec(), tmp_path / "c")
    with pytest.raises(CampaignError, match="serial runner"):
        CampaignRunner(campaign, runtime=runtime, stream=True).run()


# -- the api.Campaign handle ---------------------------------------------------


def _run_streamed_campaign(tmp_path):
    handle = api.Campaign.create(
        small_spec(), directory=tmp_path / "c", backend="sqlite"
    )
    run_worker(handle.inner, stream=True, lease=30.0)
    return handle


def test_handle_identity_and_status(tmp_path):
    handle = _run_streamed_campaign(tmp_path)
    assert handle.name == "stream"
    assert handle.backend == "sqlite"
    status = handle.status()
    assert status["complete"] is True
    assert status["counts"]["done"] == len(handle.unique_jobs())
    reopened = api.campaign_open(handle.directory)
    assert reopened.status() == status


def test_handle_stream_yields_rows_and_resumes_from_cursor(tmp_path):
    handle = _run_streamed_campaign(tmp_path)
    rows = list(handle.stream())
    assert rows and all(row["record"]["type"] in ("header", "interval") for row in rows)
    tail = list(handle.stream(after=rows[2]["id"]))
    assert tail == rows[3:]
    one_key = rows[0]["key"]
    only = list(handle.stream(key=one_key))
    assert {row["key"] for row in only} == {one_key}
    # follow=True on a complete campaign terminates after one drain.
    followed = list(handle.stream(follow=True, poll=0.05))
    assert followed == rows


def test_handle_fold_trace_and_metrics(tmp_path):
    handle = _run_streamed_campaign(tmp_path)
    job = handle.unique_jobs()[0]
    folded = handle.fold_trace(job.key)
    assert folded is not None and folded.num_intervals >= 1
    assert handle.fold_trace("no-such-key") is None
    metrics = handle.metrics()
    assert metrics["id"] == handle.directory.name
    progress = metrics["progress"]
    assert progress["complete"] and progress["samples"] > 0
    assert len(metrics["series"]["jobs"]) == len(handle.unique_jobs())
    for series_job in metrics["series"]["jobs"]:
        assert len(series_job["cycles"]) >= 1
        assert len(series_job["par"]) == series_job["num_cores"]
        for rates in series_job["drop_rate"]:
            assert all(0.0 <= rate <= 1.0 for rate in rates)
    pressure = metrics["pressure"]
    assert pressure["intervals"] > 0
    assert len(pressure["per_job"]) == len(handle.unique_jobs())
    # JSON-serializable end to end (the service contract).
    json.dumps(metrics, sort_keys=True)


def test_legacy_campaign_functions_warn_but_work(tmp_path):
    spec = small_spec()
    with pytest.warns(DeprecationWarning, match="campaign_create"):
        created = api.campaign_create(
            spec, directory=tmp_path / "c", backend="sqlite"
        )
    run_worker(created, lease=30.0)
    with pytest.warns(DeprecationWarning, match="campaign_open"):
        status = api.campaign_status(tmp_path / "c")
    assert status["complete"] is True
    with pytest.warns(DeprecationWarning, match="campaign_open"):
        text = api.campaign_export(tmp_path / "c", fmt="csv")
    assert text == api.campaign_open(tmp_path / "c").export(fmt="csv")


# -- the $REPRO_SCHED deprecation ----------------------------------------------


def test_backend_from_env_prefers_repro_backend(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_SCHED", raising=False)
    assert backend_from_env() is None
    monkeypatch.setenv("REPRO_BACKEND", "reference")
    assert backend_from_env() == "reference"


def test_legacy_repro_sched_warns(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.setenv("REPRO_SCHED", "optimized")
    with pytest.warns(DeprecationWarning, match=r"\$REPRO_BACKEND"):
        assert backend_from_env() == "optimized"
    # The simulate() path still honors (and warns about) the alias.
    with pytest.warns(DeprecationWarning, match=r"\$REPRO_SCHED is deprecated"):
        result = api.simulate(tiny_system_config(), ["swim"], 200)
    assert result.cores[0].instructions > 0


def test_conflicting_backend_env_raises(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "event")
    monkeypatch.setenv("REPRO_SCHED", "reference")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(BackendError, match="conflicting"):
            backend_from_env()


def test_agreeing_backend_env_is_fine(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "event")
    monkeypatch.setenv("REPRO_SCHED", "event")
    with pytest.warns(DeprecationWarning):
        assert backend_from_env() == "event"
