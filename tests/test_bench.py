"""Tests for the repro.bench performance harness."""

import json

import pytest

from repro.bench import (
    DEFAULT_POLICIES,
    SCALES,
    SCHEMA_VERSION,
    baseline_speedups,
    check_regression,
    load_report,
    run_macro,
    run_micro,
    verify_equivalence,
    write_report,
)
from repro.bench.__main__ import main as bench_main


class TestScales:
    def test_known_scales(self):
        assert {"tiny", "quick", "medium", "paper"} <= set(SCALES)

    def test_sizes_monotone(self):
        order = ["tiny", "quick", "medium", "paper"]
        accesses = [SCALES[name].macro_accesses for name in order]
        assert accesses == sorted(accesses)

    def test_default_policies_cover_golden_matrix(self):
        assert "padc" in DEFAULT_POLICIES
        assert "fcfs" in DEFAULT_POLICIES


class TestMacro:
    def test_run_macro_reports_tick_loop(self):
        sample = run_macro("fcfs", "tiny", "optimized")
        assert sample["scheduler"] == "optimized"
        assert sample["cycles"] > 0
        assert sample["wall_s"] > 0
        assert sample["tick_loop_s"] > 0
        assert sample["tick_calls"] > 0
        assert sample["tick_loop_s"] <= sample["wall_s"]
        assert sample["cycles_per_sec"] == pytest.approx(
            sample["cycles"] / sample["wall_s"], rel=1e-3
        )
        assert sample["tick_cycles_per_sec"] >= sample["cycles_per_sec"]

    def test_run_macro_deterministic_cycles(self):
        a = run_macro("fcfs", "tiny", "optimized")
        b = run_macro("fcfs", "tiny", "reference")
        # Same simulation either way; only the wall time may differ.
        assert a["cycles"] == b["cycles"]


class TestMicro:
    def test_run_micro_drains_all_requests(self):
        sample = run_micro("demand-first", "tiny", "optimized")
        assert sample["requests"] > 0
        assert sample["cycles"] > 0
        assert sample["ticks"] > 0
        assert sample["requests_per_sec"] > 0

    def test_micro_deterministic_across_schedulers(self):
        a = run_micro("demand-first", "tiny", "optimized")
        b = run_micro("demand-first", "tiny", "reference")
        assert a["requests"] == b["requests"]
        assert a["cycles"] == b["cycles"]


class TestEquivalence:
    def test_single_case_identical(self):
        result = verify_equivalence(
            ["padc"], "tiny", mixes=[["mcf_06", "swim_00"][:2]], seeds=[5]
        )
        assert result["cases"] == 1
        assert result["mismatches"] == []


def _report(scale="tiny", speedup=3.0, policy="padc", extra=None):
    report = {
        "schema_version": SCHEMA_VERSION,
        "scale": scale,
        "macro": {"policies": {policy: {"speedup_tick_loop": speedup}}},
    }
    if extra:
        report.update(extra)
    return report


class TestRegressionCheck:
    def test_pass_same_scale(self):
        assert check_regression(_report(speedup=2.9), _report(speedup=3.0)) == []

    def test_fail_same_scale(self):
        failures = check_regression(_report(speedup=2.0), _report(speedup=3.0))
        assert len(failures) == 1
        assert "padc" in failures[0]

    def test_threshold_boundary(self):
        # 25% below exactly is still allowed; below that fails.
        assert check_regression(_report(speedup=2.25), _report(speedup=3.0)) == []
        assert check_regression(_report(speedup=2.24), _report(speedup=3.0))

    def test_scale_mismatch_without_side_table_skips(self):
        current = _report(scale="tiny", speedup=1.0)
        baseline = _report(scale="medium", speedup=5.0)
        assert check_regression(current, baseline) == []
        assert baseline_speedups(baseline, "tiny") is None

    def test_scale_mismatch_uses_side_table(self):
        baseline = _report(
            scale="medium",
            speedup=5.0,
            extra={"speedups_by_scale": {"tiny": {"padc": 2.0}}},
        )
        assert baseline_speedups(baseline, "tiny") == {"padc": 2.0}
        assert check_regression(_report(scale="tiny", speedup=1.9), baseline) == []
        failures = check_regression(_report(scale="tiny", speedup=1.0), baseline)
        assert len(failures) == 1

    def test_schema_mismatch_fails_loud(self):
        baseline = _report()
        baseline["schema_version"] = SCHEMA_VERSION + 1
        failures = check_regression(_report(), baseline)
        assert failures and "schema_version" in failures[0]

    def test_unbenchmarked_policy_ignored(self):
        current = _report(policy="padc", speedup=3.0)
        baseline = _report(policy="fcfs", speedup=9.0)
        assert check_regression(current, baseline) == []


class TestReportIO:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_5.json")
        report = _report()
        write_report(path, report)
        assert load_report(path) == report

    def test_load_missing_returns_none(self, tmp_path):
        assert load_report(str(tmp_path / "absent.json")) is None

    def test_load_garbage_returns_none(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert load_report(str(path)) is None


class TestCLI:
    def test_main_writes_schema_versioned_report(self, tmp_path):
        out = str(tmp_path / "BENCH_5.json")
        code = bench_main(
            [
                "--scale",
                "tiny",
                "--policies",
                "fcfs",
                "--skip-verify",
                "--skip-micro",
                "--no-regression-check",
                "--out",
                out,
            ]
        )
        assert code == 0
        with open(out, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["bench"] == "BENCH_5"
        assert report["scale"] == "tiny"
        entry = report["macro"]["policies"]["fcfs"]
        assert entry["optimized"]["tick_cycles_per_sec"] > 0
        assert entry["reference"]["tick_cycles_per_sec"] > 0
        assert entry["speedup_tick_loop"] > 0

    def test_main_fails_on_regression(self, tmp_path):
        out = str(tmp_path / "BENCH_5.json")
        baseline_path = str(tmp_path / "baseline.json")
        write_report(
            baseline_path, _report(scale="tiny", speedup=1e9, policy="fcfs")
        )
        code = bench_main(
            [
                "--scale",
                "tiny",
                "--policies",
                "fcfs",
                "--skip-verify",
                "--skip-micro",
                "--baseline",
                baseline_path,
                "--out",
                out,
            ]
        )
        assert code == 1
