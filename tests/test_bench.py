"""Tests for the repro.bench performance harness."""

import json

import pytest

from repro.bench import (
    DEFAULT_POLICIES,
    SCALES,
    SCHEMA_VERSION,
    baseline_speedups,
    certify_event_speedup,
    check_regression,
    load_report,
    run_macro,
    run_micro,
    verify_equivalence,
    write_report,
)
from repro.bench.__main__ import main as bench_main
from repro.params import BACKENDS


class TestScales:
    def test_known_scales(self):
        assert {"tiny", "quick", "medium", "paper"} <= set(SCALES)

    def test_sizes_monotone(self):
        order = ["tiny", "quick", "medium", "paper"]
        accesses = [SCALES[name].macro_accesses for name in order]
        assert accesses == sorted(accesses)

    def test_default_policies_cover_golden_matrix(self):
        assert "padc" in DEFAULT_POLICIES
        assert "fcfs" in DEFAULT_POLICIES


class TestMacro:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_macro_reports_tick_loop(self, backend):
        sample = run_macro("fcfs", "tiny", backend)
        assert sample["backend"] == backend
        assert sample["cycles"] > 0
        assert sample["wall_s"] > 0
        assert sample["tick_loop_s"] > 0
        assert sample["tick_calls"] > 0
        assert sample["tick_loop_s"] <= sample["wall_s"]
        assert sample["cycles_per_sec"] == pytest.approx(
            sample["cycles"] / sample["wall_s"], rel=1e-3
        )
        assert sample["tick_cycles_per_sec"] >= sample["cycles_per_sec"]

    def test_run_macro_deterministic_cycles(self):
        # Same simulation on every backend; only the wall time may differ.
        cycles = {run_macro("fcfs", "tiny", backend)["cycles"] for backend in BACKENDS}
        assert len(cycles) == 1


class TestMicro:
    def test_run_micro_drains_all_requests(self):
        sample = run_micro("demand-first", "tiny", "optimized")
        assert sample["requests"] > 0
        assert sample["cycles"] > 0
        assert sample["ticks"] > 0
        assert sample["requests_per_sec"] > 0

    def test_micro_deterministic_across_backends(self):
        samples = [run_micro("demand-first", "tiny", b) for b in BACKENDS]
        assert len({s["requests"] for s in samples}) == 1
        assert len({s["cycles"] for s in samples}) == 1


class TestRoundsPinned:
    """Satellite regression pin for the padc-rank tiny-scale macrobench cell.

    The BENCH_5-era tick loop re-armed a wake for every scheduling round
    and the ranked census rebuilt even when nothing moved, which showed
    up as a 0.939x tick-loop ratio at tiny scale.  This pins the exact
    number of scheduling rounds the fixed hot path executes for the
    macrobench mix at tiny scale (seed 7) — a behavioral change that
    inflates round count (extra no-op wakes, lost skip-ahead) breaks the
    pin even when byte-identity still holds.  Regenerate the constant by
    running the loop below if the simulation semantics legitimately
    change (CACHE_VERSION bump).
    """

    PINNED_ROUNDS = 6582
    PINNED_CYCLES = 257295

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_padc_rank_tiny_rounds_pinned(self, backend):
        from repro.bench import MACRO_MIX, MACRO_SEED, _macro_config
        from repro.sim.system import System

        system = System(
            _macro_config("padc-rank"),
            list(MACRO_MIX),
            seed=MACRO_SEED,
            backend=backend,
        )
        result = system.run(SCALES["tiny"].macro_accesses)
        assert system.engine.stats.rounds == self.PINNED_ROUNDS
        assert result.total_cycles == self.PINNED_CYCLES


class TestEquivalence:
    def test_single_case_identical(self):
        result = verify_equivalence(
            ["padc"], "tiny", mixes=[["mcf_06", "swim_00"][:2]], seeds=[5]
        )
        assert result["cases"] == 1
        assert result["backends"] == list(BACKENDS)
        assert result["mismatches"] == []


class TestCertificate:
    def test_certificate_shape(self):
        certificate = certify_event_speedup("fcfs", "tiny", pairs=1)
        assert certificate["policy"] == "fcfs"
        assert certificate["scale"] == "tiny"
        assert certificate["pairs"] == 1
        assert len(certificate["ratios"]) == 1
        assert certificate["speedup_event_vs_optimized"] > 0
        assert "paired" in certificate["method"]


def _report(scale="tiny", speedup=3.0, policy="padc", extra=None):
    report = {
        "schema_version": SCHEMA_VERSION,
        "scale": scale,
        "macro": {"policies": {policy: {"speedup_tick_loop": speedup}}},
    }
    if extra:
        report.update(extra)
    return report


class TestRegressionCheck:
    def test_pass_same_scale(self):
        assert check_regression(_report(speedup=2.9), _report(speedup=3.0)) == []

    def test_fail_same_scale(self):
        failures = check_regression(_report(speedup=2.0), _report(speedup=3.0))
        assert len(failures) == 1
        assert "padc" in failures[0]

    def test_threshold_boundary(self):
        # 25% below exactly is still allowed; below that fails.
        assert check_regression(_report(speedup=2.25), _report(speedup=3.0)) == []
        assert check_regression(_report(speedup=2.24), _report(speedup=3.0))

    def test_scale_mismatch_without_side_table_skips(self):
        current = _report(scale="tiny", speedup=1.0)
        baseline = _report(scale="medium", speedup=5.0)
        assert check_regression(current, baseline) == []
        assert baseline_speedups(baseline, "tiny") is None

    def test_scale_mismatch_uses_side_table(self):
        baseline = _report(
            scale="medium",
            speedup=5.0,
            extra={"speedups_by_scale": {"tiny": {"padc": 2.0}}},
        )
        assert baseline_speedups(baseline, "tiny") == {"padc": 2.0}
        assert check_regression(_report(scale="tiny", speedup=1.9), baseline) == []
        failures = check_regression(_report(scale="tiny", speedup=1.0), baseline)
        assert len(failures) == 1

    def test_schema_mismatch_fails_loud(self):
        baseline = _report()
        baseline["schema_version"] = SCHEMA_VERSION + 1
        failures = check_regression(_report(), baseline)
        assert failures and "schema_version" in failures[0]

    def test_unbenchmarked_policy_ignored(self):
        current = _report(policy="padc", speedup=3.0)
        baseline = _report(policy="fcfs", speedup=9.0)
        assert check_regression(current, baseline) == []


class TestReportIO:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_6.json")
        report = _report()
        write_report(path, report)
        assert load_report(path) == report

    def test_load_missing_returns_none(self, tmp_path):
        assert load_report(str(tmp_path / "absent.json")) is None

    def test_load_garbage_returns_none(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert load_report(str(path)) is None


class TestCLI:
    def test_main_writes_schema_versioned_report(self, tmp_path):
        out = str(tmp_path / "BENCH_6.json")
        code = bench_main(
            [
                "--scale",
                "tiny",
                "--policies",
                "fcfs",
                "--skip-verify",
                "--skip-micro",
                "--no-regression-check",
                "--certify-pairs",
                "1",
                "--certify-policy",
                "fcfs",
                "--out",
                out,
            ]
        )
        assert code == 0
        with open(out, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["bench"] == "BENCH_10"
        assert report["scale"] == "tiny"
        entry = report["macro"]["policies"]["fcfs"]
        assert entry["event"]["tick_cycles_per_sec"] > 0
        assert entry["optimized"]["tick_cycles_per_sec"] > 0
        assert entry["reference"]["tick_cycles_per_sec"] > 0
        assert entry["speedup_tick_loop"] > 0
        assert entry["speedup_event_end_to_end"] > 0
        assert report["certificate"]["policy"] == "fcfs"
        assert report["certificate"]["speedup_event_vs_optimized"] > 0

    def test_main_fails_on_regression(self, tmp_path):
        out = str(tmp_path / "BENCH_6.json")
        baseline_path = str(tmp_path / "baseline.json")
        write_report(
            baseline_path, _report(scale="tiny", speedup=1e9, policy="fcfs")
        )
        code = bench_main(
            [
                "--scale",
                "tiny",
                "--policies",
                "fcfs",
                "--skip-verify",
                "--skip-micro",
                "--skip-certify",
                "--baseline",
                baseline_path,
                "--out",
                out,
            ]
        )
        assert code == 1
