"""Integration tests for the less-travelled system variants."""

from dataclasses import replace

import pytest

from repro.params import baseline_config
from repro.sim import System, simulate
from repro.workloads import BenchmarkProfile

STREAMY = BenchmarkProfile(
    name="streamy",
    pf_class=1,
    apki=20.0,
    stream_fraction=0.97,
    run_length=2048,
    num_streams=2,
    ws_lines=1 << 20,
)

JUNKY = BenchmarkProfile(
    name="junky",
    pf_class=2,
    apki=10.0,
    stream_fraction=0.6,
    run_length=6,
    num_streams=4,
    ws_lines=1 << 18,
)


class TestRankingPolicy:
    def test_padc_rank_runs(self):
        config = baseline_config(4, policy="padc", use_ranking=True)
        result = simulate(
            config,
            [STREAMY, JUNKY, STREAMY, JUNKY],
            max_accesses_per_core=1_000,
        )
        assert all(core.loads == 1_000 for core in result.cores)

    def test_ranking_differs_from_plain_padc(self):
        mix = [STREAMY, JUNKY, STREAMY, JUNKY]
        plain = simulate(
            baseline_config(4, policy="padc"), mix, max_accesses_per_core=1_500
        )
        ranked = simulate(
            baseline_config(4, policy="padc", use_ranking=True),
            mix,
            max_accesses_per_core=1_500,
        )
        # The schedulers must actually diverge somewhere.
        assert plain.total_cycles != ranked.total_cycles


class TestUrgencyToggle:
    def test_urgency_off_runs_and_differs(self):
        # Enough cores/contention that the urgency tie-break actually
        # reorders some scheduling decisions.
        mix = [STREAMY, JUNKY, STREAMY, JUNKY]
        with_urgency = simulate(
            baseline_config(4, policy="aps", use_urgency=True),
            mix,
            max_accesses_per_core=2_500,
        )
        without = simulate(
            baseline_config(4, policy="aps", use_urgency=False),
            mix,
            max_accesses_per_core=2_500,
        )
        assert with_urgency.total_cycles != without.total_cycles


class TestPrefetchFirstPolicy:
    def test_prefetch_first_is_worst_for_junky(self):
        """The paper's footnote 2: prefetch-first performs worst."""
        results = {}
        for policy in ("demand-first", "prefetch-first"):
            config = baseline_config(1, policy=policy)
            results[policy] = simulate(
                config, [JUNKY], max_accesses_per_core=2_500
            )
        assert results["prefetch-first"].ipc() <= results["demand-first"].ipc()


class TestPermutationInterleaving:
    def test_permutation_runs_and_spreads_banks(self):
        config = baseline_config(2, policy="padc", permutation=True)
        result = simulate(
            config, [STREAMY, JUNKY], max_accesses_per_core=1_200
        )
        assert all(core.loads == 1_200 for core in result.cores)

    def test_permutation_changes_timing(self):
        mix = [STREAMY, JUNKY]
        plain = simulate(
            baseline_config(2, policy="demand-first"),
            mix,
            max_accesses_per_core=1_500,
        )
        permuted = simulate(
            baseline_config(2, policy="demand-first", permutation=True),
            mix,
            max_accesses_per_core=1_500,
        )
        assert plain.total_cycles != permuted.total_cycles


class TestDemandFirstAPD:
    def test_apd_on_demand_first_drops(self):
        config = baseline_config(1, policy="demand-first-apd")
        result = simulate(config, [JUNKY], max_accesses_per_core=4_000)
        assert result.dropped_prefetches > 0


class TestFailureInjection:
    def test_cache_invalidation_mid_run_recovers(self):
        """Random invalidations mid-run must not corrupt the simulation."""
        config = baseline_config(1, policy="padc")
        system = System(config, [STREAMY], seed=0)
        # Run a slice, invalidate resident lines behind the system's back,
        # then continue: the system must re-miss and re-fetch cleanly.
        system.cores[0].target_accesses = 1_000
        system.run(1_000)
        cache = system._caches[0]
        invalidated = 0
        for cache_set in cache._sets:
            for line_addr in list(cache_set)[:2]:
                # Only lines without in-flight state can be dropped safely.
                if not system._mshrs[0].contains(line_addr):
                    cache.invalidate(line_addr)
                    invalidated += 1
        assert invalidated > 0
        result = simulate(config, [STREAMY], max_accesses_per_core=1_000)
        assert result.cores[0].loads == 1_000

    def test_zero_accesses_run(self):
        config = baseline_config(1, policy="padc")
        result = simulate(config, [STREAMY], max_accesses_per_core=0)
        assert result.cores[0].loads == 0
        assert result.total_cycles >= 0

    def test_single_access_run(self):
        config = baseline_config(1, policy="padc")
        result = simulate(config, [STREAMY], max_accesses_per_core=1)
        assert result.cores[0].loads == 1


class TestConfigInteractions:
    @pytest.mark.parametrize("policy", ["padc", "aps", "demand-prefetch-equal"])
    def test_closed_row_with_each_policy(self, policy):
        config = baseline_config(1, policy=policy, open_row=False)
        result = simulate(config, [JUNKY], max_accesses_per_core=1_200)
        assert result.cores[0].loads == 1_200

    def test_shared_cache_with_runahead(self):
        config = baseline_config(
            2, policy="padc", shared_cache=True, runahead=True
        )
        result = simulate(config, [STREAMY, JUNKY], max_accesses_per_core=1_000)
        assert all(core.loads == 1_000 for core in result.cores)

    def test_dual_channel_with_permutation_and_refresh(self):
        config = baseline_config(2, policy="padc", num_channels=2, permutation=True)
        config = replace(config, dram=replace(config.dram, refresh_enabled=True))
        result = simulate(config, [STREAMY, JUNKY], max_accesses_per_core=1_000)
        assert all(core.loads == 1_000 for core in result.cores)

    def test_markov_with_padc_and_filter(self):
        config = baseline_config(
            1, policy="padc", prefetcher_kind="markov", filter_kind="ddpf"
        )
        result = simulate(config, [JUNKY], max_accesses_per_core=1_500)
        assert result.cores[0].loads == 1_500
