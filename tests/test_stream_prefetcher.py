"""Tests for the POWER4/5-style stream prefetcher (paper §2.3)."""

from repro.prefetch.stream import StreamPrefetcher


def make_prefetcher(**kwargs):
    defaults = dict(num_streams=4, degree=4, distance=64)
    defaults.update(kwargs)
    return StreamPrefetcher(**defaults)


class TestAllocationAndTraining:
    def test_miss_allocates_stream(self):
        prefetcher = make_prefetcher()
        assert prefetcher.on_access(100, was_hit=False) == []
        assert len(prefetcher.entries) == 1
        assert prefetcher.entries[0].start == 100

    def test_hit_does_not_allocate(self):
        prefetcher = make_prefetcher()
        prefetcher.on_access(100, was_hit=True)
        assert prefetcher.entries == []

    def test_only_train_mode_does_not_allocate(self):
        prefetcher = make_prefetcher()
        prefetcher.on_access(100, was_hit=False, allocate=False)
        assert prefetcher.entries == []

    def test_direction_detection_ascending(self):
        prefetcher = make_prefetcher()
        prefetcher.on_access(100, was_hit=False)
        assert prefetcher.on_access(102, was_hit=False) == []
        entry = prefetcher.entries[0]
        assert entry.direction == 1
        assert entry.mon_start == 100
        assert entry.mon_end == 164

    def test_direction_detection_descending(self):
        prefetcher = make_prefetcher()
        prefetcher.on_access(100, was_hit=False)
        prefetcher.on_access(98, was_hit=False)
        assert prefetcher.entries[0].direction == -1

    def test_repeated_start_access_stays_training(self):
        prefetcher = make_prefetcher()
        prefetcher.on_access(100, was_hit=False)
        prefetcher.on_access(100, was_hit=True)
        assert prefetcher.entries[0].direction == 0

    def test_far_miss_allocates_second_stream(self):
        prefetcher = make_prefetcher()
        prefetcher.on_access(100, was_hit=False)
        prefetcher.on_access(100_000, was_hit=False)
        assert len(prefetcher.entries) == 2

    def test_lru_replacement_when_full(self):
        prefetcher = make_prefetcher(num_streams=2)
        prefetcher.on_access(100, was_hit=False)
        prefetcher.on_access(10_000, was_hit=False)
        prefetcher.on_access(20_000, was_hit=False)
        assert len(prefetcher.entries) == 2
        assert all(e.start != 100 for e in prefetcher.entries)


class TestPrefetchIssue:
    def issue_sequence(self, prefetcher, start=100):
        prefetcher.on_access(start, was_hit=False)
        prefetcher.on_access(start + 1, was_hit=False)  # sets direction
        return prefetcher.on_access(start + 2, was_hit=True)  # in region

    def test_monitored_access_issues_degree_prefetches(self):
        prefetcher = make_prefetcher()
        candidates = self.issue_sequence(prefetcher)
        # Region [100, 164]: prefetch 165..168 (degree 4 past the edge).
        assert candidates == [165, 166, 167, 168]

    def test_region_shifts_by_degree(self):
        prefetcher = make_prefetcher()
        self.issue_sequence(prefetcher)
        entry = prefetcher.entries[0]
        assert entry.mon_start == 104
        assert entry.mon_end == 168

    def test_access_behind_region_does_not_trigger(self):
        prefetcher = make_prefetcher()
        self.issue_sequence(prefetcher)  # region now [104, 168]
        assert prefetcher.on_access(103, was_hit=True) == []

    def test_steady_state_issue_rate_matches_consumption(self):
        """One line prefetched per line consumed, on average."""
        prefetcher = make_prefetcher()
        prefetcher.on_access(100, was_hit=False)
        prefetcher.on_access(101, was_hit=False)
        issued = 0
        for line in range(102, 302):
            issued += len(prefetcher.on_access(line, was_hit=True))
        assert abs(issued - 200) <= 2 * prefetcher.degree

    def test_negative_addresses_filtered(self):
        prefetcher = make_prefetcher(distance=8, degree=4)
        prefetcher.on_access(10, was_hit=False)
        prefetcher.on_access(9, was_hit=False)  # descending
        candidates = prefetcher.on_access(8, was_hit=True)
        assert all(address >= 0 for address in candidates)


class TestRewind:
    def test_rewind_retreats_region(self):
        prefetcher = make_prefetcher()
        prefetcher.on_access(100, was_hit=False)
        prefetcher.on_access(101, was_hit=False)
        prefetcher.on_access(102, was_hit=True)
        entry = prefetcher.entries[0]
        end_before = entry.mon_end
        prefetcher.rewind(2)
        assert entry.mon_end == end_before - 2

    def test_rewound_lines_reissued_on_next_trigger(self):
        prefetcher = make_prefetcher()
        prefetcher.on_access(100, was_hit=False)
        prefetcher.on_access(101, was_hit=False)
        first = prefetcher.on_access(102, was_hit=True)
        prefetcher.rewind(4)  # nothing was accepted
        second = prefetcher.on_access(104, was_hit=True)
        assert second == first

    def test_rewind_without_trigger_is_noop(self):
        prefetcher = make_prefetcher()
        prefetcher.rewind(4)  # no stream yet; must not crash

    def test_rewind_capped_at_degree(self):
        prefetcher = make_prefetcher()
        prefetcher.on_access(100, was_hit=False)
        prefetcher.on_access(101, was_hit=False)
        prefetcher.on_access(102, was_hit=True)
        entry = prefetcher.entries[0]
        end_before = entry.mon_end
        prefetcher.rewind(100)
        assert entry.mon_end == end_before - prefetcher.degree


class TestAggressiveness:
    def test_set_aggressiveness(self):
        prefetcher = make_prefetcher()
        prefetcher.set_aggressiveness(2, 16)
        assert prefetcher.aggressiveness == (2, 16)
        prefetcher.on_access(100, was_hit=False)
        prefetcher.on_access(101, was_hit=False)
        candidates = prefetcher.on_access(102, was_hit=True)
        assert len(candidates) == 2
