"""Tests for the core model (trace consumption, ROB stall predicate)."""

from repro.core.core import CoreState
from repro.core.trace import TraceEntry, trace_from_tuples
from repro.params import CoreConfig


def make_core(entries, rob_size=64, width=4):
    trace = iter([TraceEntry(*entry) for entry in entries])
    return CoreState(
        0, CoreConfig(rob_size=rob_size, retire_width=width), trace, 100
    )


class TestTraceConsumption:
    def test_next_entry_in_order(self):
        core = make_core([(10, 1, 0), (20, 2, 0)])
        assert core.next_entry() == TraceEntry(10, 1, 0)
        assert core.next_entry() == TraceEntry(20, 2, 0)
        assert core.next_entry() is None

    def test_peek_ahead_preserves_entries(self):
        core = make_core([(1, 1, 0), (2, 2, 0), (3, 3, 0)])
        ahead = core.peek_ahead(2)
        assert list(ahead) == [TraceEntry(1, 1, 0), TraceEntry(2, 2, 0)]
        assert core.next_entry() == TraceEntry(1, 1, 0)

    def test_peek_ahead_beyond_trace_end(self):
        core = make_core([(1, 1, 0)])
        assert len(core.peek_ahead(10)) == 1


class TestExecCycles:
    def test_full_width(self):
        core = make_core([], width=4)
        assert core.exec_cycles(8) == 2

    def test_rounds_up(self):
        core = make_core([], width=4)
        assert core.exec_cycles(9) == 3

    def test_zero_gap(self):
        core = make_core([], width=4)
        assert core.exec_cycles(0) == 0


class TestROBBlocking:
    def test_not_blocked_without_misses(self):
        core = make_core([], rob_size=64)
        core.instructions_issued = 1000
        assert not core.rob_blocked()

    def test_blocked_when_window_exhausted(self):
        core = make_core([], rob_size=64)
        core.outstanding_demand[0x10] = 100
        core.instructions_issued = 164
        assert core.rob_blocked()

    def test_not_blocked_within_window(self):
        core = make_core([], rob_size=64)
        core.outstanding_demand[0x10] = 100
        core.instructions_issued = 150
        assert not core.rob_blocked()

    def test_oldest_miss_governs(self):
        core = make_core([], rob_size=64)
        core.outstanding_demand[0x10] = 100
        core.outstanding_demand[0x20] = 160
        core.instructions_issued = 164
        assert core.rob_blocked()
        del core.outstanding_demand[0x10]
        assert not core.rob_blocked()


class TestResults:
    def test_ipc_counts_loads_as_instructions(self):
        core = make_core([])
        core.instructions_issued = 900
        core.accesses_done = 100
        core.finish_time = 500
        assert core.instructions_retired == 1000
        assert core.ipc() == 2.0

    def test_spl(self):
        core = make_core([])
        core.stall_cycles = 300
        core.loads = 100
        assert core.spl() == 3.0

    def test_spl_no_loads(self):
        assert make_core([]).spl() == 0.0

    def test_ipc_unfinished(self):
        assert make_core([]).ipc() == 0.0


class TestTraceAdapter:
    def test_two_tuples(self):
        entries = list(trace_from_tuples([(5, 100), (6, 200)]))
        assert entries == [TraceEntry(5, 100, 0), TraceEntry(6, 200, 0)]

    def test_three_tuples(self):
        entries = list(trace_from_tuples([(5, 100, 7)]))
        assert entries == [TraceEntry(5, 100, 7)]
