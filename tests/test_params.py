"""Unit tests for configuration dataclasses and the baseline builder."""

import dataclasses

import pytest

from repro.params import (
    ALL_POLICIES,
    CacheConfig,
    DRAMConfig,
    DRAMTimings,
    PrefetcherConfig,
    SystemConfig,
    baseline_config,
)


class TestDRAMTimings:
    def test_row_hit_latency_is_cl(self, timings):
        assert timings.row_hit_latency == timings.cl

    def test_row_closed_latency(self, timings):
        assert timings.row_closed_latency == timings.t_rcd + timings.cl

    def test_row_conflict_latency(self, timings):
        assert (
            timings.row_conflict_latency
            == timings.t_rp + timings.t_rcd + timings.cl
        )

    def test_paper_latency_ratio(self, timings):
        """Hit : closed : conflict should approximate the paper's 1:2:3."""
        hit = timings.row_hit_latency
        assert timings.row_closed_latency == 2 * hit
        assert timings.row_conflict_latency == 3 * hit

    def test_frozen(self, timings):
        with pytest.raises(dataclasses.FrozenInstanceError):
            timings.cl = 10


class TestDRAMConfig:
    def test_lines_per_row(self):
        assert DRAMConfig().lines_per_row == 64

    def test_lines_per_row_scales_with_row_buffer(self):
        config = DRAMConfig(row_buffer_bytes=8 * 1024)
        assert config.lines_per_row == 128


class TestCacheConfig:
    def test_num_sets_baseline(self):
        config = CacheConfig(size_bytes=512 * 1024, associativity=8)
        assert config.num_sets == 1024

    def test_num_sets_small(self):
        config = CacheConfig(size_bytes=8 * 1024, associativity=2)
        assert config.num_sets == 64


class TestPrefetcherConfig:
    def test_enabled(self):
        assert PrefetcherConfig(kind="stream").enabled
        assert not PrefetcherConfig(kind="none").enabled


class TestSystemConfig:
    def test_with_policy_returns_copy(self):
        config = SystemConfig()
        other = config.with_policy("padc")
        assert other.policy == "padc"
        assert config.policy == "demand-first"

    def test_with_policy_padc_overrides(self):
        config = SystemConfig().with_policy("padc", use_ranking=True)
        assert config.padc.use_ranking


class TestBaselineConfig:
    def test_single_core_has_1mb_l2(self):
        config = baseline_config(1)
        assert config.cache.size_bytes == 1024 * 1024

    def test_multicore_has_512kb_l2(self):
        for cores in (2, 4, 8):
            assert baseline_config(cores).cache.size_bytes == 512 * 1024

    @pytest.mark.parametrize(
        "cores,buffer", [(1, 64), (2, 64), (4, 128), (8, 256)]
    )
    def test_request_buffer_scales_like_table4(self, cores, buffer):
        assert baseline_config(cores).dram.request_buffer_size == buffer

    def test_shared_cache_aggregates_capacity(self):
        config = baseline_config(4, shared_cache=True)
        assert config.cache.shared
        assert config.cache.size_bytes == 4 * 512 * 1024
        assert config.cache.associativity == 16

    def test_dual_channel(self):
        assert baseline_config(4, num_channels=2).dram.num_channels == 2

    def test_row_buffer_override(self):
        config = baseline_config(4, row_buffer_kb=64)
        assert config.dram.row_buffer_bytes == 64 * 1024

    def test_closed_row_override(self):
        assert not baseline_config(4, open_row=False).dram.open_row_policy

    def test_runahead_override(self):
        assert baseline_config(4, runahead=True).core.runahead

    def test_filter_kind(self):
        assert baseline_config(4, filter_kind="ddpf").prefetcher.filter_kind == "ddpf"

    def test_all_policies_constant(self):
        assert "padc" in ALL_POLICIES
        assert "demand-first" in ALL_POLICIES
