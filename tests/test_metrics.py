"""Tests for the speedup metrics (WS/HS/IS/UF, gmean)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    geometric_mean,
    harmonic_speedup,
    individual_speedups,
    unfairness,
    weighted_speedup,
)

positive_floats = st.floats(min_value=0.01, max_value=10.0)


class TestIndividualSpeedups:
    def test_basic(self):
        assert individual_speedups([1.0, 2.0], [2.0, 2.0]) == [0.5, 1.0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            individual_speedups([1.0], [1.0, 2.0])

    def test_zero_alone_ipc(self):
        with pytest.raises(ValueError):
            individual_speedups([1.0], [0.0])


class TestWeightedSpeedup:
    def test_equals_core_count_when_no_slowdown(self):
        assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == 2.0

    def test_paper_table9_style(self):
        ws = weighted_speedup([0.8, 0.79, 0.78, 0.77], [1.0, 1.0, 1.0, 1.0])
        assert ws == pytest.approx(3.14)


class TestHarmonicSpeedup:
    def test_identical_speedups(self):
        assert harmonic_speedup([0.5, 0.5], [1.0, 1.0]) == pytest.approx(0.5)

    def test_harmonic_penalizes_imbalance(self):
        balanced = harmonic_speedup([0.5, 0.5], [1.0, 1.0])
        skewed = harmonic_speedup([0.9, 0.1], [1.0, 1.0])
        assert skewed < balanced


class TestUnfairness:
    def test_perfectly_fair(self):
        assert unfairness([0.5, 0.5], [1.0, 1.0]) == 1.0

    def test_ratio(self):
        assert unfairness([0.8, 0.2], [1.0, 1.0]) == pytest.approx(4.0)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestMetricProperties:
    @given(
        st.lists(positive_floats, min_size=1, max_size=8),
        st.lists(positive_floats, min_size=1, max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_ws_bounds(self, together, alone):
        size = min(len(together), len(alone))
        together, alone = together[:size], alone[:size]
        speedups = individual_speedups(together, alone)
        ws = weighted_speedup(together, alone)
        assert ws == pytest.approx(sum(speedups))
        assert ws <= size * max(speedups) + 1e-9

    @given(
        st.lists(positive_floats, min_size=2, max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_hs_between_min_and_arithmetic_mean(self, speedups):
        alone = [1.0] * len(speedups)
        hs = harmonic_speedup(speedups, alone)
        assert min(speedups) - 1e-9 <= hs <= sum(speedups) / len(speedups) + 1e-9

    @given(st.lists(positive_floats, min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_unfairness_at_least_one(self, speedups):
        assert unfairness(speedups, [1.0] * len(speedups)) >= 1.0 - 1e-12

    @given(st.lists(positive_floats, min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_gmean_between_min_and_max(self, values):
        gmean = geometric_mean(values)
        assert min(values) - 1e-9 <= gmean <= max(values) + 1e-9

    @given(st.lists(positive_floats, min_size=1, max_size=8), positive_floats)
    @settings(max_examples=100, deadline=None)
    def test_ws_scale_invariance(self, together, scale):
        """Scaling together and alone IPCs equally leaves WS unchanged."""
        alone = [1.0] * len(together)
        ws = weighted_speedup(together, alone)
        scaled = weighted_speedup(
            [value * scale for value in together],
            [value * scale for value in alone],
        )
        assert math.isclose(ws, scaled, rel_tol=1e-9)
