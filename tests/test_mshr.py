"""Tests for the MSHR file."""

import pytest

from repro.cache.mshr import MSHR
from repro.controller.request import MemRequest


def request(line=0x10, is_prefetch=True):
    return MemRequest(
        line_addr=line,
        core_id=0,
        is_prefetch=is_prefetch,
        arrival=0,
        channel=0,
        bank=0,
        row=0,
    )


class TestAllocation:
    def test_allocate_and_get(self):
        mshr = MSHR(4)
        entry = mshr.allocate(0x10, request(0x10))
        assert entry is not None
        assert mshr.get(0x10) is entry
        assert mshr.contains(0x10)
        assert mshr.occupancy == 1

    def test_allocate_full_returns_none(self):
        mshr = MSHR(2)
        assert mshr.allocate(1, request(1)) is not None
        assert mshr.allocate(2, request(2)) is not None
        assert mshr.full
        assert mshr.allocate(3, request(3)) is None
        assert mshr.allocation_failures == 1

    def test_duplicate_allocation_raises(self):
        mshr = MSHR(4)
        mshr.allocate(1, request(1))
        with pytest.raises(ValueError):
            mshr.allocate(1, request(1))

    def test_free_releases_entry(self):
        mshr = MSHR(1)
        mshr.allocate(1, request(1))
        entry = mshr.free(1)
        assert entry is not None
        assert not mshr.contains(1)
        assert mshr.allocate(2, request(2)) is not None

    def test_free_missing_returns_none(self):
        assert MSHR(1).free(99) is None


class TestEntrySemantics:
    def test_entry_records_prefetch_origin(self):
        mshr = MSHR(4)
        entry = mshr.allocate(1, request(1, is_prefetch=True))
        assert entry.was_prefetch
        assert not entry.promoted_late
        assert entry.waiters == []

    def test_waiters_accumulate(self):
        mshr = MSHR(4)
        entry = mshr.allocate(1, request(1))
        entry.waiters.append(0)
        entry.waiters.append(2)
        assert mshr.get(1).waiters == [0, 2]


class TestCheapViews:
    """DESIGN.md §15 regression pins: entries() is a view, occupancy O(1).

    The pre-optimization ``entries()`` materialized a fresh list per
    call, which the validate-mode checker turned into an O(n) allocation
    on every scan.  These tests pin the cheap-view contract so a future
    refactor that quietly reintroduces copying fails loudly.
    """

    def test_entries_is_a_live_view_not_a_copy(self):
        from collections.abc import ValuesView

        mshr = MSHR(4)
        view = mshr.entries()
        assert isinstance(view, ValuesView)
        assert len(view) == 0
        entry = mshr.allocate(1, request(1))
        # The same view object observes the mutation: no re-call, no copy.
        assert len(view) == 1
        assert entry in view
        mshr.free(1)
        assert len(view) == 0

    def test_occupancy_matches_entries_without_scanning(self):
        mshr = MSHR(8)
        for line in range(5):
            mshr.allocate(line, request(line))
        assert mshr.occupancy == 5 == len(mshr.entries())
        assert not mshr.full
        for line in range(5, 8):
            mshr.allocate(line, request(line))
        assert mshr.full
        assert mshr.occupancy == 8 == len(mshr.entries())
