"""tools/check_py39_compat.py: the guard for ``requires-python = ">=3.9"``.

The checker itself must flag 3.10+ syntax and version-gated attribute
calls (self-test), and the shipped ``src/`` tree must come up clean —
the regression that motivated it was an ``add_note`` call (3.11+) inside
an error path, which turned every worker failure into an
``AttributeError`` on 3.9.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from check_py39_compat import check_source, check_tree, main  # noqa: E402

SRC = Path(__file__).resolve().parent.parent / "src"


class TestSourceTreeIsClean:
    def test_src_has_no_39_compat_findings(self):
        findings = check_tree([SRC])
        assert findings == []

    def test_cli_passes_on_src(self, capsys):
        assert main([str(SRC)]) == 0
        assert "compatible" in capsys.readouterr().out


class TestCheckerSelfTest:
    def test_flags_add_note_call(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(
            "try:\n"
            "    pass\n"
            "except Exception as error:\n"
            "    error.add_note('context')\n"
            "    raise\n"
        )
        findings = check_source(path, path.read_text())
        assert len(findings) == 1
        assert "add_note" in findings[0]
        assert "3.11+" in findings[0]
        assert f"{path}:4" in findings[0]

    def test_flags_match_statement(self, tmp_path):
        path = tmp_path / "match.py"
        path.write_text(
            "def f(x):\n"
            "    match x:\n"
            "        case 1:\n"
            "            return 'one'\n"
            "    return 'other'\n"
        )
        findings = check_source(path, path.read_text())
        assert len(findings) == 1
        assert "3.9 syntax" in findings[0]

    def test_clean_39_code_passes(self, tmp_path):
        path = tmp_path / "fine.py"
        path.write_text(
            "from typing import Optional\n"
            "def f(x: Optional[int] = None) -> int:\n"
            "    note = 'add_note'  # the *string* is fine; only calls flag\n"
            "    return (x or 0) + len(note)\n"
        )
        assert check_source(path, path.read_text()) == []

    def test_cli_fails_on_findings(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("x = object()\nx.add_note('y')\n")
        assert main([str(path)]) == 1
        assert "add_note" in capsys.readouterr().err
