"""TraceWorkload: spec parsing, resolution, simulation, cache identity."""

from pathlib import Path

import pytest

from repro import api
from repro.campaign import CampaignSpec, SpecError, Workload
from repro.params import baseline_config
from repro.runtime import SimJob
from repro.runtime.store import CACHE_VERSION
from repro.trace import (
    TraceLookupError,
    TraceWorkload,
    discovered_traces,
    parse_trace_spec,
    register_trace,
    resolve_trace,
)
from repro.trace.convert import convert
from repro.trace.format import TraceFormatError, write_trace
from repro.workloads import canonical_workload, make_trace, resolve_workload
from repro.workloads.profiles import BenchmarkProfile, get_profile

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def champsim_rtr(tmp_path):
    path = tmp_path / "champsim_small.rtr"
    convert(FIXTURES / "champsim_small.txt", path, "champsim")
    return path


@pytest.fixture
def synth_rtr(tmp_path):
    path = tmp_path / "swim.rtr"
    write_trace(path, make_trace("swim", seed=0), limit=4000)
    return path


# -- spec parsing ------------------------------------------------------------


def test_parse_spec_knobs():
    assert parse_trace_spec("trace:mcf") == ("mcf", {"start": 0, "limit": 0, "loop": 1})
    assert parse_trace_spec("trace:mcf?start=5,limit=10,loop=0") == (
        "mcf",
        {"start": 5, "limit": 10, "loop": 0},
    )
    # "&" separates knobs too (comma-splitting CLI surfaces).
    assert parse_trace_spec("trace:mcf?start=5&loop=0") == (
        "mcf",
        {"start": 5, "limit": 0, "loop": 0},
    )


@pytest.mark.parametrize(
    "spec, match",
    [
        ("mcf", "not a trace spec"),
        ("trace:", "empty trace name"),
        ("trace:mcf?strt=5", "did you mean start"),
        ("trace:mcf?start=x", "not an integer"),
        ("trace:mcf?start=-1", "start must be"),
        ("trace:mcf?limit=-2", "limit must be"),
        ("trace:mcf?loop=2", "loop must be"),
    ],
)
def test_parse_spec_rejects(spec, match):
    with pytest.raises(TraceLookupError, match=match):
        parse_trace_spec(spec)


# -- name resolution ---------------------------------------------------------


def test_registry_resolution(champsim_rtr):
    register_trace("champ", champsim_rtr)
    workload = resolve_trace("trace:champ")
    assert workload.name == "champ"
    assert workload.path == str(champsim_rtr)
    assert "champ" in discovered_traces()


def test_register_rejects_bad_names(champsim_rtr):
    with pytest.raises(TraceLookupError, match="non-empty"):
        register_trace("bad name", champsim_rtr)
    with pytest.raises(TraceFormatError):
        register_trace("ok", FIXTURES / "champsim_small.txt")  # not a .rtr


def test_trace_path_env_resolution(champsim_rtr, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_PATH", str(tmp_path))
    workload = resolve_trace("trace:champsim_small")
    assert workload.path == str(champsim_rtr)
    # Registered names win over $REPRO_TRACE_PATH hits.
    other = tmp_path / "other.rtr"
    write_trace(other, make_trace("mcf", seed=1), limit=50)
    register_trace("champsim_small", other)
    assert resolve_trace("trace:champsim_small").path == str(other)


def test_unknown_name_suggests(champsim_rtr, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_PATH", str(tmp_path))
    with pytest.raises(TraceLookupError, match="did you mean champsim_small"):
        resolve_trace("trace:champsim_smal")


def test_no_traces_hint():
    with pytest.raises(TraceLookupError, match="no traces are registered"):
        resolve_trace("trace:anything")


def test_literal_path_resolution(champsim_rtr):
    workload = resolve_trace(f"trace:{champsim_rtr}")
    assert workload.path == str(champsim_rtr)
    # Bare paths (no prefix) work through resolve_trace too.
    assert resolve_trace(str(champsim_rtr)).digest == workload.digest


# -- the workload itself -----------------------------------------------------


def test_entries_window_loop_and_offset(synth_rtr):
    workload = resolve_trace(f"trace:{synth_rtr}?start=10,limit=100")
    assert workload.window_entries() == 100
    stream = workload.entries(offset=1 << 54)
    first_pass = [next(stream) for _ in range(100)]
    second_pass = [next(stream) for _ in range(100)]
    assert first_pass == second_pass  # looping is deterministic
    assert all(entry.line_addr >> 54 for entry in first_pass)  # offset applied

    finite = resolve_trace(f"trace:{synth_rtr}?limit=37,loop=0")
    assert len(list(finite.entries())) == 37


def test_entries_detects_changed_file(synth_rtr, tmp_path):
    workload = resolve_trace(f"trace:{synth_rtr}")
    write_trace(synth_rtr, make_trace("mcf", seed=5), limit=4000)
    with pytest.raises(TraceFormatError, match="changed after"):
        next(workload.entries())


def test_workload_validates_knobs():
    with pytest.raises(ValueError):
        TraceWorkload(digest="00", start=-1)
    with pytest.raises(ValueError):
        TraceWorkload(digest="00", limit=-1)


def test_resolve_workload_front_door(synth_rtr):
    profile = resolve_workload("swim")
    assert profile is get_profile("swim")
    assert resolve_workload(profile) is profile
    workload = resolve_workload(f"trace:{synth_rtr}")
    assert isinstance(workload, TraceWorkload)
    assert resolve_workload(workload) is workload
    with pytest.raises(TypeError, match="cannot resolve workload"):
        resolve_workload(42)


# -- simulation --------------------------------------------------------------


def test_trace_simulation_backend_identity(champsim_rtr):
    """Acceptance: trace workloads simulate byte-identically on every backend."""
    register_trace("champsim_small", champsim_rtr)
    config = baseline_config(2, policy="padc")
    benchmarks = ["trace:champsim_small", "trace:champsim_small?start=20"]
    results = {
        backend: api.simulate(
            config, benchmarks, max_accesses_per_core=800, backend=backend
        ).to_dict()
        for backend in ("event", "optimized", "reference")
    }
    assert results["event"] == results["optimized"] == results["reference"]
    event = results["event"]
    assert event["cores"][0]["benchmark"] == "champsim_small"
    assert event["cores"][0]["loads"] == 800  # the 200-entry trace looped


def test_trace_and_synthetic_mix(synth_rtr):
    config = baseline_config(2, policy="demand-first")
    result = api.simulate(
        config, [f"trace:{synth_rtr}", "mcf"], max_accesses_per_core=500
    )
    assert result.cores[0].benchmark == str(synth_rtr)
    assert result.cores[1].benchmark == "mcf_06"
    assert result.cores[0].loads == 500


def test_trace_seed_does_not_perturb_replay(synth_rtr):
    config = baseline_config(1, policy="demand-first")
    a = api.simulate(config, [f"trace:{synth_rtr}"], 300, seed=0)
    b = api.simulate(config, [f"trace:{synth_rtr}"], 300, seed=99)
    assert a.to_dict() == b.to_dict()


def test_api_register_and_trace_workload_helpers(synth_rtr):
    api.register_trace("synth", synth_rtr)
    workload = api.trace_workload("trace:synth?limit=64")
    assert isinstance(workload, TraceWorkload)
    assert workload.limit == 64


# -- cache identity (content digest, never path) -----------------------------


def test_cache_version_bumped_for_trace_subsystem():
    assert CACHE_VERSION == 6


def test_same_content_two_paths_share_cache_key(synth_rtr, tmp_path):
    copy = tmp_path / "elsewhere" / "renamed.rtr"
    copy.parent.mkdir()
    copy.write_bytes(synth_rtr.read_bytes())
    config = baseline_config(1, policy="padc")
    key_a = SimJob.make(config, [f"trace:{synth_rtr}"], 500).key()
    key_b = SimJob.make(config, [f"trace:{copy}"], 500).key()
    assert key_a == key_b
    # ... and a resolved TraceWorkload spells the same job identically.
    key_c = SimJob.make(config, [resolve_trace(f"trace:{copy}")], 500).key()
    assert key_a == key_c


def test_edited_trace_invalidates_cache_key(synth_rtr):
    config = baseline_config(1, policy="padc")
    before = SimJob.make(config, [f"trace:{synth_rtr}"], 500).key()
    write_trace(synth_rtr, make_trace("mcf", seed=7), limit=4000)
    after = SimJob.make(config, [f"trace:{synth_rtr}"], 500).key()
    assert before != after


def test_window_knobs_are_part_of_identity(synth_rtr):
    config = baseline_config(1, policy="padc")
    base = SimJob.make(config, [f"trace:{synth_rtr}"], 500).key()
    windowed = SimJob.make(config, [f"trace:{synth_rtr}?start=1"], 500).key()
    assert base != windowed


def test_canonical_workload_excludes_name_and_path(synth_rtr):
    workload = resolve_trace(f"trace:{synth_rtr}", name="pretty")
    canonical = canonical_workload(workload)
    assert canonical == canonical_workload(f"trace:{synth_rtr}")
    flat = repr(canonical)
    assert "pretty" not in flat and str(synth_rtr) not in flat
    assert workload.digest in flat
    # Plain names stay strings; profiles canonicalize as themselves.
    assert canonical_workload("swim") == "swim"
    assert isinstance(canonical_workload(get_profile("swim")), dict)


def test_cached_result_round_trip(synth_rtr):
    config = baseline_config(1, policy="demand-first")
    cold = api.submit(config, [f"trace:{synth_rtr}"], 300)
    warm = api.submit(config, [f"trace:{synth_rtr}"], 300)
    assert cold.to_dict() == warm.to_dict()


# -- campaign validation (satellite: did-you-mean at spec time) --------------


def _spec(benchmarks):
    return CampaignSpec.build(
        name="t",
        workloads=[Workload.make(benchmarks)],
        policies=["demand-first"],
        accesses=100,
        include_alone=False,
    )


def test_campaign_spec_accepts_trace_names(champsim_rtr, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_PATH", str(tmp_path))
    spec = _spec(["trace:champsim_small", "swim_00"])
    assert spec.workloads[0].benchmarks[0] == "trace:champsim_small"


def test_campaign_spec_trace_did_you_mean(champsim_rtr, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_PATH", str(tmp_path))
    with pytest.raises(SpecError, match="did you mean champsim_small"):
        _spec(["trace:champsim_smal"])


def test_campaign_spec_trace_knob_typo(champsim_rtr, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_PATH", str(tmp_path))
    with pytest.raises(SpecError, match="did you mean start"):
        _spec(["trace:champsim_small?strt=5"])


def test_campaign_spec_missing_trace_fails_loudly():
    with pytest.raises(SpecError, match="no traces are registered"):
        _spec(["trace:absent"])


# -- the checked-in smoke campaign matches its golden export -----------------


def test_trace_smoke_campaign_matches_golden(monkeypatch, tmp_path):
    traces = tmp_path / "traces"
    convert(FIXTURES / "champsim_small.txt", traces / "champsim_small.rtr", "champsim")
    convert(FIXTURES / "gem5_small.csv", traces / "gem5_small.rtr", "gem5")
    monkeypatch.setenv("REPRO_TRACE_PATH", str(traces))
    import json

    spec = CampaignSpec.from_dict(
        json.loads((FIXTURES / "trace_smoke_spec.json").read_text())
    )
    run = api.campaign(spec, directory=tmp_path / "campaign")
    assert run.campaign.status_counts().get("done") == 4
    exported = api.campaign_open(tmp_path / "campaign").export()
    golden = (Path(__file__).parent / "golden" / "trace_smoke.csv").read_text()
    assert exported == golden
