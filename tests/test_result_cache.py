"""The on-disk result cache: serialization, keying, invalidation, knobs."""

import json
from dataclasses import replace

import pytest

from repro import runtime, sim
from repro.params import baseline_config
from repro.runtime import ResultStore, Runtime, SimJob, cache_key
from repro.runtime import store as store_module
from repro.sim.results import CoreResult, SimResult


def _job(config=None, benchmark="swim", accesses=300, seed=1, **sim_kwargs):
    return SimJob.make(
        config or baseline_config(1, policy="padc"),
        [benchmark],
        accesses,
        seed=seed,
        **sim_kwargs,
    )


def _small_result(**sim_kwargs):
    return sim.simulate(
        baseline_config(1, policy="padc"),
        ["swim"],
        max_accesses_per_core=300,
        seed=1,
        **sim_kwargs,
    )


class TestSimResultSerialization:
    def test_json_round_trip_is_exact(self):
        result = _small_result()
        clone = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == result

    def test_round_trip_keeps_service_times_and_history(self):
        result = _small_result(collect_service_times=True)
        clone = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == result
        assert clone.cores[0].useful_service_times == (
            result.cores[0].useful_service_times
        )
        assert clone.accuracy_history == result.accuracy_history

    def test_core_result_round_trip(self):
        core = CoreResult(core_id=2, benchmark="art", instructions=10, cycles=4)
        assert CoreResult.from_dict(core.to_dict()) == core
        assert CoreResult.from_dict(core.to_dict()).ipc == core.ipc


class TestCacheKey:
    def test_stable_for_equal_jobs(self):
        assert _job().key() == _job().key()

    def test_every_config_field_is_keyed(self):
        base = baseline_config(1, policy="padc")
        variants = [
            replace(base, dram=replace(base.dram, banks_per_channel=2)),
            replace(base, padc=replace(base.padc, drop_thresholds=((1.01, 10),))),
            replace(base, cache=replace(base.cache, mshr_entries=16)),
            base.with_policy("aps"),
        ]
        keys = {_job(config=config).key() for config in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_workload_accesses_seed_and_kwargs_keyed(self):
        keys = {
            _job().key(),
            _job(benchmark="milc").key(),
            _job(accesses=301).key(),
            _job(seed=2).key(),
            _job(collect_service_times=True).key(),
        }
        assert len(keys) == 5

    def test_version_stamp_changes_key(self, monkeypatch):
        before = _job().key()
        monkeypatch.setattr(store_module, "CACHE_VERSION", 999)
        assert _job().key() != before


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        result = _small_result()
        key = _job().key()
        path = store.put(key, result)
        assert path.is_file() and key in store
        assert store.get(key) == result

    def test_missing_key_is_none(self, tmp_path):
        assert ResultStore(tmp_path).get("0" * 64) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = _job().key()
        store.put(key, _small_result())
        store.path_for(key).write_text("{not json")
        assert store.get(key) is None


class TestRuntimeCaching:
    def _counting_runtime(self, tmp_path, monkeypatch):
        calls = []
        real = sim.simulate

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(sim, "simulate", counting)
        return Runtime(jobs=1, cache_dir=str(tmp_path / "cache")), calls

    def test_hit_skips_simulate_and_matches_live_result(self, tmp_path, monkeypatch):
        executor, calls = self._counting_runtime(tmp_path, monkeypatch)
        live = executor.run(_job())
        assert len(calls) == 1
        cached = executor.run(_job())
        assert len(calls) == 1  # second run served from disk
        assert cached.to_dict() == live.to_dict()

    def test_changed_config_field_invalidates(self, tmp_path, monkeypatch):
        executor, calls = self._counting_runtime(tmp_path, monkeypatch)
        base = baseline_config(1, policy="padc")
        executor.run(_job(config=base))
        changed = replace(base, dram=replace(base.dram, banks_per_channel=2))
        executor.run(_job(config=changed))
        assert len(calls) == 2

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        executor, calls = self._counting_runtime(tmp_path, monkeypatch)
        executor.run(_job())
        monkeypatch.setattr(store_module, "CACHE_VERSION", 999)
        executor.run(_job())
        assert len(calls) == 2

    def test_disabled_cache_writes_nothing_and_recomputes(
        self, tmp_path, monkeypatch
    ):
        calls = []
        real = sim.simulate

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(sim, "simulate", counting)
        cache_dir = tmp_path / "cache"
        executor = Runtime(jobs=1, cache_dir=str(cache_dir), cache_enabled=False)
        executor.run(_job())
        executor.run(_job())
        assert len(calls) == 2
        assert not cache_dir.exists()

    def test_repro_cache_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert Runtime().cache_enabled is False
        assert runtime.get_runtime().cache_enabled is False
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert Runtime().cache_enabled is True

    def test_cache_dir_env_respected(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        executor = Runtime(jobs=1)
        executor.run(_job())
        assert (tmp_path / "elsewhere").is_dir()
        assert len(executor.store) == 1
