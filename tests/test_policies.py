"""Tests for rigid scheduling policies and APS priority ordering."""

import pytest

from repro.controller.accuracy import PrefetchAccuracyTracker
from repro.controller.aps import AdaptivePrefetchScheduler
from repro.controller.policies import (
    DemandFirstPolicy,
    DemandPrefetchEqualPolicy,
    PrefetchFirstPolicy,
    make_policy,
)
from repro.controller.request import MemRequest


def request(is_prefetch, arrival, core=0):
    return MemRequest(
        line_addr=arrival,
        core_id=core,
        is_prefetch=is_prefetch,
        arrival=arrival,
        channel=0,
        bank=0,
        row=0,
    )


class TestDemandFirst:
    def test_demand_beats_row_hit_prefetch(self):
        policy = DemandFirstPolicy()
        demand = policy.priority(request(False, 10), row_hit=False)
        prefetch = policy.priority(request(True, 5), row_hit=True)
        assert demand > prefetch

    def test_row_hit_breaks_tie_among_demands(self):
        policy = DemandFirstPolicy()
        hit = policy.priority(request(False, 10), row_hit=True)
        conflict = policy.priority(request(False, 5), row_hit=False)
        assert hit > conflict

    def test_fcfs_last(self):
        policy = DemandFirstPolicy()
        older = policy.priority(request(False, 5), row_hit=True)
        younger = policy.priority(request(False, 10), row_hit=True)
        assert older > younger


class TestDemandPrefetchEqual:
    def test_ignores_p_bit(self):
        policy = DemandPrefetchEqualPolicy()
        prefetch = policy.priority(request(True, 5), row_hit=True)
        demand = policy.priority(request(False, 5), row_hit=True)
        assert prefetch == demand

    def test_row_hit_first(self):
        policy = DemandPrefetchEqualPolicy()
        hit = policy.priority(request(True, 10), row_hit=True)
        conflict = policy.priority(request(False, 5), row_hit=False)
        assert hit > conflict


class TestPrefetchFirst:
    def test_prefetch_beats_demand(self):
        policy = PrefetchFirstPolicy()
        prefetch = policy.priority(request(True, 10), row_hit=False)
        demand = policy.priority(request(False, 5), row_hit=True)
        assert prefetch > demand


class TestAPSPriorities:
    def make_aps(self, accuracies, use_urgency=True, use_ranking=False):
        tracker = PrefetchAccuracyTracker(num_cores=len(accuracies))
        for core, accuracy in enumerate(accuracies):
            for _ in range(100):
                tracker.record_sent(core)
            for _ in range(int(accuracy * 100)):
                tracker.record_used(core)
        tracker.end_interval()
        return AdaptivePrefetchScheduler(
            tracker, use_urgency=use_urgency, use_ranking=use_ranking
        )

    def test_accurate_prefetch_is_critical(self):
        aps = self.make_aps([0.95, 0.10])
        critical_pref = aps.priority(request(True, 10, core=0), row_hit=True)
        demand_conflict = aps.priority(request(False, 5, core=1), row_hit=False)
        assert critical_pref > demand_conflict

    def test_inaccurate_prefetch_loses_to_demand(self):
        aps = self.make_aps([0.10, 0.95])
        useless_pref = aps.priority(request(True, 5, core=0), row_hit=True)
        demand = aps.priority(request(False, 10, core=1), row_hit=False)
        assert demand > useless_pref

    def test_urgency_boosts_inaccurate_cores_demands(self):
        aps = self.make_aps([0.95, 0.10])
        accurate_core_demand = aps.priority(request(False, 5, core=0), row_hit=False)
        urgent_demand = aps.priority(request(False, 10, core=1), row_hit=False)
        assert urgent_demand > accurate_core_demand

    def test_urgency_disabled(self):
        aps = self.make_aps([0.95, 0.10], use_urgency=False)
        accurate_core_demand = aps.priority(request(False, 5, core=0), row_hit=False)
        other_demand = aps.priority(request(False, 10, core=1), row_hit=False)
        assert accurate_core_demand > other_demand  # pure FCFS tie-break

    def test_row_hit_decides_among_criticals(self):
        aps = self.make_aps([0.95, 0.95])
        hit = aps.priority(request(True, 10, core=0), row_hit=True)
        conflict = aps.priority(request(False, 5, core=1), row_hit=False)
        assert hit > conflict


class TestAPSRanking:
    def test_fewer_critical_requests_ranks_higher(self):
        tracker = PrefetchAccuracyTracker(num_cores=2)
        aps = AdaptivePrefetchScheduler(tracker, use_ranking=True)
        queues = [
            [request(False, 1, core=0)],
            [request(False, 2, core=1), request(False, 3, core=1)],
        ]
        aps.begin_tick(queues, now=10)
        light = aps.priority(request(False, 10, core=0), row_hit=False)
        heavy = aps.priority(request(False, 5, core=1), row_hit=False)
        assert light > heavy

    def test_non_critical_requests_get_rank_zero(self):
        tracker = PrefetchAccuracyTracker(num_cores=2)
        for _ in range(10):
            tracker.record_sent(0)
            tracker.record_sent(1)
        tracker.end_interval()  # both cores accuracy 0 -> prefetches non-critical
        aps = AdaptivePrefetchScheduler(tracker, use_ranking=True)
        aps.begin_tick([[], []], now=0)
        older = aps.priority(request(True, 5, core=0), row_hit=False)
        younger = aps.priority(request(True, 9, core=1), row_hit=False)
        assert older > younger  # FCFS among equally-ranked non-criticals

    def test_name_reflects_ranking(self):
        tracker = PrefetchAccuracyTracker(num_cores=1)
        assert AdaptivePrefetchScheduler(tracker).name == "aps"
        assert (
            AdaptivePrefetchScheduler(tracker, use_ranking=True).name == "aps-rank"
        )


class TestMakePolicy:
    def test_known_policies(self):
        tracker = PrefetchAccuracyTracker(num_cores=1)
        assert make_policy("demand-first").name == "demand-first"
        assert make_policy("no-pref").name == "demand-first"
        assert make_policy("demand-first-apd").name == "demand-first"
        assert make_policy("demand-prefetch-equal").name == "demand-prefetch-equal"
        assert make_policy("prefetch-first").name == "prefetch-first"
        assert make_policy("aps", tracker).name == "aps"
        assert make_policy("padc", tracker).name == "aps"

    def test_aps_requires_tracker(self):
        with pytest.raises(ValueError):
            make_policy("aps")

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("magic")
