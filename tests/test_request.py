"""Tests for memory-request-buffer entries."""

from repro.controller.request import MemRequest


def make_request(**kwargs):
    defaults = dict(
        line_addr=0x100,
        core_id=0,
        is_prefetch=True,
        arrival=1000,
        channel=0,
        bank=2,
        row=7,
    )
    defaults.update(kwargs)
    return MemRequest(**defaults)


class TestPromotion:
    def test_promote_clears_p_bit(self):
        request = make_request()
        request.promote()
        assert not request.is_prefetch
        assert request.promoted

    def test_promote_demand_is_noop(self):
        request = make_request(is_prefetch=False)
        request.promote()
        assert not request.promoted

    def test_double_promote_is_idempotent(self):
        request = make_request()
        request.promote()
        request.promote()
        assert request.promoted
        assert not request.is_prefetch


class TestAge:
    def test_age_grows_with_time(self):
        request = make_request(arrival=500)
        assert request.age(500) == 0
        assert request.age(1700) == 1200


class TestDefaults:
    def test_initial_flags(self):
        request = make_request()
        assert request.row_hit_service is None
        assert request.completion is None
        assert not request.dropped
        assert not request.is_runahead

    def test_repr_mentions_kind(self):
        assert "P" in repr(make_request())
        assert "D" in repr(make_request(is_prefetch=False))
