"""Unit tests for experiment-module helpers (no big simulations)."""

import pytest

from repro.experiments.fig04 import HISTOGRAM_EDGES, _bucket
from repro.experiments.fig19_20 import _config as rank_config
from repro.experiments.fig21_22 import _dual_channel_config
from repro.experiments.fig26_27 import _shared_config
from repro.experiments.fig29_30 import FIG29_VARIANTS, _filter_config
from repro.experiments.single_core import FIG6_BENCHMARKS, _bench_list
from repro.experiments.runner import Scale


class TestHistogramBuckets:
    def test_bucket_boundaries(self):
        assert _bucket(1) == "1-200"
        assert _bucket(200) == "1-200"
        assert _bucket(201) == "201-400"
        assert _bucket(1600) == "1401-1600"
        assert _bucket(1601) == "1601+"

    def test_edges_are_increasing(self):
        assert list(HISTOGRAM_EDGES) == sorted(HISTOGRAM_EDGES)


class TestConfigBuilders:
    def test_rank_config(self):
        config = rank_config(4, "padc-rank")
        assert config.policy == "padc"
        assert config.padc.use_ranking
        plain = rank_config(4, "padc")
        assert not plain.padc.use_ranking

    def test_dual_channel_config(self):
        assert _dual_channel_config(8, "padc").dram.num_channels == 2

    def test_shared_config(self):
        config = _shared_config(4, "aps")
        assert config.cache.shared
        assert config.cache.size_bytes == 4 * 512 * 1024

    def test_filter_config_resolves_every_variant(self):
        for label, _policy, filter_kind in FIG29_VARIANTS:
            config = _filter_config(FIG29_VARIANTS, label)
            assert config.prefetcher.filter_kind == filter_kind

    def test_filter_config_unknown_label(self):
        with pytest.raises(KeyError):
            _filter_config(FIG29_VARIANTS, "nonsense")


class TestBenchList:
    def test_truncates_to_scale(self):
        assert _bench_list(Scale(single_core_benches=5)) == FIG6_BENCHMARKS[:5]

    def test_extends_to_population(self):
        names = _bench_list(Scale(single_core_benches=55))
        assert len(names) == 55
        assert len(set(names)) >= 50  # FIG6 uses short aliases, allow overlap

    def test_default_is_fig6_set(self):
        assert tuple(_bench_list(Scale())) == FIG6_BENCHMARKS
