"""Unit tests for experiment-module helpers (no big simulations)."""

import pytest

from repro.campaign import CampaignSpec, expand
from repro.experiments.fig04 import HISTOGRAM_EDGES, _bucket
from repro.experiments.fig19_20 import RANK_POLICIES
from repro.experiments.fig21_22 import DUAL_CHANNEL
from repro.experiments.fig26_27 import SHARED_L2
from repro.experiments.fig29_30 import FIG29_VARIANTS, _filter_config
from repro.experiments.single_core import FIG6_BENCHMARKS, _bench_list
from repro.experiments.runner import Scale


class TestHistogramBuckets:
    def test_bucket_boundaries(self):
        assert _bucket(1) == "1-200"
        assert _bucket(200) == "1-200"
        assert _bucket(201) == "201-400"
        assert _bucket(1600) == "1401-1600"
        assert _bucket(1601) == "1601+"

    def test_edges_are_increasing(self):
        assert list(HISTOGRAM_EDGES) == sorted(HISTOGRAM_EDGES)


class TestDeclarativeConfigVariants:
    """The figures' PolicyVariant/override declarations expand to the
    same SystemConfigs the old per-figure config_builder closures built."""

    def _grid_configs(self, policies, overrides, cores=4):
        spec = CampaignSpec.build(
            "helper-test",
            [["swim"] * cores],
            policies,
            500,
            variants={"base": dict(overrides)},
            include_alone=False,
        )
        return {job.policy: job.job.config for job in expand(spec)}

    def test_rank_variant(self):
        configs = self._grid_configs(RANK_POLICIES, {})
        assert configs["padc-rank"].policy == "padc"
        assert configs["padc-rank"].padc.use_ranking
        assert not configs["padc"].padc.use_ranking

    def test_dual_channel_override(self):
        configs = self._grid_configs(("padc",), DUAL_CHANNEL, cores=8)
        assert configs["padc"].dram.num_channels == 2

    def test_shared_cache_override(self):
        configs = self._grid_configs(("aps",), SHARED_L2)
        config = configs["aps"]
        assert config.cache.shared
        assert config.cache.size_bytes == 4 * 512 * 1024

    def test_filter_config_resolves_every_variant(self):
        for label, _policy, filter_kind in FIG29_VARIANTS:
            config = _filter_config(FIG29_VARIANTS, label)
            assert config.prefetcher.filter_kind == filter_kind

    def test_filter_config_unknown_label(self):
        with pytest.raises(KeyError):
            _filter_config(FIG29_VARIANTS, "nonsense")


class TestBenchList:
    def test_truncates_to_scale(self):
        assert _bench_list(Scale(single_core_benches=5)) == FIG6_BENCHMARKS[:5]

    def test_extends_to_population(self):
        names = _bench_list(Scale(single_core_benches=55))
        assert len(names) == 55
        assert len(set(names)) >= 50  # FIG6 uses short aliases, allow overlap

    def test_default_is_fig6_set(self):
        assert tuple(_bench_list(Scale())) == FIG6_BENCHMARKS
