"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSimulateCommand:
    def test_single_core(self, capsys):
        code = main(
            [
                "simulate",
                "--cores", "1",
                "--policy", "padc",
                "--benchmarks", "swim",
                "--accesses", "800",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "swim_00" in out
        assert "traffic:" in out

    def test_multicore_with_alone(self, capsys):
        code = main(
            [
                "simulate",
                "--cores", "2",
                "--policy", "padc",
                "--benchmarks", "swim,milc",
                "--accesses", "600",
                "--alone",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "WS=" in out and "UF=" in out

    def test_benchmark_count_mismatch(self, capsys):
        code = main(
            ["simulate", "--cores", "2", "--benchmarks", "swim", "--accesses", "100"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_variant_flags(self, capsys):
        code = main(
            [
                "simulate",
                "--cores", "1",
                "--policy", "demand-first",
                "--benchmarks", "leslie3d",
                "--accesses", "500",
                "--prefetcher", "stride",
                "--channels", "2",
                "--runahead",
            ]
        )
        assert code == 0


class TestOtherCommands:
    def test_benchmarks_lists_55(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "55 profiles" in out
        assert "libquantum_06" in out

    def test_cost_matches_paper(self, capsys):
        assert main(["cost", "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "34720" in out
        assert "1824" in out

    def test_cost_with_ranking(self, capsys):
        assert main(["cost", "--cores", "4", "--ranking"]) == 0
        assert "RANK" in capsys.readouterr().out

    def test_trace_dump(self, tmp_path, capsys):
        out_file = tmp_path / "t.gz"
        code = main(["trace", "swim", str(out_file), "--accesses", "300"])
        assert code == 0
        assert out_file.exists()
        assert "300" in capsys.readouterr().out

    def test_experiment_subcommand(self, capsys):
        assert main(["experiment", "fig02"]) == 0
        out = capsys.readouterr().out
        assert "725" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
