"""Tests for the result containers' derived metrics."""

from repro.sim.results import CoreResult, SimResult


def make_core_result(**kwargs):
    defaults = dict(core_id=0, benchmark="x")
    defaults.update(kwargs)
    return CoreResult(**defaults)


class TestCoreResult:
    def test_ipc(self):
        core = make_core_result(instructions=1000, cycles=500)
        assert core.ipc == 2.0

    def test_ipc_zero_cycles(self):
        assert make_core_result().ipc == 0.0

    def test_spl(self):
        core = make_core_result(stall_cycles=500, loads=100)
        assert core.spl == 5.0

    def test_mpki(self):
        core = make_core_result(instructions=10_000, l2_misses=50)
        assert core.mpki == 5.0

    def test_accuracy_and_coverage(self):
        core = make_core_result(pf_sent=100, pf_used=60, demand_fills=40)
        assert core.accuracy == 0.6
        assert core.coverage == 0.6

    def test_accuracy_no_prefetches(self):
        assert make_core_result().accuracy == 0.0

    def test_traffic_categories(self):
        core = make_core_result(
            demand_fills=10,
            promoted_fills=5,
            prefetch_fills=20,
            prefetch_fills_used=12,
            runahead_fills=3,
        )
        assert core.useful_prefetch_traffic == 17
        assert core.useless_prefetch_traffic == 8
        assert core.total_traffic == 38

    def test_rbhu(self):
        core = make_core_result(
            demand_fills=10,
            demand_row_hits=5,
            promoted_fills=2,
            promoted_row_hits=2,
            prefetch_fills=10,
            prefetch_fills_used=8,
            useful_prefetch_row_hits=6,
        )
        assert core.rbhu == (5 + 2 + 6) / (10 + 2 + 8)

    def test_rbhu_empty(self):
        assert make_core_result().rbhu == 0.0


class TestSimResult:
    def make(self):
        cores = [
            make_core_result(
                core_id=0,
                instructions=100,
                cycles=100,
                demand_fills=10,
                prefetch_fills=4,
                prefetch_fills_used=1,
            ),
            make_core_result(
                core_id=1,
                instructions=300,
                cycles=100,
                demand_fills=20,
                promoted_fills=2,
            ),
        ]
        return SimResult(policy="padc", cores=cores, total_cycles=100)

    def test_ipcs(self):
        result = self.make()
        assert result.ipcs() == [1.0, 3.0]
        assert result.ipc(1) == 3.0

    def test_traffic_breakdown(self):
        breakdown = self.make().traffic_breakdown()
        assert breakdown["demand"] == 30
        assert breakdown["pref-useful"] == 3
        assert breakdown["pref-useless"] == 3
        assert sum(breakdown.values()) == self.make().total_traffic

    def test_summary_keys(self):
        summary = self.make().summary()
        assert summary["policy"] == "padc"
        assert summary["ipc_sum"] == 4.0

    def test_num_cores(self):
        assert self.make().num_cores == 2
