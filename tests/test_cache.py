"""Tests for the L2 cache model (LRU, prefetch bits, eviction feedback)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import L2Cache
from repro.params import CacheConfig


def make_cache(sets=4, assoc=2):
    return L2Cache(
        CacheConfig(size_bytes=sets * assoc * 64, associativity=assoc)
    )


class TestLookup:
    def test_miss_on_empty(self):
        cache = make_cache()
        assert not cache.lookup(0x10).hit
        assert cache.demand_misses == 1

    def test_hit_after_fill(self):
        cache = make_cache()
        cache.fill(0x10, prefetched=False, core_id=0)
        assert cache.lookup(0x10).hit
        assert cache.demand_hits == 1

    def test_contains_and_probe_do_not_count(self):
        cache = make_cache()
        cache.fill(0x10, prefetched=False, core_id=0)
        assert cache.contains(0x10)
        assert cache.touch_for_prefetcher(0x10)
        assert cache.demand_hits == 0
        assert cache.demand_misses == 0

    def test_hit_rate(self):
        cache = make_cache()
        cache.fill(0x10, prefetched=False, core_id=0)
        cache.lookup(0x10)
        cache.lookup(0x20)
        assert cache.hit_rate() == 0.5


class TestPrefetchBit:
    def test_first_use_reports_prefetch_metadata(self):
        cache = make_cache()
        cache.fill(0x10, prefetched=True, core_id=3, row_hit_fill=True)
        result = cache.lookup(0x10)
        assert result.hit
        assert result.first_use_of_prefetch
        assert result.prefetch_core == 3
        assert result.prefetch_row_hit_fill
        assert cache.useful_prefetch_hits == 1

    def test_second_use_is_plain_hit(self):
        cache = make_cache()
        cache.fill(0x10, prefetched=True, core_id=0)
        cache.lookup(0x10)
        result = cache.lookup(0x10)
        assert result.hit
        assert not result.first_use_of_prefetch
        assert cache.useful_prefetch_hits == 1

    def test_demand_fill_never_reports_prefetch(self):
        cache = make_cache()
        cache.fill(0x10, prefetched=False, core_id=0)
        assert not cache.lookup(0x10).first_use_of_prefetch


class TestEviction:
    def test_lru_victim(self):
        cache = make_cache(sets=1, assoc=2)
        cache.fill(0, prefetched=False, core_id=0)
        cache.fill(1, prefetched=False, core_id=0)
        cache.lookup(0)  # 0 becomes MRU
        evicted = cache.fill(2, prefetched=False, core_id=0)
        assert evicted is not None
        assert evicted.line_addr == 1

    def test_eviction_reports_unused_prefetch(self):
        cache = make_cache(sets=1, assoc=1)
        cache.fill(0, prefetched=True, core_id=5)
        evicted = cache.fill(1, prefetched=False, core_id=0)
        assert evicted.prefetched_unused
        assert evicted.core_id == 5

    def test_used_prefetch_not_reported_unused(self):
        cache = make_cache(sets=1, assoc=1)
        cache.fill(0, prefetched=True, core_id=0)
        cache.lookup(0)
        evicted = cache.fill(1, prefetched=False, core_id=0)
        assert not evicted.prefetched_unused

    def test_redundant_fill_keeps_line(self):
        cache = make_cache(sets=1, assoc=1)
        cache.fill(0, prefetched=False, core_id=0)
        assert cache.fill(0, prefetched=True, core_id=0) is None
        assert cache.resident_lines == 1

    def test_invalidate(self):
        cache = make_cache()
        cache.fill(0x10, prefetched=False, core_id=0)
        assert cache.invalidate(0x10)
        assert not cache.contains(0x10)
        assert not cache.invalidate(0x10)


class TestSetMapping:
    def test_lines_map_to_distinct_sets(self):
        cache = make_cache(sets=4, assoc=1)
        for line in range(4):
            cache.fill(line, prefetched=False, core_id=0)
        assert cache.resident_lines == 4

    def test_same_set_conflict(self):
        cache = make_cache(sets=4, assoc=1)
        cache.fill(0, prefetched=False, core_id=0)
        evicted = cache.fill(4, prefetched=False, core_id=0)
        assert evicted is not None and evicted.line_addr == 0


class TestCacheProperties:
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = make_cache(sets=8, assoc=2)
        for line in lines:
            cache.fill(line, prefetched=False, core_id=0)
            assert cache.resident_lines <= 16

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_most_recent_fill_always_resident(self, lines):
        cache = make_cache(sets=8, assoc=2)
        for line in lines:
            cache.fill(line, prefetched=False, core_id=0)
            assert cache.contains(line)

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 127)),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_stats_consistency(self, operations):
        cache = make_cache(sets=8, assoc=2)
        for is_fill, line in operations:
            if is_fill:
                cache.fill(line, prefetched=False, core_id=0)
            else:
                cache.lookup(line)
        assert cache.demand_hits + cache.demand_misses == sum(
            1 for is_fill, _ in operations if not is_fill
        )
