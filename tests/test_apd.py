"""Tests for Adaptive Prefetch Dropping."""

from repro.controller.accuracy import PrefetchAccuracyTracker
from repro.controller.apd import AdaptivePrefetchDropper
from repro.controller.request import MemRequest


def request(is_prefetch=True, arrival=0, core=0):
    return MemRequest(
        line_addr=0x10,
        core_id=core,
        is_prefetch=is_prefetch,
        arrival=arrival,
        channel=0,
        bank=0,
        row=0,
    )


def make_dropper(accuracy=0.05, num_cores=1):
    tracker = PrefetchAccuracyTracker(num_cores=num_cores)
    for core in range(num_cores):
        for _ in range(100):
            tracker.record_sent(core)
        for _ in range(int(accuracy * 100)):
            tracker.record_used(core)
    tracker.end_interval()
    return AdaptivePrefetchDropper(tracker), tracker


class TestShouldDrop:
    def test_young_prefetch_kept(self):
        dropper, _ = make_dropper(accuracy=0.05)  # threshold = 100 cycles
        assert not dropper.should_drop(request(arrival=0), now=50)

    def test_old_prefetch_dropped(self):
        dropper, _ = make_dropper(accuracy=0.05)
        assert dropper.should_drop(request(arrival=0), now=500)

    def test_demand_never_dropped(self):
        dropper, _ = make_dropper(accuracy=0.05)
        assert not dropper.should_drop(
            request(is_prefetch=False, arrival=0), now=10**6
        )

    def test_promoted_prefetch_never_dropped(self):
        dropper, _ = make_dropper(accuracy=0.05)
        promoted = request(arrival=0)
        promoted.promote()
        assert not dropper.should_drop(promoted, now=10**6)

    def test_high_accuracy_uses_long_threshold(self):
        dropper, _ = make_dropper(accuracy=0.95)  # threshold = 100K cycles
        assert not dropper.should_drop(request(arrival=0), now=50_000)
        assert dropper.should_drop(request(arrival=0), now=200_001)

    def test_age_granularity_coarsens_comparison(self):
        """Ages compare at the hardware AGE-field granularity (100 cycles)."""
        dropper, _ = make_dropper(accuracy=0.05)  # threshold 100
        # age 199 is 1 tick, threshold 100 is 1 tick -> not strictly older.
        assert not dropper.should_drop(request(arrival=0), now=199)
        assert dropper.should_drop(request(arrival=0), now=200)

    def test_threshold_adapts_across_intervals(self):
        dropper, tracker = make_dropper(accuracy=0.05)
        assert dropper.should_drop(request(arrival=0), now=10_000)
        # A high-accuracy interval relaxes the threshold.
        for _ in range(100):
            tracker.record_sent(0)
            tracker.record_used(0)
        tracker.end_interval()
        assert not dropper.should_drop(request(arrival=0), now=10_000)


class TestDropAccounting:
    def test_record_drop_marks_request(self):
        dropper, _ = make_dropper()
        victim = request()
        dropper.record_drop(victim)
        assert victim.dropped
        assert dropper.dropped_per_core[0] == 1
        assert dropper.total_dropped == 1

    def test_per_core_counts(self):
        dropper, _ = make_dropper(num_cores=3)
        dropper.record_drop(request(core=2))
        dropper.record_drop(request(core=2))
        dropper.record_drop(request(core=0))
        assert dropper.dropped_per_core == [1, 0, 2]
        assert dropper.total_dropped == 3
