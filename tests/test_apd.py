"""Tests for Adaptive Prefetch Dropping."""

import pytest

from repro.controller.accuracy import PrefetchAccuracyTracker
from repro.controller.apd import AdaptivePrefetchDropper
from repro.controller.request import MemRequest


def request(is_prefetch=True, arrival=0, core=0):
    return MemRequest(
        line_addr=0x10,
        core_id=core,
        is_prefetch=is_prefetch,
        arrival=arrival,
        channel=0,
        bank=0,
        row=0,
    )


def make_dropper(accuracy=0.05, num_cores=1):
    tracker = PrefetchAccuracyTracker(num_cores=num_cores)
    for core in range(num_cores):
        for _ in range(100):
            tracker.record_sent(core)
        for _ in range(int(accuracy * 100)):
            tracker.record_used(core)
    tracker.end_interval()
    return AdaptivePrefetchDropper(tracker), tracker


class TestShouldDrop:
    def test_young_prefetch_kept(self):
        dropper, _ = make_dropper(accuracy=0.05)  # threshold = 100 cycles
        assert not dropper.should_drop(request(arrival=0), now=50)

    def test_old_prefetch_dropped(self):
        dropper, _ = make_dropper(accuracy=0.05)
        assert dropper.should_drop(request(arrival=0), now=500)

    def test_demand_never_dropped(self):
        dropper, _ = make_dropper(accuracy=0.05)
        assert not dropper.should_drop(
            request(is_prefetch=False, arrival=0), now=10**6
        )

    def test_promoted_prefetch_never_dropped(self):
        dropper, _ = make_dropper(accuracy=0.05)
        promoted = request(arrival=0)
        promoted.promote()
        assert not dropper.should_drop(promoted, now=10**6)

    def test_high_accuracy_uses_long_threshold(self):
        dropper, _ = make_dropper(accuracy=0.95)  # threshold = 100K cycles
        assert not dropper.should_drop(request(arrival=0), now=50_000)
        assert dropper.should_drop(request(arrival=0), now=200_001)

    def test_age_granularity_coarsens_comparison(self):
        """Ages compare at the hardware AGE-field granularity (100 cycles).

        The age quantizes *up* to the next tick, so the drop fires at the
        first tick strictly past the threshold — not a full granularity
        window later (the old off-by-one kept threshold-100 prefetches
        alive until age 200).
        """
        dropper, _ = make_dropper(accuracy=0.05)  # threshold 100
        assert not dropper.should_drop(request(arrival=0), now=100)
        assert dropper.should_drop(request(arrival=0), now=101)
        assert dropper.should_drop(request(arrival=0), now=200)

    @pytest.mark.parametrize(
        "accuracy,threshold",
        [
            (0.05, 100),  # accuracy < 0.10
            (0.20, 1_500),  # 0.10 <= accuracy < 0.30
            (0.50, 50_000),  # 0.30 <= accuracy < 0.70
            (0.90, 100_000),  # accuracy >= 0.70
        ],
    )
    def test_drop_boundary_at_every_tier(self, accuracy, threshold):
        """Table 6, all four tiers: kept *at* the threshold, dropped past it."""
        dropper, tracker = make_dropper(accuracy=accuracy)
        assert tracker.drop_threshold[0] == threshold
        assert not dropper.should_drop(request(arrival=0), now=threshold)
        assert dropper.should_drop(request(arrival=0), now=threshold + 1)

    def test_boundary_independent_of_arrival_offset(self):
        """Only the age matters, not where the request falls in a window."""
        dropper, _ = make_dropper(accuracy=0.05)  # threshold 100
        for arrival in (0, 1, 37, 99, 100, 101):
            assert not dropper.should_drop(
                request(arrival=arrival), now=arrival + 100
            )
            assert dropper.should_drop(
                request(arrival=arrival), now=arrival + 101
            )

    def test_threshold_adapts_across_intervals(self):
        dropper, tracker = make_dropper(accuracy=0.05)
        assert dropper.should_drop(request(arrival=0), now=10_000)
        # A high-accuracy interval relaxes the threshold.
        for _ in range(100):
            tracker.record_sent(0)
            tracker.record_used(0)
        tracker.end_interval()
        assert not dropper.should_drop(request(arrival=0), now=10_000)


class TestDropAccounting:
    def test_record_drop_marks_request(self):
        dropper, _ = make_dropper()
        victim = request()
        dropper.record_drop(victim)
        assert victim.dropped
        assert dropper.dropped_per_core[0] == 1
        assert dropper.total_dropped == 1

    def test_per_core_counts(self):
        dropper, _ = make_dropper(num_cores=3)
        dropper.record_drop(request(core=2))
        dropper.record_drop(request(core=2))
        dropper.record_drop(request(core=0))
        assert dropper.dropped_per_core == [1, 0, 2]
        assert dropper.total_dropped == 3
