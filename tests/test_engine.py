"""Tests for the DRAM controller engine (buffers, scheduling, dropping)."""

import pytest

from repro.controller.accuracy import PrefetchAccuracyTracker
from repro.controller.apd import AdaptivePrefetchDropper
from repro.controller.engine import DRAMControllerEngine
from repro.controller.policies import make_policy
from repro.params import DRAMConfig


def make_engine(policy="demand-first", buffer_size=8, dropper=None, on_drop=None,
                open_row=True, channels=1):
    config = DRAMConfig(
        request_buffer_size=buffer_size,
        open_row_policy=open_row,
        num_channels=channels,
    )
    return DRAMControllerEngine(
        config, make_policy(policy), dropper=dropper, on_drop=on_drop
    )


def add_request(engine, line, is_prefetch=False, now=0, core=0):
    request = engine.build_request(line, core, is_prefetch, now)
    if is_prefetch:
        accepted = engine.enqueue_prefetch(request)
        return request, accepted
    engine.enqueue_demand(request)
    return request, True


class TestAdmission:
    def test_demand_enqueued(self):
        engine = make_engine()
        request, _ = add_request(engine, 0x100)
        assert engine.occupancy(0) == 1
        assert engine.find_queued(0x100, 0) is request

    def test_prefetch_rejected_when_full(self):
        engine = make_engine(buffer_size=2)
        add_request(engine, 1)
        add_request(engine, 2)
        _, accepted = add_request(engine, 3, is_prefetch=True)
        assert not accepted
        assert engine.stats.prefetches_rejected_full == 1

    def test_demand_overflows_when_full(self):
        engine = make_engine(buffer_size=2)
        add_request(engine, 1)
        add_request(engine, 2)
        add_request(engine, 3)
        assert engine.occupancy(0) == 2
        assert engine.stats.demand_overflows == 1

    def test_overflow_drains_after_service(self):
        engine = make_engine(buffer_size=2)
        add_request(engine, 1)
        add_request(engine, 2)
        add_request(engine, 3)
        engine.tick(0, 0)
        # At least one slot freed; the overflow demand must be admitted.
        assert engine.find_queued(3, 0) is not None


class TestScheduling:
    def test_single_request_serviced(self):
        engine = make_engine()
        request, _ = add_request(engine, 0x100)
        serviced, _ = engine.tick(0, 0)
        assert serviced == [request]
        assert request.completion is not None
        assert request.row_hit_service is False  # row was closed

    def test_demand_first_ordering(self):
        engine = make_engine(policy="demand-first")
        prefetch, _ = add_request(engine, 1, is_prefetch=True, now=0)
        demand, _ = add_request(engine, 2, now=1)
        serviced, _ = engine.tick(0, 1)
        # Same bank: only one can be serviced; the demand wins despite age.
        assert serviced[0] is demand

    def test_equal_policy_prefers_older(self):
        engine = make_engine(policy="demand-prefetch-equal")
        prefetch, _ = add_request(engine, 1, is_prefetch=True, now=0)
        demand, _ = add_request(engine, 2, now=1)
        serviced, _ = engine.tick(0, 1)
        assert serviced[0] is prefetch

    def test_row_hit_preferred_within_policy(self):
        engine = make_engine(policy="demand-first")
        first, _ = add_request(engine, 0x100)
        engine.tick(0, 0)  # opens the row holding 0x100
        now = engine.channels[0].banks[first.bank].busy_until
        same_row, _ = add_request(engine, 0x101, now=now)
        lines_per_row = engine.config.lines_per_row
        other_row, _ = add_request(
            engine, 0x100 + lines_per_row * 8, now=now - 1
        )
        # Both demands, same bank? ensure same bank by construction:
        if other_row.bank == same_row.bank:
            serviced, _ = engine.tick(0, now)
            assert serviced[0] is same_row

    def test_banks_service_in_parallel(self):
        engine = make_engine()
        lines_per_row = engine.config.lines_per_row
        first, _ = add_request(engine, 0)
        second, _ = add_request(engine, lines_per_row)  # next bank
        serviced, _ = engine.tick(0, 0)
        assert len(serviced) == 2

    def test_next_wake_reported(self):
        engine = make_engine()
        add_request(engine, 1)
        add_request(engine, 2)  # same bank; second waits
        serviced, next_wake = engine.tick(0, 0)
        assert len(serviced) == 1
        assert next_wake == engine.channels[0].banks[serviced[0].bank].busy_until

    def test_idle_channel_has_no_wake(self):
        engine = make_engine()
        serviced, next_wake = engine.tick(0, 0)
        assert serviced == []
        assert next_wake is None

    def test_multi_channel_routing(self):
        engine = make_engine(channels=2)
        lines_per_row = engine.config.lines_per_row
        first = engine.build_request(0, 0, False, 0)
        second = engine.build_request(lines_per_row, 0, False, 0)
        assert first.channel != second.channel


class TestClosedRowPolicy:
    def test_row_closed_after_last_hit(self):
        engine = make_engine(open_row=False)
        request, _ = add_request(engine, 0x100)
        engine.tick(0, 0)
        assert engine.channels[0].banks[request.bank].open_row is None

    def test_row_kept_open_for_queued_hit(self):
        engine = make_engine(open_row=False)
        first, _ = add_request(engine, 0x100)
        second, _ = add_request(engine, 0x101)
        engine.tick(0, 0)
        bank = engine.channels[0].banks[first.bank]
        assert bank.open_row == first.row


class TestDropping:
    def make_padc_engine(self, accuracy=0.05):
        tracker = PrefetchAccuracyTracker(num_cores=1)
        for _ in range(100):
            tracker.record_sent(0)
        for _ in range(int(accuracy * 100)):
            tracker.record_used(0)
        tracker.end_interval()
        dropped = []
        dropper = AdaptivePrefetchDropper(tracker)
        engine = make_engine(
            policy="demand-first", dropper=dropper, on_drop=dropped.append
        )
        return engine, dropped

    def test_old_prefetch_dropped_at_tick(self):
        engine, dropped = self.make_padc_engine(accuracy=0.05)
        request, _ = add_request(engine, 1, is_prefetch=True, now=0)
        serviced, _ = engine.tick(0, 10_000)
        assert serviced == []
        assert dropped == [request]
        assert engine.stats.dropped_prefetches == 1
        assert engine.occupancy(0) == 0

    def test_young_prefetch_survives(self):
        engine, dropped = self.make_padc_engine(accuracy=0.95)
        request, _ = add_request(engine, 1, is_prefetch=True, now=0)
        serviced, _ = engine.tick(0, 500)
        assert serviced == [request]
        assert dropped == []

    def test_demand_not_dropped(self):
        engine, dropped = self.make_padc_engine(accuracy=0.05)
        add_request(engine, 1, is_prefetch=False, now=0)
        serviced, _ = engine.tick(0, 10_000)
        assert len(serviced) == 1
        assert dropped == []


class TestWritebackIndexIsolation:
    """Writebacks must never shadow reads/prefetches in the line index.

    Regression: ``_admit`` used to index every request, so a writeback to
    line X evicted the index entry of a queued read/prefetch to X, and
    servicing the writeback then deleted the *read's* entry — after which
    ``find_queued`` denied the read existed and demand promotion broke.
    """

    def enqueue_writeback(self, engine, line, now=0):
        request = engine.build_request(line, 0, False, now, is_write=True)
        engine.enqueue_demand(request)
        return request

    def test_writeback_alone_not_indexed(self):
        engine = make_engine()
        self.enqueue_writeback(engine, 0x100)
        assert engine.occupancy(0) == 1
        assert engine.find_queued(0x100, 0) is None
        assert engine.indexed_requests(0) == {}

    def test_writeback_does_not_shadow_queued_read(self):
        engine = make_engine()
        read, _ = add_request(engine, 0x100, now=0)
        self.enqueue_writeback(engine, 0x100, now=1)
        assert engine.find_queued(0x100, 0) is read

    def test_late_read_still_indexed_behind_writeback(self):
        engine = make_engine()
        self.enqueue_writeback(engine, 0x100, now=0)
        read, _ = add_request(engine, 0x100, now=1)
        assert engine.find_queued(0x100, 0) is read

    def test_servicing_writeback_keeps_read_indexed(self):
        engine = make_engine(policy="demand-first")
        writeback = self.enqueue_writeback(engine, 0x100, now=0)
        read, _ = add_request(engine, 0x100, now=1)
        serviced, _ = engine.tick(0, 1)
        assert serviced == [writeback]  # FCFS: the older writeback goes first
        assert engine.find_queued(0x100, 0) is read
        now = engine.channels[0].banks[read.bank].busy_until
        serviced, _ = engine.tick(0, now)
        assert serviced == [read]
        assert engine.indexed_requests(0) == {}
        assert engine.occupancy(0) == 0

    def test_servicing_writeback_keeps_prefetch_promotable(self):
        engine = make_engine(policy="demand-first")
        writeback = self.enqueue_writeback(engine, 0x100, now=0)
        prefetch, accepted = add_request(engine, 0x100, is_prefetch=True, now=1)
        assert accepted
        serviced, _ = engine.tick(0, 1)
        assert serviced == [writeback]  # demand-first: writeback beats prefetch
        queued = engine.find_queued(0x100, 0)
        assert queued is prefetch
        queued.promote()  # the promotion path the stale index used to break
        assert prefetch.promoted


class TestPromotionInQueue:
    def test_promoted_request_schedules_as_demand(self):
        engine = make_engine(policy="demand-first")
        prefetch, _ = add_request(engine, 1, is_prefetch=True, now=0)
        demand, _ = add_request(engine, 2, now=1)
        queued = engine.find_queued(1, 0)
        queued.promote()
        serviced, _ = engine.tick(0, 1)
        assert serviced[0] is prefetch  # now a demand; FCFS beats demand 2
