"""Serial/parallel/cached equivalence for the experiment runtime.

The tentpole guarantee: a simulation job returns bit-identical results
whether it runs serially in-process, fans out over worker processes, or
is served back from the on-disk cache.  Every test here compares full
``SimResult.to_dict()`` trees (every counter of every core), not just
headline metrics.
"""

import pytest

from repro import runtime, sim
from repro.experiments import Scale, run_experiment
from repro.experiments.runner import (
    _ALONE_CACHE,
    alone_ipcs,
    run_policies,
    speedup_metrics,
)
from repro.params import baseline_config
from repro.runtime import JobExecutionError, Runtime, SimJob, execute_job, job_summary

MIX = ["swim", "milc"]
POLICIES = ("demand-first", "padc")
ACCESSES = 400
SEED = 3


def _run_and_measure():
    """One run_policies sweep plus its WS/HS/UF, from a clean alone-memo."""
    _ALONE_CACHE.clear()
    runs = run_policies(MIX, ACCESSES, policies=POLICIES, seed=SEED)
    metrics = {
        policy: speedup_metrics(runs[policy], MIX, ACCESSES, seed=SEED)
        for policy in POLICIES
    }
    return {policy: runs[policy].to_dict() for policy in POLICIES}, metrics


@pytest.fixture()
def serial_reference():
    """The ground truth: serial, cache disabled."""
    runtime.configure(jobs=1, cache_enabled=False)
    results, metrics = _run_and_measure()
    runtime.reset()
    return results, metrics


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize("warm", [False, True], ids=["cold", "warm"])
    def test_run_policies_identical(self, jobs, warm, tmp_path, serial_reference):
        reference_results, reference_metrics = serial_reference
        runtime.configure(jobs=jobs, cache_dir=str(tmp_path / "cache"))
        if warm:
            _run_and_measure()  # prime the cache, then measure against it
        results, metrics = _run_and_measure()
        assert results == reference_results
        assert metrics == reference_metrics

    def test_alone_ipcs_match_serial(self, tmp_path, serial_reference):
        runtime.configure(jobs=1, cache_enabled=False)
        _ALONE_CACHE.clear()
        reference = alone_ipcs(MIX, ACCESSES, seed=SEED)
        runtime.configure(jobs=2, cache_dir=str(tmp_path / "cache"))
        _ALONE_CACHE.clear()
        assert alone_ipcs(MIX, ACCESSES, seed=SEED) == reference


class TestWarmCacheSkipsSimulation:
    def _counting(self, monkeypatch):
        calls = []
        real = sim.simulate

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(sim, "simulate", counting)
        return calls

    def test_run_policies_warm_rerun_is_simulation_free(self, tmp_path, monkeypatch):
        runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache"))
        calls = self._counting(monkeypatch)
        _run_and_measure()
        cold = len(calls)
        assert cold == len(POLICIES) + len(MIX)  # sweep + alone runs
        _run_and_measure()
        assert len(calls) == cold

    def test_experiment_warm_rerun_is_simulation_free(self, tmp_path, monkeypatch):
        scale = Scale(
            accesses=300,
            mixes_2core=1,
            mixes_4core=1,
            mixes_8core=1,
            single_core_benches=2,
        )
        runtime.configure(jobs=2, cache_dir=str(tmp_path / "cache"))
        _ALONE_CACHE.clear()
        cold = run_experiment("fig09", scale)
        calls = self._counting(monkeypatch)
        _ALONE_CACHE.clear()
        warm = run_experiment("fig09", scale)
        assert calls == []
        assert warm.rows == cold.rows

    def test_identical_jobs_in_one_batch_computed_once(self, tmp_path, monkeypatch):
        calls = self._counting(monkeypatch)
        executor = Runtime(jobs=1, cache_dir=str(tmp_path / "cache"))
        job = SimJob.make(baseline_config(1), ["swim"], 300, seed=1)
        first, second = executor.run_many([job, job])
        assert len(calls) == 1
        assert first.to_dict() == second.to_dict()


class TestWorkerFailureReporting:
    """A dying job must say *which* job died, not just that one did."""

    def _failing_job(self):
        # An unknown benchmark name slips past SimJob (which stores names
        # verbatim) and explodes inside simulate() — the same shape as a
        # genuine worker-side crash.
        return SimJob.make(baseline_config(1), ["no-such-bench"], 300, seed=2)

    def test_execute_job_wraps_failures_with_identity(self):
        job = self._failing_job()
        with pytest.raises(JobExecutionError) as excinfo:
            execute_job(job)
        error = excinfo.value
        assert error.key == job.key()
        assert "no-such-bench" in error.summary
        assert "policy=demand-first" in error.summary
        assert "KeyError" in error.traceback_text
        assert error.key[:16] in str(error)

    def test_injected_fault_carries_identity(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("injected fault")

        monkeypatch.setattr(sim, "simulate", boom)
        job = SimJob.make(baseline_config(2, policy="padc"), MIX, 300, seed=1)
        with pytest.raises(JobExecutionError) as excinfo:
            execute_job(job)
        error = excinfo.value
        assert "injected fault" in error.traceback_text
        assert "swim,milc" in error.summary
        assert "seed=1" in error.summary

    def test_run_many_reports_which_batch_member_died(self, tmp_path):
        executor = Runtime(jobs=1, cache_dir=str(tmp_path / "cache"))
        good = SimJob.make(baseline_config(1), ["swim"], 300, seed=0)
        bad = self._failing_job()
        with pytest.raises(JobExecutionError) as excinfo:
            executor.run_many([good, bad])
        error = excinfo.value
        assert error.key == bad.key()
        # The batch note is folded into the message (not add_note, which
        # is 3.11+ and the package declares 3.9), so it reaches both the
        # console and any ledger recording str(error).
        assert "batch of 2 jobs" in str(error)
        assert "abandoned" in str(error)

    def test_failure_crosses_process_pool_intact(self, tmp_path):
        executor = Runtime(jobs=2, cache_dir=str(tmp_path / "cache"))
        jobs = [
            SimJob.make(baseline_config(1), ["swim"], 300, seed=0),
            self._failing_job(),
        ]
        with pytest.raises(JobExecutionError) as excinfo:
            executor.run_many(jobs)
        # The error was pickled back from a worker with its fields intact.
        error = excinfo.value
        assert error.key == jobs[1].key()
        assert "no-such-bench" in error.summary
        assert "KeyError" in error.traceback_text

    def test_error_survives_pickling(self):
        import pickle

        original = JobExecutionError("k" * 64, "policy=padc cores=1", "Traceback ...")
        clone = pickle.loads(pickle.dumps(original))
        assert clone.key == original.key
        assert clone.summary == original.summary
        assert clone.traceback_text == original.traceback_text
        assert str(clone) == str(original)

    def test_job_summary_is_one_line(self):
        job = SimJob.make(baseline_config(2, policy="padc"), MIX, 500, seed=7)
        summary = job_summary(job)
        assert "\n" not in summary
        assert summary == (
            "policy=padc cores=2 benchmarks=swim,milc accesses=500 seed=7"
        )


class TestRuntimeKnobs:
    def test_jobs_defaults_serial(self):
        assert Runtime().jobs == 1

    def test_jobs_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert Runtime().jobs == 4
        assert runtime.get_runtime().jobs == 4

    def test_jobs_zero_means_all_cores(self):
        import os

        assert Runtime(jobs=0).jobs == (os.cpu_count() or 1)

    def test_unparseable_jobs_env_fails_loudly(self, monkeypatch):
        # A typo'd REPRO_JOBS=1O must not silently serialize a whole
        # campaign (parity with Scale.from_env's loud failure).
        monkeypatch.setenv("REPRO_JOBS", "1O")
        with pytest.raises(ValueError) as excinfo:
            Runtime()
        assert "1O" in str(excinfo.value)
        assert "REPRO_JOBS" in str(excinfo.value)

    def test_explicit_jobs_ignores_bad_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert Runtime(jobs=2).jobs == 2

    def test_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert Runtime(jobs=2).jobs == 2

    def test_configure_installs_and_reset_clears(self, tmp_path):
        installed = runtime.configure(jobs=3, cache_dir=str(tmp_path))
        assert runtime.get_runtime() is installed
        runtime.reset()
        assert runtime.get_runtime() is not installed

    def test_env_change_rebuilds_runtime(self, monkeypatch):
        first = runtime.get_runtime()
        monkeypatch.setenv("REPRO_JOBS", "2")
        rebuilt = runtime.get_runtime()
        assert rebuilt is not first
        assert rebuilt.jobs == 2

    def test_sim_kwargs_round_trip_through_parallel(self, tmp_path):
        runtime.configure(jobs=1, cache_enabled=False)
        config = baseline_config(1, policy="demand-first")
        reference = sim.simulate(
            config,
            ["milc"],
            max_accesses_per_core=400,
            seed=0,
            collect_service_times=True,
        )
        runtime.configure(jobs=2, cache_dir=str(tmp_path / "cache"))
        jobs = [
            SimJob.make(config, ["milc"], 400, seed=0, collect_service_times=True),
            SimJob.make(config, ["swim"], 400, seed=0, collect_service_times=True),
        ]
        milc, _ = runtime.get_runtime().run_many(jobs)
        assert milc.to_dict() == reference.to_dict()
        # A second, cache-served pass is still identical.
        milc_cached, _ = runtime.get_runtime().run_many(jobs)
        assert milc_cached.to_dict() == reference.to_dict()
