"""Golden equivalence: every backend == the naive reference, byte for byte.

The optimized hot path (cached packed keys, epoch invalidation, bucket
heaps, swap-pop — DESIGN.md §10) and the skip-ahead event backend
(DESIGN.md §11) must be observationally identical to the reference path
that re-derives every priority each round.  These tests pin
``SimResult.to_dict()`` equality across the backend × policy ×
workload-mix × seed matrix — the backend axis is drawn from
``repro.params.BACKENDS``, so a future backend auto-enrolls the moment
it is registered — plus refresh-enabled and multi-channel/ranked config
variants, and unit tests for the two cache-invalidation events (interval
boundary, promotion).
"""

import dataclasses

import pytest

from repro.bench import VERIFY_MIXES
from repro.controller.engine import DRAMControllerEngine
from repro.controller.policies import make_policy
from repro.params import BACKENDS, DRAMConfig, baseline_config
from repro.sim.system import System

POLICIES = [
    "fcfs",
    "frfcfs",
    "demand-first",
    "demand-first-apd",
    "padc",
    "padc-rank",
]
SEEDS = [7, 11]
ACCESSES = 600

# Backends compared against the reference; auto-grows with the registry.
NON_REFERENCE = [backend for backend in BACKENDS if backend != "reference"]


def _run(config, mix, seed, backend):
    return System(config, list(mix), seed=seed, backend=backend).run(
        ACCESSES
    ).to_dict()


def _assert_all_backends_match(config, mix, seed):
    golden = _run(config, mix, seed, "reference")
    for backend in NON_REFERENCE:
        assert _run(config, mix, seed, backend) == golden, backend


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("mix_index", range(len(VERIFY_MIXES)))
@pytest.mark.parametrize("seed", SEEDS)
def test_backends_match_reference(policy, mix_index, seed):
    mix = VERIFY_MIXES[mix_index]
    config = baseline_config(num_cores=len(mix), policy=policy)
    _assert_all_backends_match(config, mix, seed)


@pytest.mark.parametrize("policy", ["demand-first", "padc", "padc-rank"])
def test_backends_match_reference_with_refresh(policy):
    # All-bank refresh inserts periodic bank-blocking windows; the event
    # backend must treat each refresh boundary as a wake source rather
    # than discovering it a tick late.  A short interval makes several
    # refresh windows land inside the run.
    mix = VERIFY_MIXES[0]
    config = baseline_config(num_cores=len(mix), policy=policy)
    config = dataclasses.replace(
        config,
        dram=dataclasses.replace(
            config.dram, refresh_enabled=True, refresh_interval=5_000
        ),
    )
    _assert_all_backends_match(config, mix, seed=7)


@pytest.mark.parametrize("policy", ["frfcfs", "padc-rank", "aps-rank"])
def test_backends_match_reference_multichannel_ranked(policy):
    # Two channels exercise per-channel tick interleaving (the event
    # backend keeps one fused ticker and stale-tick map per channel);
    # the -rank policies layer the dense-rank census on top.
    mix = VERIFY_MIXES[1]
    config = baseline_config(
        num_cores=len(mix), policy=policy, num_channels=2, permutation=True
    )
    _assert_all_backends_match(config, mix, seed=11)


# -- epoch invalidation ----------------------------------------------------


def _engine(policy="demand-first"):
    config = DRAMConfig(request_buffer_size=16, num_channels=1)
    return DRAMControllerEngine(config, make_policy(policy))


def _add(engine, line, is_prefetch=False, now=0):
    request = engine.build_request(line, 0, is_prefetch, now)
    engine.enqueue_demand(request)
    return request


def _same_bank_line(engine, line):
    """The next line address mapping to the same (channel, bank)."""
    target = engine.mapping.decode_coords(line)[:2]
    candidate = line + 1
    while engine.mapping.decode_coords(candidate)[:2] != target:
        candidate += 1
    return candidate


class TestEpochInvalidation:
    def test_interval_boundary_rekeys_queued_requests(self):
        # APS keys embed per-core interval state (criticality/urgency),
        # so an interval boundary must invalidate every cached key.
        from repro.controller.accuracy import PrefetchAccuracyTracker

        tracker = PrefetchAccuracyTracker(num_cores=1)
        config = DRAMConfig(request_buffer_size=16, num_channels=1)
        engine = DRAMControllerEngine(config, make_policy("aps", tracker=tracker))
        first = _add(engine, 0x100, now=0)
        queued = _add(engine, _same_bank_line(engine, 0x100), now=1)
        serviced, _ = engine.tick(0, 0)
        assert first in serviced
        epoch_before = engine.policy.epoch
        assert queued.prio_stamp == epoch_before

        engine.note_interval()
        assert engine.policy.epoch != epoch_before
        # The cached key is now stale; the next scheduling round must
        # re-derive it under the new epoch before selecting.
        free_at = engine.channels[0].banks[queued.bank].busy_until
        serviced, _ = engine.tick(0, free_at)
        assert queued in serviced
        assert queued.prio_stamp == engine.policy.epoch

    def test_promotion_rekeys_and_reprioritizes(self):
        engine = _engine("demand-first")
        # Same bank: an old prefetch and a younger demand.
        prefetch = engine.build_request(0x200, 0, True, 0)
        engine.enqueue_prefetch(prefetch)
        demand = _add(engine, _same_bank_line(engine, 0x200), now=1)
        assert demand.bank == prefetch.bank
        serviced, _ = engine.tick(0, 1)
        # Demand-first: the younger demand outranks the older prefetch.
        assert serviced == [demand]
        epoch = engine.policy.epoch
        assert prefetch.prio_stamp == epoch
        key_as_prefetch = prefetch.prio_base

        # A matching demand arrives: promote the in-flight prefetch.
        promoted = engine.find_queued(0x200, 0)
        assert promoted is prefetch
        promoted.promote()
        assert promoted.prio_stamp == -1  # cache invalidated
        engine.note_promotion(promoted)
        # Re-keyed immediately (the engine's heaps stay coherent) with a
        # strictly higher key: the P bit cleared under demand-first.
        assert promoted.prio_stamp == epoch
        assert promoted.prio_base > key_as_prefetch

        free_at = engine.channels[0].banks[promoted.bank].busy_until
        serviced, _ = engine.tick(0, free_at)
        assert promoted in serviced

    def test_hit_delta_matches_priority_key(self):
        # The cached hit key must equal priority_key(request, True) for
        # every policy: prio_hit is derived as prio_base + hit_delta.
        from repro.controller.accuracy import PrefetchAccuracyTracker

        engine = _engine()
        tracker = PrefetchAccuracyTracker(num_cores=1)
        for name in POLICIES:
            if name == "fcfs":
                continue  # row-hit-blind by design (hit_delta == 0)
            policy = make_policy(name, tracker=tracker)
            for is_prefetch in (False, True):
                request = engine.build_request(0x340, 0, is_prefetch, 3)
                assert policy.priority_key(request, True) == (
                    policy.priority_key(request, False) + policy.hit_delta
                ), name

    def test_fcfs_ignores_row_hit(self):
        engine = _engine("fcfs")
        request = _add(engine, 0x340, now=3)
        policy = engine.policy
        assert policy.hit_delta == 0
        assert policy.priority_key(request, True) == policy.priority_key(
            request, False
        )
