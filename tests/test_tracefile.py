"""Tests for trace file save/load round-tripping."""

import itertools

import pytest

from repro.core.trace import TraceEntry
from repro.core.tracefile import load_trace, save_trace
from repro.params import baseline_config
from repro.sim import simulate
from repro.workloads import make_trace


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "trace.gz"
        entries = [
            TraceEntry(5, 100, 1),
            TraceEntry(0, 200, 2, True),
            TraceEntry(90, 300, 3),
        ]
        assert save_trace(entries, path) == 3
        assert list(load_trace(path)) == entries

    def test_limit(self, tmp_path):
        path = tmp_path / "trace.gz"
        count = save_trace(make_trace("swim", seed=1), path, limit=250)
        assert count == 250
        assert len(list(load_trace(path))) == 250

    def test_synthetic_round_trip_preserves_entries(self, tmp_path):
        path = tmp_path / "trace.gz"
        original = list(itertools.islice(make_trace("milc", seed=2), 400))
        save_trace(original, path)
        assert list(load_trace(path)) == original

    def test_malformed_line_rejected(self, tmp_path):
        import gzip

        path = tmp_path / "bad.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("# repro-trace v1\n1 2\n")
        with pytest.raises(ValueError):
            list(load_trace(path))

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        import gzip

        path = tmp_path / "trace.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("# header\n\n5 100 1\n# comment\n6 200 2 W\n")
        entries = list(load_trace(path))
        assert entries == [TraceEntry(5, 100, 1), TraceEntry(6, 200, 2, True)]


class TestSimulateFromFile:
    def test_loaded_trace_drives_a_simulation(self, tmp_path):
        """A saved trace replayed through System gives identical results."""
        from repro.sim.system import System

        path = tmp_path / "trace.gz"
        save_trace(make_trace("swim", seed=3), path, limit=1_500)

        config = baseline_config(1, policy="padc")
        direct = simulate(config, ["swim"], max_accesses_per_core=1_500, seed=3)

        system = System(config, ["swim"], seed=3)
        system.cores[0].trace = load_trace(path)  # replace the generator
        # Clear the address offset difference by regenerating through the
        # same offsetting path: compare IPC shape only.
        replayed = system.run(1_500)
        assert replayed.cores[0].loads == direct.cores[0].loads
