"""Tests for the phase-attributed profiling layer (repro.bench.phases)."""

import json

import pytest

from repro.bench import SCHEMA_VERSION, load_report, write_report
from repro.bench.phases import (
    FRONT_END_BUCKETS,
    PHASE_BUCKETS,
    baseline_walls,
    best_wall_speedup,
    check_wall_regression,
    classify,
    compare_walls,
    phase_table,
    run_phases,
)


class TestBucketContract:
    def test_bucket_names_are_stable(self):
        # The exact tuple is a schema contract: the report, the CLI table
        # and the CI assertion all key on these names in this order.
        assert PHASE_BUCKETS == (
            "workload",
            "core_cache",
            "prefetcher",
            "controller",
            "telemetry",
            "other",
        )

    def test_front_end_buckets_are_a_subset(self):
        assert set(FRONT_END_BUCKETS) < set(PHASE_BUCKETS)
        assert "controller" not in FRONT_END_BUCKETS

    @pytest.mark.parametrize(
        "filename,funcname,bucket",
        [
            ("/x/src/repro/workloads/synthetic.py", "generate", "workload"),
            ("/x/src/repro/trace/format.py", "entry_batches", "workload"),
            ("/x/src/repro/sim/system.py", "_handle_core", "core_cache"),
            ("/x/src/repro/sim/skipahead.py", "run_event", "core_cache"),
            ("/x/src/repro/cache/cache.py", "lookup", "core_cache"),
            ("/x/src/repro/core/core.py", "rob_blocked", "core_cache"),
            ("/x/src/repro/prefetch/stream.py", "access", "prefetcher"),
            ("/x/src/repro/controller/engine.py", "tick", "controller"),
            ("/x/src/repro/dram/bank.py", "service", "controller"),
            ("/x/src/repro/telemetry/collector.py", "sample", "telemetry"),
            ("/x/src/repro/metrics/speedup.py", "ipc", "telemetry"),
            ("~", "<built-in method builtins.len>", "other"),
            ("/usr/lib/python3.11/heapq.py", "heappush", "other"),
            (
                "~",
                "<method 'geometric' of 'numpy.random._generator.Generator'"
                " objects>",
                "workload",
            ),
        ],
    )
    def test_classify(self, filename, funcname, bucket):
        assert classify(filename, funcname) == bucket


class TestRunPhases:
    @pytest.fixture(scope="class")
    def entry(self):
        return run_phases("padc", "tiny", "event")

    def test_every_bucket_reported(self, entry):
        assert tuple(entry["buckets"]) == PHASE_BUCKETS
        assert tuple(entry["shares"]) == PHASE_BUCKETS

    def test_buckets_partition_the_profiled_time(self, entry):
        # Self-time attribution is a partition: buckets sum to the
        # profiled total exactly (rounding noise only).
        assert sum(entry["buckets"].values()) == pytest.approx(
            entry["profiled_s"], rel=1e-3
        )
        assert sum(entry["shares"].values()) == pytest.approx(1.0, abs=0.01)

    def test_phases_sum_to_wall_time(self, entry):
        # The whole run is profiled, so the attributed time accounts for
        # (almost) the entire measured wall — anything beyond rounding
        # would mean unattributed simulator work.
        assert entry["profiled_s"] <= entry["wall_s"]
        assert entry["profiled_s"] >= 0.9 * entry["wall_s"]

    def test_simulation_is_the_macrobench_run(self, entry):
        assert entry["policy"] == "padc"
        assert entry["backend"] == "event"
        assert entry["cycles"] > 0
        assert entry["accesses_per_core"] > 0

    def test_front_end_share_matches_its_buckets(self, entry):
        front = sum(entry["buckets"][name] for name in FRONT_END_BUCKETS)
        assert entry["front_end_share"] == pytest.approx(
            front / entry["profiled_s"], abs=0.001
        )

    def test_phase_table_renders_every_bucket(self, entry):
        (line,) = phase_table([entry])
        for name in PHASE_BUCKETS:
            assert name in line
        assert "front-end" in line
        assert "padc" in line


class TestReportRoundTrip:
    def test_phases_section_round_trips(self, tmp_path):
        entry = run_phases("fcfs", "tiny", "event")
        report = {
            "schema_version": SCHEMA_VERSION,
            "bench": "BENCH_10",
            "scale": "tiny",
            "phases": {"backend": "event", "policies": {"fcfs": entry}},
        }
        path = str(tmp_path / "BENCH_10.json")
        write_report(path, report)
        loaded = load_report(path)
        assert loaded == json.loads(json.dumps(report))
        assert loaded["schema_version"] == SCHEMA_VERSION
        # write_report sorts keys, so compare membership, not order.
        assert set(loaded["phases"]["policies"]["fcfs"]["buckets"]) == set(
            PHASE_BUCKETS
        )


def _wall_report(scale="medium", wall=2.0, policy="padc", backend="event"):
    return {
        "scale": scale,
        "macro": {"policies": {policy: {backend: {"wall_s": wall}}}},
    }


class TestWallComparison:
    def test_baseline_walls_scale_matched_only(self):
        baseline = _wall_report(scale="medium", wall=3.0)
        assert baseline_walls(baseline, "medium") == {"padc": {"event": 3.0}}
        assert baseline_walls(baseline, "tiny") == {}

    def test_schema_version_is_ignored(self):
        # BENCH_6.json is schema 2; the wall comparison must still read it.
        baseline = _wall_report(wall=3.0)
        baseline["schema_version"] = 2
        current = _wall_report(wall=2.0)
        current["schema_version"] = SCHEMA_VERSION
        comparison = compare_walls(current, baseline)
        assert comparison["padc"]["event"]["speedup"] == 1.5

    def test_speedup_direction(self):
        comparison = compare_walls(_wall_report(wall=2.0), _wall_report(wall=3.0))
        cell = comparison["padc"]["event"]
        assert cell["baseline_wall_s"] == 3.0
        assert cell["wall_s"] == 2.0
        assert cell["speedup"] == 1.5
        assert best_wall_speedup(comparison)["policy"] == "padc"

    def test_regression_fires_on_injected_slowdown(self):
        # 2.0s -> 4.0s is a 2x slowdown: past the default 50% threshold.
        failures = check_wall_regression(
            _wall_report(wall=4.0), _wall_report(wall=2.0)
        )
        assert len(failures) == 1
        assert "padc/event" in failures[0]

    def test_regression_threshold_boundary(self):
        # The default threshold tolerates up to a 1.5x slowdown: absolute
        # walls are compared against an earlier session's recording, and
        # 10-20% machine drift between recordings is routine.
        assert check_wall_regression(
            _wall_report(wall=3.0), _wall_report(wall=2.0)
        ) == []
        assert check_wall_regression(
            _wall_report(wall=3.01), _wall_report(wall=2.0)
        )

    def test_threshold_is_overridable(self):
        failures = check_wall_regression(
            _wall_report(wall=2.3), _wall_report(wall=2.0), threshold=0.1
        )
        assert len(failures) == 1

    def test_no_comparable_baseline_is_a_pass(self):
        assert check_wall_regression(
            _wall_report(scale="tiny", wall=9.0),
            _wall_report(scale="medium", wall=1.0),
        ) == []

    def test_unmatched_policy_ignored(self):
        assert compare_walls(
            _wall_report(policy="fcfs"), _wall_report(policy="padc")
        ) == {}
