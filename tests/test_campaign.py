"""Campaign subsystem tests: validated specs, deterministic expansion,
the append-only ledger, crash/resume fault tolerance, and the CLI.

The crash/resume cases monkeypatch ``repro.sim.simulate`` (PR-1 style)
so a chosen job fails deterministically, then assert the campaign
contract: siblings finish, the ledger pins the failure to the job, and
``resume`` re-runs only the casualties — with the final export
bit-for-bit equal to an uninterrupted run.
"""

import json

import pytest

from repro import runtime, sim
from repro.campaign import (
    Campaign,
    CampaignError,
    CampaignRunner,
    CampaignSpec,
    PolicyVariant,
    SpecError,
    Workload,
    expand,
    submit,
    unique_jobs,
)
from repro.campaign.__main__ import main as campaign_main
from repro.campaign.ledger import Ledger
from repro.campaign.report import export, status_summary

POLICIES = ("demand-first", "padc")


def small_spec(name="tiny", include_alone=False, accesses=300, **kwargs):
    return CampaignSpec.build(
        name,
        [["swim", "art"], ["libquantum", "milc"]],
        POLICIES,
        accesses,
        include_alone=include_alone,
        **kwargs,
    )


def counting_sim(monkeypatch, fail_if=None):
    """Replace simulate() with a counting (and optionally faulting) wrapper.

    ``fail_if(benchmarks)`` returning True makes that call raise.
    Returns the list of benchmark-name tuples simulated so far.
    Chains to the pristine simulate even when called twice in one test
    (the second wrapper must not inherit the first one's faults).
    """
    real = getattr(sim.simulate, "__wrapped__", sim.simulate)
    calls = []

    def wrapper(config, benchmarks, **kwargs):
        names = tuple(getattr(b, "name", str(b)) for b in benchmarks)
        calls.append(names)
        if fail_if is not None and fail_if(names):
            raise RuntimeError(f"injected fault for {names}")
        return real(config, benchmarks, **kwargs)

    wrapper.__wrapped__ = real
    monkeypatch.setattr(sim, "simulate", wrapper)
    return calls


class TestSpecValidation:
    def test_unknown_policy_lists_known(self):
        with pytest.raises(SpecError) as excinfo:
            CampaignSpec.build("x", [["swim"]], ["fifo"], 100)
        assert "fifo" in str(excinfo.value)
        assert "demand-first" in str(excinfo.value)

    def test_unknown_benchmark_suggests(self):
        with pytest.raises(SpecError) as excinfo:
            CampaignSpec.build("x", [["swmi"]], POLICIES, 100)
        message = str(excinfo.value)
        assert "swmi" in message
        assert "swim" in message  # did-you-mean suggestion

    def test_unknown_override_key_suggests(self):
        with pytest.raises(SpecError) as excinfo:
            CampaignSpec.build(
                "x", [["swim"]], POLICIES, 100, variants={"v": {"chanels": 2}}
            )
        message = str(excinfo.value)
        assert "chanels" in message
        assert "num_channels" in message

    def test_non_json_override_value_rejected(self):
        with pytest.raises(SpecError):
            CampaignSpec.build(
                "x", [["swim"]], POLICIES, 100, variants={"v": {"num_channels": object()}}
            )

    def test_empty_workloads_rejected(self):
        with pytest.raises(SpecError):
            CampaignSpec.build("x", [], POLICIES, 100)

    def test_bad_accesses_rejected(self):
        with pytest.raises(SpecError):
            CampaignSpec.build("x", [["swim"]], POLICIES, 0)

    def test_duplicate_policy_labels_rejected(self):
        with pytest.raises(SpecError):
            CampaignSpec.build("x", [["swim"]], ["padc", "padc"], 100)

    def test_bad_campaign_name_rejected(self):
        with pytest.raises(SpecError):
            CampaignSpec.build("a/b", [["swim"]], POLICIES, 100)

    def test_round_trip_preserves_identity(self):
        spec = small_spec(
            include_alone=True,
            variants={"base": {}, "dual": {"num_channels": 2}},
            seeds=(0, 7),
        )
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_from_dict_accepts_shorthand(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "hand",
                "accesses": 200,
                "workloads": [["swim", "milc"]],
                "policies": [
                    "demand-first",
                    {"label": "padc-rank", "policy": "padc",
                     "overrides": {"use_ranking": True}},
                ],
            }
        )
        assert spec.policies[1] == PolicyVariant.make(
            "padc-rank", "padc", use_ranking=True
        )


class TestExpansion:
    def test_deterministic_order_and_keys(self):
        spec = small_spec(include_alone=True, seeds=(0, 3))
        first = [(job.kind, job.key) for job in expand(spec)]
        second = [(job.kind, job.key) for job in expand(spec)]
        assert first == second

    def test_grid_size(self):
        spec = small_spec(
            include_alone=True, variants={"a": {}, "b": {"num_channels": 2}}, seeds=(0, 5)
        )
        jobs = expand(spec)
        grid = [job for job in jobs if job.kind == "grid"]
        alone = [job for job in jobs if job.kind == "alone"]
        assert len(grid) == 2 * 2 * 2 * 2  # workloads x policies x variants x seeds
        assert len(alone) == 2 * 2 * 2  # workloads x benchmarks x seeds

    def test_alone_seeding_matches_alone_ipcs(self):
        """Alone job i of a workload runs with seed workload.seed + i,
        exactly like repro.experiments.runner.alone_ipcs."""
        spec = CampaignSpec.build(
            "x", [Workload.make(["swim", "milc"], seed=4)], POLICIES, 100,
            include_alone=True,
        )
        alone = [job for job in expand(spec) if job.kind == "alone"]
        assert [(job.benchmarks[0], job.seed) for job in alone] == [
            ("swim", 4),
            ("milc", 5),
        ]
        assert all(job.job.config.num_cores == 1 for job in alone)
        assert all(job.job.config.policy == "demand-first" for job in alone)

    def test_unique_jobs_collapses_duplicates(self):
        spec = CampaignSpec.build(
            "x",
            [Workload.make(["swim"], seed=0), Workload.make(["swim"], seed=0)],
            POLICIES,
            100,
            include_alone=False,
        )
        jobs = expand(spec)
        assert len(jobs) == 4
        assert len(unique_jobs(jobs)) == 2


class TestLedger:
    def test_fold_last_status_wins(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.append({"key": "k1", "status": "running", "worker": 1})
        ledger.append({"key": "k1", "status": "failed", "error": "boom"})
        ledger.append({"key": "k1", "status": "running", "worker": 2})
        ledger.append({"key": "k1", "status": "done", "elapsed": 0.5, "cached": False})
        state = ledger.fold()["k1"]
        assert state.status == "done"
        assert state.attempts == 2
        assert state.error is None

    def test_interrupted_run_shows_as_interrupted(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.append({"key": "k1", "status": "running"})
        assert ledger.fold()["k1"].status == "interrupted"

    def test_corrupt_trailing_line_skipped(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.append({"key": "k1", "status": "done"})
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "k2", "status": "don')  # torn write
        assert [record["key"] for record in ledger.records()] == ["k1"]
        assert ledger.fold()["k1"].status == "done"


class TestCrashResume:
    """The satellite scenario: one injected-fault job, siblings finish,
    resume completes with cache hits for everything already done."""

    def _dirs(self, tmp_path):
        return tmp_path / "campaign", tmp_path / "cache"

    def test_failed_job_isolated_then_resumed(self, tmp_path, monkeypatch):
        campaign_dir, cache_dir = self._dirs(tmp_path)
        executor = runtime.configure(jobs=1, cache_dir=str(cache_dir))
        spec = small_spec()
        campaign = Campaign.create(spec, campaign_dir)

        counting_sim(monkeypatch, fail_if=lambda names: "milc" in names)
        run = CampaignRunner(campaign, runtime=executor, retries=0).run()

        # The faulting job failed; every sibling is done.
        counts = campaign.status_counts()
        assert counts["failed"] == 2  # milc appears in one workload x 2 policies
        assert counts["done"] == 2
        failed = run.failed()
        states = campaign.states()
        for job in failed:
            assert "milc" in job.benchmarks
            state = states[job.key]
            assert "injected fault" in state.error
            assert state.meta["policy"] in POLICIES
            assert state.meta["config_fingerprint"]
        # status reports the failure and how to resume.
        summary = status_summary(campaign)
        assert "FAILED" in summary and "resume" in summary
        with pytest.raises(CampaignError):
            run.require_complete()

        # Fix the fault; resume re-runs ONLY the failed jobs.
        calls = counting_sim(monkeypatch)
        resumed = CampaignRunner(campaign, runtime=executor, retries=0).run()
        assert len(calls) == len(failed)
        assert all("milc" in names for names in calls)
        assert not resumed.incomplete()
        assert campaign.status_counts()["done"] == 4

        # The resumed campaign exports byte-identically to an uninterrupted
        # run of the same spec: rows carry no run history (no attempt
        # counts), so the faulted jobs' extra tries leave no trace.
        resumed_csv = export(campaign, executor.store)
        clean_executor = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache2"))
        clean = Campaign.create(spec, tmp_path / "campaign2")
        CampaignRunner(clean, runtime=clean_executor, retries=0).run()
        clean_csv = export(clean, clean_executor.store)
        assert clean_csv == resumed_csv

    def test_limit_interrupt_then_resume_no_rework(self, tmp_path, monkeypatch):
        campaign_dir, cache_dir = self._dirs(tmp_path)
        executor = runtime.configure(jobs=1, cache_dir=str(cache_dir))
        spec = small_spec()
        campaign = Campaign.create(spec, campaign_dir)

        first = counting_sim(monkeypatch)
        CampaignRunner(campaign, runtime=executor).run(limit=1)
        assert len(first) == 1
        counts = campaign.status_counts()
        assert counts["done"] == 1 and counts["pending"] == 3

        rest = counting_sim(monkeypatch)
        resumed = CampaignRunner(campaign, runtime=executor).run()
        assert len(rest) == 3  # the finished job was not re-simulated
        assert not resumed.incomplete()

        # Interrupted-then-resumed exports bit-for-bit what an
        # uninterrupted run produces (no timestamps/worker ids in rows).
        interrupted_csv = export(campaign, executor.store)
        clean_executor = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache2"))
        clean = Campaign.create(spec, tmp_path / "campaign2")
        CampaignRunner(clean, runtime=clean_executor).run()
        assert export(clean, clean_executor.store) == interrupted_csv

    def test_retry_recovers_transient_failure(self, tmp_path, monkeypatch):
        campaign_dir, cache_dir = self._dirs(tmp_path)
        executor = runtime.configure(jobs=1, cache_dir=str(cache_dir))
        spec = CampaignSpec.build(
            "transient", [["swim"]], ["padc"], 200, include_alone=False
        )
        campaign = Campaign.create(spec, campaign_dir)

        real = sim.simulate
        attempts = []

        def flaky(config, benchmarks, **kwargs):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient blip")
            return real(config, benchmarks, **kwargs)

        monkeypatch.setattr(sim, "simulate", flaky)
        run = CampaignRunner(campaign, runtime=executor, retries=1).run()
        assert not run.incomplete()
        (job,) = campaign.unique_jobs()
        state = campaign.states()[job.key]
        assert state.status == "done"
        assert state.attempts == 2

    def test_submit_raises_with_job_identity_on_failure(self, tmp_path, monkeypatch):
        runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache"))
        counting_sim(monkeypatch, fail_if=lambda names: "art" in names)
        with pytest.raises(CampaignError) as excinfo:
            submit(small_spec(), directory=tmp_path / "campaign", retries=0)
        message = str(excinfo.value)
        assert "art" in message
        assert "resume" in message

    def test_warm_resubmit_is_simulation_free(self, tmp_path, monkeypatch):
        executor = runtime.configure(jobs=1, cache_dir=str(tmp_path / "cache"))
        spec = small_spec(include_alone=True)
        submit(spec, directory=tmp_path / "campaign")
        calls = counting_sim(monkeypatch)
        run = submit(spec, directory=tmp_path / "campaign")
        assert calls == []
        assert not run.incomplete()
        # Grid lookups resolve against the store-backed results.
        assert run.grid(0, "padc").cores[0].ipc > 0
        assert len(run.alone_ipcs(1)) == 2


class TestCampaignDirectory:
    def test_create_rejects_spec_mismatch(self, tmp_path):
        directory = tmp_path / "campaign"
        Campaign.create(small_spec(), directory)
        with pytest.raises(CampaignError) as excinfo:
            Campaign.create(small_spec(accesses=999), directory)
        assert "different spec" in str(excinfo.value)

    def test_open_requires_snapshot(self, tmp_path):
        with pytest.raises(CampaignError):
            Campaign.open(tmp_path)

    def test_open_round_trips_spec(self, tmp_path):
        spec = small_spec(include_alone=True)
        Campaign.create(spec, tmp_path / "campaign")
        assert Campaign.open(tmp_path / "campaign").spec == spec

    def test_campaign_root_env_override(self, tmp_path, monkeypatch):
        from repro.campaign import campaigns_root, default_directory

        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path / "sweeps"))
        assert campaigns_root() == tmp_path / "sweeps"
        assert default_directory(small_spec()).parent == tmp_path / "sweeps"


class TestParallelCampaign:
    def test_two_worker_run_matches_serial(self, tmp_path):
        spec = small_spec(accesses=250)
        serial_rt = runtime.configure(jobs=1, cache_dir=str(tmp_path / "c1"))
        serial = Campaign.create(spec, tmp_path / "a")
        CampaignRunner(serial, runtime=serial_rt).run()
        serial_csv = export(serial, serial_rt.store)

        parallel_rt = runtime.configure(jobs=2, cache_dir=str(tmp_path / "c2"))
        parallel = Campaign.create(spec, tmp_path / "b")
        run = CampaignRunner(parallel, runtime=parallel_rt).run()
        assert not run.incomplete()
        assert export(parallel, parallel_rt.store) == serial_csv

    def test_parallel_worker_failure_is_recorded_not_fatal(self, tmp_path):
        """A job that dies inside a worker process leaves a failed ledger
        entry carrying its identity while siblings complete."""
        spec = CampaignSpec.build(
            "boom", [["swim"], ["milc"]], ["padc"], 200, include_alone=False
        )
        executor = runtime.configure(jobs=2, cache_dir=str(tmp_path / "cache"))
        campaign = Campaign.create(spec, tmp_path / "campaign")
        # Sabotage one expanded SimJob with a benchmark name the simulator
        # cannot resolve (crafted below the spec's validation layer on
        # purpose, to emulate a worker-side crash).
        import dataclasses

        jobs = campaign.jobs()
        campaign._jobs = [
            dataclasses.replace(
                job, job=dataclasses.replace(job.job, benchmarks=("no-such-bench",))
            )
            if "milc" in job.benchmarks
            else job
            for job in jobs
        ]
        run = CampaignRunner(campaign, runtime=executor, retries=0).run()
        counts = campaign.status_counts()
        assert counts["done"] == 1 and counts["failed"] == 1
        (failed,) = run.failed()
        assert "milc" in failed.benchmarks
        assert campaign.states()[failed.key].error


class TestCLI:
    def _spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli",
                    "accesses": 250,
                    "workloads": [["swim", "milc"]],
                    "policies": ["demand-first", "padc"],
                    "include_alone": False,
                }
            )
        )
        return path

    def test_run_status_export_cycle(self, tmp_path, capsys):
        spec_file = self._spec_file(tmp_path)
        directory = tmp_path / "campaign"
        cache = tmp_path / "cache"
        base = ["--dir", str(directory), "--cache-dir", str(cache)]
        assert campaign_main(["run", "--spec", str(spec_file)] + base) == 0
        assert "2 done" in capsys.readouterr().out

        assert campaign_main(["status", str(directory)]) == 0
        assert "2 done" in capsys.readouterr().out

        out_file = tmp_path / "out.csv"
        code = campaign_main(
            ["export", str(directory), "--cache-dir", str(cache), "-o", str(out_file)]
        )
        assert code == 0
        header, *rows = out_file.read_text().strip().splitlines()
        assert header.startswith("campaign,kind,")
        assert len(rows) == 2

    def test_rerun_requires_resume_flag(self, tmp_path, capsys):
        spec_file = self._spec_file(tmp_path)
        directory = tmp_path / "campaign"
        base = ["--dir", str(directory), "--cache-dir", str(tmp_path / "cache")]
        assert campaign_main(["run", "--spec", str(spec_file)] + base) == 0
        capsys.readouterr()
        assert campaign_main(["run", "--spec", str(spec_file)] + base) == 2
        assert "--resume" in capsys.readouterr().err
        assert campaign_main(["run", "--spec", str(spec_file), "--resume"] + base) == 0

    def test_limit_then_resume(self, tmp_path, capsys):
        spec_file = self._spec_file(tmp_path)
        directory = tmp_path / "campaign"
        base = ["--dir", str(directory), "--cache-dir", str(tmp_path / "cache")]
        code = campaign_main(
            ["run", "--spec", str(spec_file), "--limit", "1"] + base
        )
        assert code == 1  # incomplete by design
        assert "1 pending" in capsys.readouterr().out
        assert (
            campaign_main(
                ["resume", str(directory), "--cache-dir", str(tmp_path / "cache")]
            )
            == 0
        )

    def test_unknown_preset_is_usage_error(self, tmp_path, capsys):
        assert campaign_main(["run", "--name", "nope"]) == 2
        err = capsys.readouterr().err
        assert "smoke" in err and "paper" in err

    def test_bad_spec_file_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x"}')
        assert campaign_main(["run", "--spec", str(bad)]) == 2
        assert "missing required field" in capsys.readouterr().err

    def test_smoke_preset_runs(self, tmp_path):
        directory = tmp_path / "campaign"
        code = campaign_main(
            [
                "run",
                "--name",
                "smoke",
                "--dir",
                str(directory),
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        assert Campaign.open(directory).status_counts()["done"] == 8
