"""Tests for checked mode: the invariant auditor and the differential harness.

Two families:

* the :class:`~repro.validate.checker.InvariantChecker` passes on clean
  runs of every policy, and *fails loudly* when the simulator's counters
  or structures are deliberately corrupted (one corruption per law);
* the cross-policy differential harness accepts real runs and rejects
  doctored ones.
"""

import copy

import pytest

from repro.params import (
    ALL_POLICIES,
    CacheConfig,
    CoreConfig,
    DRAMConfig,
    PADCConfig,
    PrefetcherConfig,
    SystemConfig,
)
from repro.sim import System
from repro.validate import InvariantChecker, InvariantViolation, check_enabled
from repro.validate.differential import (
    EQUAL_WORK_POLICIES,
    RIGID_POLICIES,
    DifferentialViolation,
    assert_equal_work,
    assert_universal_invariants,
    differential_audit,
    differential_equal_work_audit,
)


def small_config(policy="padc", num_cores=1, **overrides):
    fields = dict(
        num_cores=num_cores,
        core=CoreConfig(rob_size=64, retire_width=4),
        cache=CacheConfig(size_bytes=32 * 1024, associativity=4, mshr_entries=8),
        dram=DRAMConfig(request_buffer_size=16),
        prefetcher=PrefetcherConfig(),
        padc=PADCConfig(accuracy_interval=5_000),
        policy=policy,
    )
    fields.update(overrides)
    return SystemConfig(**fields)


def run_system(policy="padc", accesses=2_000, num_cores=1, **kwargs):
    config = small_config(policy, num_cores=num_cores, **kwargs)
    system = System(config, ["swim"] * num_cores, check=True)
    result = system.run(accesses)
    return system, result


class TestEnableKnob:
    @pytest.mark.parametrize("value", ["1", "on", "true", "yes", " ON ", "True"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CHECK", value)
        assert check_enabled()

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", ""])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CHECK", value)
        assert not check_enabled()

    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert not check_enabled()
        assert check_enabled(default=True)

    def test_system_resolves_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "0")
        assert System(small_config(), ["swim"]).checker is None
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert System(small_config(), ["swim"]).checker is not None

    def test_explicit_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert System(small_config(), ["swim"], check=False).checker is None
        monkeypatch.setenv("REPRO_CHECK", "0")
        assert System(small_config(), ["swim"], check=True).checker is not None


class TestCleanRuns:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_every_policy_audits_clean(self, policy):
        system, result = run_system(policy=policy, accesses=1_500)
        # At least one interval audit (5K-cycle interval) plus the end audit.
        assert system.checker.audits >= 2
        assert result.cores[0].loads == 1_500

    def test_multicore_shared_cache_audits_clean(self):
        system, _ = run_system(
            num_cores=2,
            accesses=1_200,
            cache=CacheConfig(
                size_bytes=32 * 1024, associativity=4, mshr_entries=8, shared=True
            ),
        )
        assert system.checker.audits >= 2

    def test_repeat_audit_of_finished_system_passes(self):
        system, _ = run_system(accesses=1_000)
        system.checker.audit("end", system._now)  # idempotent on clean state


class TestCorruptionDetection:
    """Each test injects one corruption and expects the matching law to fire."""

    def corrupt(self, mutate, match):
        system, _ = run_system(accesses=2_000)
        mutate(system)
        with pytest.raises(InvariantViolation, match=match):
            system.checker.audit("end", system._now)

    def test_pf_sent_corruption(self):
        def mutate(system):
            assert system.results[0].pf_sent > 0  # workload sanity
            system.results[0].pf_sent += 1

        self.corrupt(mutate, "pf_sent")

    def test_occupancy_counter_corruption(self):
        self.corrupt(
            lambda system: system.engine._occupancy.__setitem__(
                0, system.engine._occupancy[0] + 1
            ),
            "occupancy counter",
        )

    def test_mshr_ledger_corruption(self):
        def mutate(system):
            system._mshrs[0].total_allocated += 1

        self.corrupt(mutate, "MSHR occupancy")

    def test_hit_miss_partition_corruption(self):
        def mutate(system):
            system.cores[0].l2_hits += 1

        self.corrupt(mutate, "l2_hits")

    def test_stall_exceeding_cycles(self):
        def mutate(system):
            system.results[0].stall_cycles = system.results[0].cycles + 1

        self.corrupt(mutate, "stall_cycles")

    def test_lifecycle_leak(self):
        def mutate(system):
            system.engine.stats.enqueued_total += 1

        self.corrupt(mutate, "lifecycle leak")

    def test_drop_ledger_disagreement(self):
        def mutate(system):
            system.engine.dropper.dropped_per_core[0] += 1

        self.corrupt(mutate, "drop")

    def test_violation_message_collects_context(self):
        system, _ = run_system(accesses=1_000)
        system.results[0].pf_sent += 5
        system.engine.stats.enqueued_total += 1
        with pytest.raises(InvariantViolation) as excinfo:
            system.checker.audit("end", system._now)
        message = str(excinfo.value)
        # Both independent violations reported in one raise, with context.
        assert "pf_sent" in message and "lifecycle leak" in message
        assert "phase=end" in message

    def test_mid_run_interval_audit_catches_corruption(self):
        """Corruption is caught at the *next* interval, not only at the end."""
        system = System(small_config(), ["swim"], check=True)
        original = system.checker.on_interval
        state = {"corrupted": False}

        def sabotage(now):
            if not state["corrupted"] and now > 5_000:
                system.cores[0].l2_misses += 1
                state["corrupted"] = True
            original(now)

        system.checker.on_interval = sabotage
        with pytest.raises(InvariantViolation, match="l2_misses"):
            system.run(5_000)


class TestDifferentialHarness:
    def test_rigid_audit_passes_and_detects_tamper(self):
        results = differential_audit(["swim"], accesses=600)
        assert set(results) == set(RIGID_POLICIES)
        tampered = copy.deepcopy(results)
        tampered["prefetch-first"].cores[0].loads += 1
        with pytest.raises(DifferentialViolation, match="loads"):
            assert_universal_invariants(tampered)

    def test_equal_work_audit_passes_and_detects_tamper(self):
        results = differential_equal_work_audit(["swim"], accesses=600)
        assert set(results) == set(EQUAL_WORK_POLICIES)
        cycles = {result.total_cycles for result in results.values()}
        assert len(cycles) == 1  # bit-identical schedules
        for result in results.values():
            assert result.cores[0].pf_sent == 0
        tampered = copy.deepcopy(results)
        tampered["demand-first"].cores[0].demand_fills += 1
        with pytest.raises(DifferentialViolation, match="demand_fills"):
            assert_equal_work(tampered)

    def test_equal_work_rejects_prefetching_run(self):
        # Feed a *prefetch-enabled* run where equal work is not guaranteed:
        # the harness must refuse it rather than compare garbage.
        results = differential_audit(["swim"], accesses=600)
        assert any(r.cores[0].pf_sent for r in results.values())
        with pytest.raises(DifferentialViolation, match="prefetch counters"):
            assert_equal_work(results)


class TestCheckerConstruction:
    def test_checker_attaches_without_running(self):
        system = System(small_config(), ["swim"], check=True)
        assert isinstance(system.checker, InvariantChecker)
        assert system.checker.audits == 0
        system.checker.audit("interval", 0)  # pristine system is consistent
        assert system.checker.audits == 1
