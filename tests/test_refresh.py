"""Tests for DRAM refresh modelling."""

from dataclasses import replace

from repro.dram.channel import Channel
from repro.dram.refresh import RefreshConfig, RefreshScheduler
from repro.params import DRAMConfig, baseline_config
from repro.sim import simulate


class TestRefreshScheduler:
    def test_next_refresh_boundary(self):
        scheduler = RefreshScheduler(RefreshConfig(interval=1000, cycles=50))
        assert scheduler.next_refresh_after(0) == 1000
        assert scheduler.next_refresh_after(999) == 1000
        assert scheduler.next_refresh_after(1000) == 2000

    def test_apply_occupies_banks_and_closes_rows(self):
        scheduler = RefreshScheduler(RefreshConfig(interval=1000, cycles=50))
        channel = Channel(DRAMConfig())
        channel.service(0, row=3, now=0)
        done = scheduler.apply(channel, now=100)
        assert done == 150
        assert all(bank.busy_until >= 150 for bank in channel.banks)
        assert all(bank.open_row is None for bank in channel.banks)
        assert scheduler.refreshes_issued == 1

    def test_apply_does_not_shorten_busier_banks(self):
        scheduler = RefreshScheduler(RefreshConfig(interval=1000, cycles=10))
        channel = Channel(DRAMConfig())
        channel.banks[0].busy_until = 500
        scheduler.apply(channel, now=100)
        assert channel.banks[0].busy_until == 500

    def test_bandwidth_overhead(self):
        scheduler = RefreshScheduler(RefreshConfig(interval=31_200, cycles=640))
        assert 0.02 < scheduler.bandwidth_overhead() < 0.025

    def test_from_dram_config(self):
        dram = DRAMConfig(refresh_enabled=True, refresh_interval=123, refresh_cycles=7)
        scheduler = RefreshScheduler.from_dram_config(dram)
        assert scheduler.config.interval == 123
        assert scheduler.config.cycles == 7


class TestRefreshInSystem:
    def test_refresh_costs_performance(self):
        base = baseline_config(1, policy="demand-first")
        with_refresh = replace(
            base, dram=replace(base.dram, refresh_enabled=True)
        )
        plain = simulate(base, ["swim"], max_accesses_per_core=5_000)
        refreshed = simulate(with_refresh, ["swim"], max_accesses_per_core=5_000)
        assert refreshed.ipc() < plain.ipc()
        # Refresh costs a few percent, not an order of magnitude.
        assert refreshed.ipc() > plain.ipc() * 0.8

    def test_disabled_by_default(self):
        config = baseline_config(1)
        assert not config.dram.refresh_enabled
