"""Constant-memory streaming: a 1M+-entry trace decodes in bounded memory."""

import tracemalloc

from repro.core.trace import TraceEntry
from repro.trace.format import TraceReader, write_trace

ENTRIES = 1_200_000
BLOCK_ENTRIES = 8192

# Decode must be bounded by one block, not by trace length.  One decoded
# block is ~10 KB of payload plus transient record tuples; 8 MiB gives a
# ~100x cushion over that while still being ~50x below what holding the
# 1.2M decoded entries would need (~160 MB), so a buffer-the-whole-file
# regression cannot slip under this bound.
PEAK_LIMIT_BYTES = 8 * 1024 * 1024


def _arith_entries(count):
    """A cheap deterministic stream: strided lines, periodic jumps."""
    line = 1 << 30
    for i in range(count):
        line = line + 1 if i % 64 else (i * 2654435761) % (1 << 44)
        yield TraceEntry(i % 7, line, 0x400000 + (i % 13), i % 11 == 0)


def test_million_entry_trace_decodes_in_constant_memory(tmp_path):
    path = tmp_path / "big.rtr"
    written_sum = [0]

    def counting(entries):
        for entry in entries:
            written_sum[0] += entry.line_addr
            yield entry

    header = write_trace(
        path, counting(_arith_entries(ENTRIES)), block_entries=BLOCK_ENTRIES
    )
    assert header.entries == ENTRIES
    assert header.blocks == (ENTRIES + BLOCK_ENTRIES - 1) // BLOCK_ENTRIES

    reader = TraceReader(path)
    decoded = 0
    checksum = 0
    tracemalloc.start()
    try:
        for entry in reader.entries():
            decoded += 1
            checksum += entry.line_addr
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert decoded == ENTRIES
    assert checksum == written_sum[0]
    assert peak < PEAK_LIMIT_BYTES, (
        f"decode peak {peak / 1e6:.1f} MB exceeds the constant-memory bound"
    )


def test_windowed_read_skips_blocks_in_constant_memory(tmp_path):
    path = tmp_path / "big.rtr"
    write_trace(path, _arith_entries(400_000), block_entries=BLOCK_ENTRIES)
    reader = TraceReader(path)
    tracemalloc.start()
    try:
        tail = list(reader.entries(start=399_990))
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert len(tail) == 10
    assert peak < PEAK_LIMIT_BYTES
