"""Tests for the store / writeback path."""

import itertools

from repro.cache.cache import L2Cache
from repro.params import CacheConfig, baseline_config
from repro.sim import simulate
from repro.workloads import BenchmarkProfile
from repro.workloads.synthetic import SyntheticTraceGenerator

STORE_HEAVY = BenchmarkProfile(
    name="storeheavy",
    pf_class=1,
    apki=20.0,
    stream_fraction=0.9,
    run_length=512,
    num_streams=4,
    ws_lines=1 << 20,
    write_fraction=0.4,
)


class TestCacheDirtyBits:
    def make_cache(self):
        return L2Cache(CacheConfig(size_bytes=2 * 64 * 2, associativity=2))

    def test_write_hit_marks_dirty(self):
        cache = self.make_cache()
        cache.fill(0, prefetched=False, core_id=0)
        cache.lookup(0, is_write=True)
        cache.fill(2, prefetched=False, core_id=0)
        evicted = cache.fill(4, prefetched=False, core_id=0)
        assert evicted.line_addr == 0
        assert evicted.dirty

    def test_clean_eviction_not_dirty(self):
        cache = self.make_cache()
        cache.fill(0, prefetched=False, core_id=0)
        cache.fill(2, prefetched=False, core_id=0)
        evicted = cache.fill(4, prefetched=False, core_id=0)
        assert not evicted.dirty

    def test_dirty_fill(self):
        cache = self.make_cache()
        cache.fill(0, prefetched=False, core_id=0, dirty=True)
        cache.fill(2, prefetched=False, core_id=0)
        evicted = cache.fill(4, prefetched=False, core_id=0)
        assert evicted.dirty

    def test_redundant_dirty_fill_upgrades(self):
        cache = self.make_cache()
        cache.fill(0, prefetched=False, core_id=0)
        cache.fill(0, prefetched=False, core_id=0, dirty=True)
        cache.fill(2, prefetched=False, core_id=0)
        evicted = cache.fill(4, prefetched=False, core_id=0)
        assert evicted.dirty


class TestTraceWrites:
    def test_generator_emits_writes(self):
        entries = list(
            itertools.islice(
                SyntheticTraceGenerator(STORE_HEAVY, seed=0).generate(), 2000
            )
        )
        write_share = sum(entry.is_write for entry in entries) / len(entries)
        assert 0.3 < write_share < 0.5

    def test_default_profiles_have_no_writes(self):
        from repro.workloads import get_profile

        profile = get_profile("swim")
        entries = itertools.islice(
            SyntheticTraceGenerator(profile, seed=0).generate(), 500
        )
        assert not any(entry.is_write for entry in entries)


class TestWritebackTraffic:
    def test_store_heavy_workload_writes_back(self):
        config = baseline_config(1, policy="padc")
        result = simulate(config, [STORE_HEAVY], max_accesses_per_core=30_000)
        core = result.cores[0]
        assert core.writeback_fills > 0
        assert core.total_traffic > core.demand_fills + core.prefetch_fills

    def test_writebacks_counted_in_bus_lines(self):
        config = baseline_config(1, policy="demand-first")
        result = simulate(config, [STORE_HEAVY], max_accesses_per_core=30_000)
        # Channel transfers include writebacks: serviced >= counted fills.
        assert result.bus_traffic_lines >= result.total_traffic - 64

    def test_read_only_workload_has_no_writebacks(self):
        config = baseline_config(1, policy="padc")
        result = simulate(config, ["swim"], max_accesses_per_core=5_000)
        assert result.cores[0].writeback_fills == 0
