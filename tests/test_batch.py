"""Tests for the PAR-BS batch-scheduling baseline."""

from repro.controller.batch import BatchScheduler
from repro.controller.policies import make_policy
from repro.controller.request import MemRequest
from repro.params import baseline_config
from repro.sim import simulate


def request(core, arrival, is_prefetch=False):
    # Unique seq per request, as the engine's admission counter guarantees
    # (the marked set is keyed by seq).
    return MemRequest(
        line_addr=arrival + core * 10_000,
        core_id=core,
        is_prefetch=is_prefetch,
        arrival=arrival,
        channel=0,
        bank=0,
        row=0,
        seq=arrival + core * 10_000,
    )


class TestBatchFormation:
    def test_marks_oldest_per_core_up_to_cap(self):
        scheduler = BatchScheduler(num_cores=2, marking_cap=2)
        queue = [request(0, t) for t in range(5)] + [request(1, 10)]
        scheduler.begin_tick([queue], now=0)
        marked = [r for r in queue if r.seq in scheduler._marked]
        assert len([r for r in marked if r.core_id == 0]) == 2
        assert len([r for r in marked if r.core_id == 1]) == 1
        assert scheduler.batches_formed == 1

    def test_prefetches_not_marked(self):
        scheduler = BatchScheduler(num_cores=1)
        queue = [request(0, 0, is_prefetch=True), request(0, 1)]
        scheduler.begin_tick([queue], now=0)
        assert queue[0].seq not in scheduler._marked
        assert queue[1].seq in scheduler._marked

    def test_no_rebatch_while_batch_outstanding(self):
        scheduler = BatchScheduler(num_cores=1, marking_cap=1)
        first = request(0, 0)
        scheduler.begin_tick([[first]], now=0)
        late = request(0, 5)
        scheduler.begin_tick([[first, late]], now=5)
        assert late.seq not in scheduler._marked
        # Once the batch drains, the next begin_tick re-forms it.
        scheduler.begin_tick([[late]], now=6)
        assert late.seq in scheduler._marked
        assert scheduler.batches_formed == 2


class TestBatchPriorities:
    def test_marked_beats_unmarked_row_hit(self):
        scheduler = BatchScheduler(num_cores=2, marking_cap=1)
        old = request(0, 0)
        young = request(1, 50)
        scheduler.begin_tick([[old, young]], now=50)
        # Both marked (different cores); an unmarked later request loses
        # even with a row hit.
        unmarked = request(0, 60)
        marked_priority = scheduler.priority(old, row_hit=False)
        unmarked_priority = scheduler.priority(unmarked, row_hit=True)
        assert marked_priority > unmarked_priority

    def test_shortest_job_ranked_first(self):
        scheduler = BatchScheduler(num_cores=2, marking_cap=3)
        heavy = [request(0, t) for t in range(3)]
        light = [request(1, 10)]
        scheduler.begin_tick([heavy + light], now=10)
        light_priority = scheduler.priority(light[0], row_hit=False)
        heavy_priority = scheduler.priority(heavy[0], row_hit=False)
        assert light_priority > heavy_priority

    def test_demand_beats_prefetch_within_mark_state(self):
        scheduler = BatchScheduler(num_cores=1)
        demand = request(0, 5)
        prefetch = request(0, 1, is_prefetch=True)
        scheduler.begin_tick([[demand, prefetch]], now=5)
        assert scheduler.priority(demand, False) > scheduler.priority(
            prefetch, True
        )


class TestBatchInSystem:
    def test_parbs_policy_runs_end_to_end(self):
        config = baseline_config(4, policy="parbs")
        result = simulate(
            config,
            ["swim", "milc", "art", "libquantum"],
            max_accesses_per_core=1_200,
        )
        assert all(core.loads == 1_200 for core in result.cores)

    def test_make_policy_parbs(self):
        policy = make_policy("parbs", num_cores=4)
        assert policy.name == "parbs"
        assert policy.num_cores == 4
