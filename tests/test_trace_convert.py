"""Converters: ChampSim / gem5 / legacy-text dumps into ``.rtr`` traces."""

from pathlib import Path

import pytest

from repro.core.trace import TraceEntry
from repro.core.tracefile import save_trace
from repro.trace.convert import (
    ConvertError,
    convert,
    iter_champsim,
    iter_gem5,
    sniff_dialect,
)
from repro.trace.format import read_trace, validate_trace

FIXTURES = Path(__file__).parent / "fixtures"

# Content digests of the checked-in fixtures.  These are part of the
# format contract: if an encoder or converter change moves them, that
# change breaks cache-key stability for every existing trace and must
# ship with a FORMAT_VERSION (and CACHE_VERSION) bump.
CHAMPSIM_SMALL_DIGEST = (
    "a6348bb87f59969b03f7aee2bdc32d7fb1f6c923e0a990d17c3b930ddd568bd2"
)
GEM5_SMALL_DIGEST = (
    "b66f3db112c59118ca2bc81653c369d57c1d12e371491e691bf315f151dfc820"
)


def test_champsim_fixture_golden(tmp_path):
    out = tmp_path / "champsim_small.rtr"
    header = convert(FIXTURES / "champsim_small.txt", out, "champsim")
    assert header.entries == 200
    assert header.digest == CHAMPSIM_SMALL_DIGEST
    validate_trace(out)
    entries = list(read_trace(out))
    # First data lines of the fixture:
    #   1041 0x10000040 L 0x400a10
    #   1056 0x10000080 L 0x400a10
    assert entries[0] == TraceEntry(0, 0x10000040 >> 6, 0x400A10, False)
    assert entries[1] == TraceEntry(15, 0x10000080 >> 6, 0x400A10, False)
    assert any(entry.is_write for entry in entries)
    assert all(entry.gap >= 0 for entry in entries)


def test_gem5_fixture_golden(tmp_path):
    out = tmp_path / "gem5_small.rtr"
    header = convert(FIXTURES / "gem5_small.csv", out, "gem5")
    assert header.entries == 150
    assert header.digest == GEM5_SMALL_DIGEST
    validate_trace(out)
    entries = list(read_trace(out))
    # First data row: 501084,ReadReq,0x9a8cfa00,0x4000
    assert entries[0] == TraceEntry(0, 0x9A8CFA00 >> 6, 0x4000, False)
    assert any(entry.is_write for entry in entries)


def test_champsim_parses_types_and_hex(tmp_path):
    dump = tmp_path / "d.txt"
    dump.write_text(
        "# comment\n"
        "\n"
        "100 0x1000 L 0x10\n"
        "110 4096 W\n"  # decimal address, no pc, write
        "115 0x1040 RFO 20\n"  # decimal pc
        "115 1a40 r 0x30\n"  # bare hex, lowercase type, same instr id
    )
    entries = list(iter_champsim(dump))
    assert entries == [
        TraceEntry(0, 0x1000 >> 6, 0x10, False),
        TraceEntry(10, 4096 >> 6, 0, True),
        TraceEntry(5, 0x1040 >> 6, 20, True),
        TraceEntry(0, 0x1A40 >> 6, 0x30, False),
    ]


def test_champsim_gap_clamps_on_reordered_ids(tmp_path):
    dump = tmp_path / "d.txt"
    dump.write_text("100 0x40 L\n90 0x80 L\n")
    assert [entry.gap for entry in iter_champsim(dump)] == [0, 0]


@pytest.mark.parametrize(
    "line, match",
    [
        ("100 0x40", "expected"),  # too few fields
        ("100 0x40 L 0x1 extra", "expected"),  # too many fields
        ("abcxyz 0x40 L", "not a number"),
        ("100 0x40 Q", "unknown access type"),
    ],
)
def test_champsim_malformed_lines(tmp_path, line, match):
    dump = tmp_path / "d.txt"
    dump.write_text(line + "\n")
    with pytest.raises(ConvertError, match=match):
        list(iter_champsim(dump))


def test_champsim_line_bytes_must_be_power_of_two(tmp_path):
    dump = tmp_path / "d.txt"
    dump.write_text("100 0x40 L\n")
    with pytest.raises(ConvertError, match="power of two"):
        list(iter_champsim(dump, line_bytes=48))


def test_gem5_column_order_and_ticks(tmp_path):
    dump = tmp_path / "d.csv"
    dump.write_text(
        "# leading comment\n"
        "addr,tick,cmd\n"  # any column order
        "0x1000,1000,ReadReq\n"
        "0x1040,2000,WritebackDirty\n"
        "0x1080,2100,ReadExReq\n"
    )
    entries = list(iter_gem5(dump, ticks_per_instr=100))
    assert entries == [
        TraceEntry(0, 0x1000 >> 6, 0, False),
        TraceEntry(10, 0x1040 >> 6, 0, True),
        TraceEntry(1, 0x1080 >> 6, 0, False),
    ]


def test_gem5_missing_column_rejected(tmp_path):
    dump = tmp_path / "d.csv"
    dump.write_text("tick,addr\n1,0x40\n")
    with pytest.raises(ConvertError, match="missing cmd"):
        list(iter_gem5(dump))


def test_gem5_short_row_rejected(tmp_path):
    dump = tmp_path / "d.csv"
    dump.write_text("tick,cmd,addr\n1000,ReadReq\n")
    with pytest.raises(ConvertError, match="header promised"):
        list(iter_gem5(dump))


def test_gem5_bad_ticks_per_instr(tmp_path):
    dump = tmp_path / "d.csv"
    dump.write_text("tick,cmd,addr\n1,ReadReq,0x40\n")
    with pytest.raises(ConvertError, match="ticks_per_instr"):
        list(iter_gem5(dump, ticks_per_instr=0))


def test_repro_text_round_trip(tmp_path):
    entries = [
        TraceEntry(3, 0x100, 0x10, False),
        TraceEntry(0, 0x101, 0x10, True),
        TraceEntry(7, 0x900, 0x20, False),
    ]
    legacy = tmp_path / "t.trace.gz"
    save_trace(iter(entries), legacy)
    out = tmp_path / "t.rtr"
    header = convert(legacy, out, "repro-text")
    assert header.entries == 3
    assert list(read_trace(out)) == entries


def test_convert_limit_and_unknown_dialect(tmp_path):
    out = tmp_path / "t.rtr"
    header = convert(
        FIXTURES / "champsim_small.txt", out, "champsim", limit=25
    )
    assert header.entries == 25
    with pytest.raises(ConvertError, match="unknown input dialect"):
        convert(FIXTURES / "champsim_small.txt", out, "pintool")


def test_sniff_dialect(tmp_path):
    assert sniff_dialect("dump.trace.gz") == "repro-text"
    assert sniff_dialect("dump.csv") == "gem5"
    assert sniff_dialect(FIXTURES / "champsim_small.txt") == "champsim"
    gzipped = tmp_path / "noext"
    gzipped.write_bytes(b"\x1f\x8b rest does not matter")
    assert sniff_dialect(gzipped) == "repro-text"
