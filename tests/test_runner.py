"""Tests for the experiment runner helpers."""

import dataclasses
from dataclasses import replace

from repro.experiments.runner import (
    SCALES,
    Scale,
    _ALONE_CACHE,
    _config_key,
    alone_ipc,
    alone_ipcs,
    average,
    run_policies,
    speedup_metrics,
)
from repro.params import baseline_config


class TestAloneIPC:
    def test_memoization(self):
        _ALONE_CACHE.clear()
        first = alone_ipc("swim", 600, seed=1)
        assert ("swim", 600, 1, None) in _ALONE_CACHE
        assert alone_ipc("swim", 600, seed=1) == first

    def test_profile_objects_memoize(self):
        from repro.workloads import get_profile

        profile = get_profile("swim")
        assert alone_ipc(profile, 600, seed=1) == alone_ipc(profile, 600, seed=1)

    def test_custom_config_keyed_separately(self):
        small = baseline_config(1, policy="demand-first", cache_kb_per_core=256)
        default = alone_ipc("galgel", 600, seed=2)
        with_small_cache = alone_ipc("galgel", 600, config=small, seed=2)
        # Different cache sizes are distinct cache entries (values may
        # coincide, but both keys must exist).
        keys = [key for key in _ALONE_CACHE if key[0] == "galgel"]
        assert len(keys) >= 2
        assert default > 0 and with_small_cache > 0

    def test_rejects_multicore_config(self):
        import pytest

        with pytest.raises(ValueError):
            alone_ipc("swim", 100, config=baseline_config(2))


class TestRunPolicies:
    def test_runs_each_policy(self):
        runs = run_policies(["swim"], 500, policies=("no-pref", "padc"))
        assert set(runs) == {"no-pref", "padc"}
        assert runs["no-pref"].cores[0].pf_sent == 0
        assert runs["padc"].cores[0].loads == 500

    def test_config_builder_used(self):
        calls = []

        def builder(policy):
            calls.append(policy)
            return baseline_config(1, policy=policy)

        run_policies(["swim"], 300, policies=("padc",), config_builder=builder)
        assert calls == ["padc"]


class TestSpeedupMetrics:
    def test_metrics_computed(self):
        runs = run_policies(["swim", "milc"], 500, policies=("padc",))
        metrics = speedup_metrics(runs["padc"], ["swim", "milc"], 500)
        assert 0 < metrics["ws"] <= 2.0 + 1e-9
        assert 0 < metrics["hs"] <= 1.0 + 1e-9
        assert metrics["uf"] >= 1.0


class TestScales:
    def test_four_scales_defined(self):
        assert set(SCALES) == {"tiny", "quick", "medium", "paper"}
        assert SCALES["paper"].mixes_2core == 54
        assert SCALES["paper"].mixes_4core == 32
        assert SCALES["paper"].mixes_8core == 21

    def test_scales_monotonically_ordered(self):
        ordered = [SCALES[name] for name in ("tiny", "quick", "medium", "paper")]
        for smaller, larger in zip(ordered, ordered[1:]):
            for field in dataclasses.fields(Scale):
                assert getattr(smaller, field.name) <= getattr(larger, field.name), (
                    f"{field.name} not monotonic between scales"
                )

    def test_average(self):
        assert average([1.0, 3.0]) == 2.0
        assert average([]) == 0.0


class TestConfigKey:
    """The memo key must cover *every* config field (regression).

    The old ``_config_key`` enumerated eight hand-picked fields; configs
    differing only in anything else — ``dram.banks_per_channel``, the APD
    drop thresholds — silently shared one ``alone_ipc`` cache entry.
    """

    def test_none_config_keys_as_none(self):
        assert _config_key(None) is None

    def test_distinguishes_fields_outside_the_old_tuple(self):
        base = baseline_config(1)
        fewer_banks = replace(
            base, dram=replace(base.dram, banks_per_channel=2)
        )
        eager_drop = replace(
            base, padc=replace(base.padc, drop_thresholds=((1.01, 10),))
        )
        keys = {_config_key(base), _config_key(fewer_banks), _config_key(eager_drop)}
        assert len(keys) == 3

    def test_alone_ipc_entries_no_longer_collide(self):
        _ALONE_CACHE.clear()
        base = baseline_config(1, policy="demand-first")
        fewer_banks = replace(base, dram=replace(base.dram, banks_per_channel=2))
        default = alone_ipc("swim", 400, config=base, seed=3)
        varied = alone_ipc("swim", 400, config=fewer_banks, seed=3)
        # Under the old key both calls would have hit one entry (and
        # returned the same IPC by construction); now each config gets
        # its own entry and its own simulation.
        assert len([key for key in _ALONE_CACHE if key[0] == "swim"]) == 2
        assert default != varied
