"""Tests for benchmark profiles and the synthetic trace generator."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.profiles import (
    ALL_BENCHMARKS,
    BenchmarkProfile,
    get_profile,
    profiles_by_class,
)
from repro.workloads.suite import make_trace, named_mix, random_mix, workload_mixes
from repro.workloads.synthetic import SyntheticTraceGenerator


class TestProfileTable:
    def test_population_is_55(self):
        assert len(ALL_BENCHMARKS) == 55

    def test_class_balance_roughly_matches_paper(self):
        """The paper has 29 class-1 benchmarks out of 55."""
        assert 25 <= len(profiles_by_class(1)) <= 33
        assert len(profiles_by_class(2)) >= 6
        assert len(profiles_by_class(0)) >= 10

    def test_named_benchmarks_present(self):
        for name in ("libquantum_06", "swim_00", "art_00", "milc_06"):
            assert get_profile(name).name == name

    def test_short_alias(self):
        assert get_profile("swim").name == "swim_00"
        assert get_profile("libquantum").name == "libquantum_06"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_profile("doom3")

    def test_unique_names(self):
        names = [profile.name for profile in ALL_BENCHMARKS]
        assert len(names) == len(set(names))

    def test_unfriendly_runs_shorter_than_prefetch_distance(self):
        """Class-2 profiles rely on runs shorter than the 64-line distance."""
        short_runs = [
            profile
            for profile in profiles_by_class(2)
            if profile.run_length <= 100 or profile.phase_period
        ]
        assert len(short_runs) == len(profiles_by_class(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", pf_class=1, apki=0, stream_fraction=0.5, run_length=8)
        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", pf_class=1, apki=1, stream_fraction=1.5, run_length=8)
        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", pf_class=1, apki=1, stream_fraction=0.5, run_length=1)


def take(generator, count):
    return list(itertools.islice(generator, count))


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        profile = get_profile("swim")
        first = take(SyntheticTraceGenerator(profile, seed=3).generate(), 500)
        second = take(SyntheticTraceGenerator(profile, seed=3).generate(), 500)
        assert first == second

    def test_different_seeds_differ(self):
        profile = get_profile("swim")
        first = take(SyntheticTraceGenerator(profile, seed=3).generate(), 200)
        second = take(SyntheticTraceGenerator(profile, seed=4).generate(), 200)
        assert first != second

    def test_gap_mean_tracks_apki(self):
        profile = get_profile("libquantum")  # apki 24 -> mean gap ~ 41
        entries = take(SyntheticTraceGenerator(profile, seed=0).generate(), 5000)
        mean_gap = sum(entry.gap for entry in entries) / len(entries)
        expected = 1000.0 / profile.apki
        assert 0.7 * expected < mean_gap + 1 < 1.3 * expected

    def test_streaming_profile_is_mostly_sequential(self):
        profile = get_profile("bwaves")
        entries = take(SyntheticTraceGenerator(profile, seed=0).generate(), 3000)
        sequential = sum(
            1
            for previous, current in zip(entries, entries[1:])
            if 0 < current.line_addr - previous.line_addr <= 1
        )
        # Interleaved streams: consecutive entries rarely belong to the
        # same stream, so check per-address-neighbourhood instead.
        addresses = {entry.line_addr for entry in entries}
        with_successor = sum(1 for a in addresses if a + 1 in addresses)
        assert with_successor / len(addresses) > 0.8

    def test_random_profile_is_not_sequential(self):
        profile = get_profile("omnetpp")
        entries = take(SyntheticTraceGenerator(profile, seed=0).generate(), 3000)
        addresses = {entry.line_addr for entry in entries}
        with_successor = sum(1 for a in addresses if a + 1 in addresses)
        assert with_successor / len(addresses) < 0.75

    def test_phased_profile_changes_behaviour(self):
        profile = get_profile("milc")
        assert profile.phase_period > 0
        entries = take(
            SyntheticTraceGenerator(profile, seed=0).generate(),
            profile.phase_period * (1 + profile.bad_phase_ratio),
        )
        # Both phases must be represented: long runs early, short later.
        good = entries[: profile.phase_period]
        bad = entries[profile.phase_period :]
        good_addresses = {entry.line_addr for entry in good}
        bad_addresses = {entry.line_addr for entry in bad}
        good_seq = sum(1 for a in good_addresses if a + 1 in good_addresses)
        bad_seq = sum(1 for a in bad_addresses if a + 1 in bad_addresses)
        assert good_seq / len(good_addresses) > bad_seq / len(bad_addresses)

    def test_hot_set_profile_revisits_lines(self):
        profile = get_profile("galgel")
        entries = take(SyntheticTraceGenerator(profile, seed=0).generate(), 6000)
        addresses = [entry.line_addr for entry in entries]
        assert len(set(addresses)) < len(addresses)

    def test_entries_are_nonnegative(self):
        profile = get_profile("ammp")
        for entry in take(SyntheticTraceGenerator(profile, seed=0).generate(), 1000):
            assert entry.gap >= 0
            assert entry.line_addr >= 0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_any_seed_produces_a_trace(self, seed):
        profile = get_profile("soplex")
        entries = take(SyntheticTraceGenerator(profile, seed=seed).generate(), 50)
        assert len(entries) == 50


class TestSuiteHelpers:
    def test_make_trace_accepts_names_and_profiles(self):
        assert take(make_trace("swim", seed=1), 10)
        assert take(make_trace(get_profile("swim"), seed=1), 10)

    def test_random_mix_size_and_uniqueness(self):
        mix = random_mix(4, seed=5)
        assert len(mix) == 4
        assert len({profile.name for profile in mix}) == 4

    def test_random_mix_deterministic(self):
        assert [p.name for p in random_mix(4, seed=5)] == [
            p.name for p in random_mix(4, seed=5)
        ]

    def test_workload_mixes_count(self):
        mixes = workload_mixes(2, 5, seed=0)
        assert len(mixes) == 5
        assert all(len(mix) == 2 for mix in mixes)

    def test_named_mix(self):
        mix = named_mix(["swim", "art_00"])
        assert [profile.name for profile in mix] == ["swim_00", "art_00"]
