"""Tests for the stride, C/DC and Markov prefetchers."""

from repro.params import PrefetcherConfig
from repro.prefetch.base import NullPrefetcher, make_prefetcher
from repro.prefetch.cdc import CDCPrefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.stride import StridePrefetcher


class TestStride:
    def test_constant_stride_detected(self):
        prefetcher = StridePrefetcher(degree=2, threshold=2)
        pc = 42
        assert prefetcher.on_access(100, False, pc=pc) == []  # allocate
        assert prefetcher.on_access(104, False, pc=pc) == []  # stride learned
        assert prefetcher.on_access(108, False, pc=pc) == [112, 116]
        assert prefetcher.on_access(112, False, pc=pc) == [116, 120]

    def test_stride_is_per_pc(self):
        prefetcher = StridePrefetcher(degree=1)
        for line in (100, 104, 108, 112):
            prefetcher.on_access(line, False, pc=1)
        # A different PC has no history and issues nothing.
        assert prefetcher.on_access(500, False, pc=2) == []

    def test_changing_stride_resets_confidence(self):
        prefetcher = StridePrefetcher(degree=1, threshold=2)
        for line in (100, 104, 108, 112):
            prefetcher.on_access(line, False, pc=1)
        assert prefetcher.on_access(130, False, pc=1) == []  # broken stride

    def test_zero_stride_ignored(self):
        prefetcher = StridePrefetcher(degree=1)
        prefetcher.on_access(100, False, pc=1)
        assert prefetcher.on_access(100, False, pc=1) == []

    def test_table_eviction(self):
        prefetcher = StridePrefetcher(table_size=2, degree=1)
        prefetcher.on_access(100, False, pc=1)
        prefetcher.on_access(200, False, pc=2)
        prefetcher.on_access(300, False, pc=3)  # evicts pc=1
        assert len(prefetcher._table) == 2
        assert 1 not in prefetcher._table

    def test_only_train_does_not_allocate(self):
        prefetcher = StridePrefetcher()
        prefetcher.on_access(100, False, pc=1, allocate=False)
        assert len(prefetcher._table) == 0


class TestCDC:
    def test_repeating_delta_pattern_replayed(self):
        prefetcher = CDCPrefetcher(degree=2)
        # Deltas: +2,+3,+2,+3 ... pattern (2,3) recurs.
        lines = [100, 102, 105, 107, 110]
        candidates = []
        for line in lines:
            candidates = prefetcher.on_access(line, False)
        # Last two deltas (3,2)? deltas are [2,3,2,3]; pair (2,3) found
        # earlier at index 1; replay deltas after it: [2,3] -> 112, 115.
        assert candidates == [112, 115]

    def test_zones_are_independent(self):
        prefetcher = CDCPrefetcher(degree=2, czone_lines_log2=4)
        prefetcher.on_access(0, False)
        prefetcher.on_access(2, False)
        # Far address in a different zone starts fresh history.
        assert prefetcher.on_access(1 << 20, False) == []

    def test_no_pattern_no_prefetch(self):
        prefetcher = CDCPrefetcher(degree=2)
        for line in (100, 107, 109, 130, 131):
            result = prefetcher.on_access(line, False)
        assert result == []

    def test_history_bounded(self):
        prefetcher = CDCPrefetcher(history=8)
        for line in range(100, 200, 3):
            prefetcher.on_access(line, False)
        zone = next(iter(prefetcher._table.values()))
        assert len(zone.deltas) <= 8


class TestMarkov:
    def test_successor_recorded_and_prefetched(self):
        prefetcher = MarkovPrefetcher(degree=1)
        prefetcher.on_access(100, False)
        prefetcher.on_access(200, False)  # records 100 -> 200
        # Revisiting 100 prefetches its recorded successor.
        assert prefetcher.on_access(100, False) == [200]

    def test_miss_sequence_correlation(self):
        prefetcher = MarkovPrefetcher(degree=2)
        sequence = [1, 2, 3, 1, 2, 3, 1]
        last_candidates = []
        for line in sequence:
            last_candidates = prefetcher.on_access(line, False)
        assert 2 in last_candidates

    def test_hits_do_not_train(self):
        prefetcher = MarkovPrefetcher()
        prefetcher.on_access(1, True)
        prefetcher.on_access(2, True)
        assert len(prefetcher._table) == 0

    def test_mru_successor_ordering(self):
        prefetcher = MarkovPrefetcher(successors=2, degree=2)
        for pair in ((1, 2), (1, 3), (1, 3)):
            prefetcher.on_access(pair[0], False)
            prefetcher.on_access(pair[1], False)
        candidates = prefetcher.on_access(1, False)
        assert candidates[0] == 3  # most recent successor first

    def test_successor_list_bounded(self):
        prefetcher = MarkovPrefetcher(successors=2)
        for successor in (10, 20, 30, 40):
            prefetcher.on_access(1, False)
            prefetcher.on_access(successor, False)
        assert len(prefetcher._table[1]) <= 2


class TestFactory:
    def test_make_each_kind(self):
        assert isinstance(
            make_prefetcher(PrefetcherConfig(kind="stream")), type(make_prefetcher(PrefetcherConfig()))
        )
        assert isinstance(make_prefetcher(PrefetcherConfig(kind="stride")), StridePrefetcher)
        assert isinstance(make_prefetcher(PrefetcherConfig(kind="cdc")), CDCPrefetcher)
        assert isinstance(make_prefetcher(PrefetcherConfig(kind="markov")), MarkovPrefetcher)
        assert isinstance(make_prefetcher(PrefetcherConfig(kind="none")), NullPrefetcher)

    def test_unknown_kind(self):
        import pytest

        with pytest.raises(ValueError):
            make_prefetcher(PrefetcherConfig(kind="psychic"))

    def test_null_prefetcher_returns_nothing(self):
        assert NullPrefetcher().on_access(1, False) == []
