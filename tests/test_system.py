"""Integration tests: full-system simulations on small workloads."""

import pytest

from repro.params import (
    CacheConfig,
    CoreConfig,
    DRAMConfig,
    PADCConfig,
    PrefetcherConfig,
    SystemConfig,
    baseline_config,
)
from repro.sim import System, simulate
from repro.workloads.profiles import BenchmarkProfile

STREAMY = BenchmarkProfile(
    name="streamy",
    pf_class=1,
    apki=20.0,
    stream_fraction=0.97,
    run_length=2048,
    num_streams=2,
    ws_lines=1 << 20,
)

JUNKY = BenchmarkProfile(
    name="junky",
    pf_class=2,
    apki=10.0,
    stream_fraction=0.6,
    run_length=6,
    num_streams=4,
    ws_lines=1 << 18,
)


def run(policy="demand-first", benchmarks=(STREAMY,), accesses=1500, **kwargs):
    config = baseline_config(len(benchmarks), policy=policy)
    return simulate(config, list(benchmarks), max_accesses_per_core=accesses, **kwargs)


class TestBasicExecution:
    def test_all_accesses_executed(self):
        result = run()
        assert result.cores[0].loads == 1500

    def test_ipc_positive_and_bounded(self):
        result = run()
        assert 0 < result.ipc() <= 4.0

    def test_determinism(self):
        first = run(seed=9)
        second = run(seed=9)
        assert first.ipc() == second.ipc()
        assert first.total_traffic == second.total_traffic

    def test_different_seeds_differ(self):
        assert run(seed=1).total_cycles != run(seed=2).total_cycles

    def test_max_cycles_bound(self):
        result = run(accesses=100_000, max_cycles=20_000)
        assert result.total_cycles <= 20_001

    def test_benchmark_count_must_match_cores(self):
        config = baseline_config(2, policy="padc")
        with pytest.raises(ValueError):
            simulate(config, ["swim"], max_accesses_per_core=10)


class TestPrefetchingEffects:
    def test_no_pref_issues_no_prefetches(self):
        result = run(policy="no-pref")
        core = result.cores[0]
        assert core.pf_sent == 0
        assert core.prefetch_fills == 0

    def test_stream_prefetcher_covers_streaming_app(self):
        result = run(policy="demand-first", accesses=3000)
        core = result.cores[0]
        assert core.pf_sent > 0
        assert core.accuracy > 0.7
        assert core.coverage > 0.4

    def test_prefetching_helps_streaming_app(self):
        without = run(policy="no-pref", accesses=3000)
        with_pf = run(policy="demand-first", accesses=3000)
        assert with_pf.ipc() > without.ipc()

    def test_junky_app_has_low_accuracy(self):
        result = run(policy="demand-first", benchmarks=(JUNKY,), accesses=3000)
        assert result.cores[0].accuracy < 0.4

    def test_useless_prefetches_show_in_traffic(self):
        result = run(policy="demand-first", benchmarks=(JUNKY,), accesses=3000)
        assert result.cores[0].useless_prefetch_traffic > 0


class TestConservationInvariants:
    @pytest.mark.parametrize("policy", ["demand-first", "demand-prefetch-equal", "aps", "padc"])
    def test_traffic_equals_channel_transfers(self, policy):
        """Every counted fill crossed the bus; at most the last few fills
        may still be in flight when the simulation stops."""
        result = run(policy=policy, benchmarks=(STREAMY, JUNKY), accesses=1200)
        in_flight = result.bus_traffic_lines - result.total_traffic
        assert 0 <= in_flight <= 64

    def test_prefetch_fills_bounded_by_sent(self):
        result = run(policy="padc", benchmarks=(JUNKY,), accesses=2500)
        core = result.cores[0]
        assert core.prefetch_fills + core.promoted_fills + core.pf_dropped <= core.pf_sent

    def test_used_bounded_by_sent(self):
        result = run(policy="padc", benchmarks=(STREAMY,), accesses=2500)
        core = result.cores[0]
        assert core.pf_used <= core.pf_sent

    def test_hits_plus_misses_equals_loads(self):
        result = run(accesses=2000)
        core = result.cores[0]
        assert core.l2_hits + core.l2_misses == core.loads


class TestAPDDropping:
    def test_padc_drops_junk(self):
        result = run(policy="padc", benchmarks=(JUNKY,), accesses=4000)
        assert result.dropped_prefetches > 0
        assert result.cores[0].pf_dropped == result.dropped_prefetches

    def test_aps_never_drops(self):
        result = run(policy="aps", benchmarks=(JUNKY,), accesses=4000)
        assert result.dropped_prefetches == 0

    def test_dropped_lines_can_miss_later(self):
        """After a drop the MSHR entry is gone — a demand re-misses cleanly."""
        result = run(policy="padc", benchmarks=(JUNKY,), accesses=4000)
        core = result.cores[0]
        assert core.l2_misses > 0  # simulation completes without MSHR leaks


class TestMultiCore:
    def test_two_core_run(self):
        result = run(policy="padc", benchmarks=(STREAMY, JUNKY), accesses=1200)
        assert result.num_cores == 2
        assert all(core.loads == 1200 for core in result.cores)

    def test_cores_have_disjoint_addresses(self):
        system = System(
            baseline_config(2, policy="padc"), [STREAMY, STREAMY], seed=0
        )
        first = system.cores[0].next_entry()
        second = system.cores[1].next_entry()
        assert first.line_addr >> 54 != second.line_addr >> 54

    def test_contention_slows_cores_down(self):
        alone = run(policy="demand-first", benchmarks=(STREAMY,), accesses=1500)
        together = run(
            policy="demand-first",
            benchmarks=(STREAMY, STREAMY, STREAMY, STREAMY),
            accesses=1500,
        )
        assert max(together.ipcs()) < alone.ipc() * 1.05

    def test_accuracy_tracked_per_core(self):
        result = run(policy="padc", benchmarks=(STREAMY, JUNKY), accesses=3000)
        assert result.cores[0].accuracy > result.cores[1].accuracy


class TestSharedCache:
    def test_shared_cache_run(self):
        config = baseline_config(2, policy="padc", shared_cache=True)
        result = simulate(config, [STREAMY, JUNKY], max_accesses_per_core=1200)
        assert all(core.loads == 1200 for core in result.cores)

    def test_shared_cache_pollution_crosses_cores(self):
        private = simulate(
            baseline_config(2, policy="demand-prefetch-equal"),
            [STREAMY, JUNKY],
            max_accesses_per_core=2000,
        )
        shared = simulate(
            baseline_config(2, policy="demand-prefetch-equal", shared_cache=True),
            [STREAMY, JUNKY],
            max_accesses_per_core=2000,
        )
        # Both run to completion; the shared config exists and is exercised.
        assert shared.total_traffic > 0 and private.total_traffic > 0


class TestDualChannel:
    def test_dual_channel_run_and_speedup(self):
        single = run(policy="demand-first", benchmarks=(STREAMY, STREAMY), accesses=1500)
        config = baseline_config(2, policy="demand-first", num_channels=2)
        dual = simulate(config, [STREAMY, STREAMY], max_accesses_per_core=1500)
        assert sum(dual.ipcs()) > sum(single.ipcs())


class TestClosedRow:
    def test_closed_row_run(self):
        config = baseline_config(1, policy="padc", open_row=False)
        result = simulate(config, [STREAMY], max_accesses_per_core=1500)
        assert result.cores[0].loads == 1500


class TestRunahead:
    def test_runahead_issues_requests(self):
        config = baseline_config(1, policy="demand-first", runahead=True)
        system = System(config, [STREAMY], seed=0)
        system.run(2000)
        assert system.cores[0].runahead_issued > 0

    def test_runahead_improves_performance(self):
        base = run(policy="no-pref", accesses=2500)
        config = baseline_config(1, policy="no-pref", runahead=True)
        ahead = simulate(config, [STREAMY], max_accesses_per_core=2500)
        assert ahead.ipc() > base.ipc()


class TestFilters:
    def test_ddpf_filter_runs(self):
        config = baseline_config(1, policy="demand-first", filter_kind="ddpf")
        result = simulate(config, [JUNKY], max_accesses_per_core=3000)
        assert result.cores[0].loads == 3000

    def test_fdp_throttles_junky_app(self):
        plain = simulate(
            baseline_config(1, policy="demand-first"),
            [JUNKY],
            max_accesses_per_core=4000,
        )
        throttled = simulate(
            baseline_config(1, policy="demand-first", filter_kind="fdp"),
            [JUNKY],
            max_accesses_per_core=4000,
        )
        assert throttled.cores[0].pf_sent < plain.cores[0].pf_sent


class TestMSHRFullRetryAccounting:
    """The stall → retry path must count each architectural event once.

    Regression: the FDP miss counter and pollution-filter probe sat
    outside the ``retry`` guard, so an access that stalled on a full MSHR
    file and came back was counted as *two* demand misses (and probed the
    consuming pollution filter twice), skewing the FDP throttle.
    """

    def make_system(self):
        config = SystemConfig(
            num_cores=1,
            core=CoreConfig(rob_size=64, retire_width=4),
            # Two MSHRs: the third concurrent demand miss must stall.
            cache=CacheConfig(
                size_bytes=32 * 1024, associativity=4, mshr_entries=2
            ),
            dram=DRAMConfig(request_buffer_size=16),
            prefetcher=PrefetcherConfig(filter_kind="fdp"),
            # The interval never elapses, so FDP's counters never reset and
            # can be compared against the whole-run architectural counts.
            padc=PADCConfig(accuracy_interval=10**9),
            policy="demand-first",
        )
        return System(config, [STREAMY], check=True)

    def test_stall_retry_counts_once(self):
        system = self.make_system()
        trains = []
        prefetcher = system._prefetchers[0]
        original = prefetcher.on_access

        def spy(line, was_hit, **kwargs):
            trains.append(line)
            return original(line, was_hit, **kwargs)

        prefetcher.on_access = spy
        result = system.run(2_000)
        core = system.cores[0]
        assert core.mshr_stalls > 0  # the path under test was exercised
        assert core.loads == core.accesses_done == 2_000
        assert core.l2_hits + core.l2_misses == core.loads
        # One architectural miss == one FDP feedback miss, stalls included.
        assert system._fdp[0].demand_misses == core.l2_misses
        # The prefetcher trains exactly once per access: the stalled attempt
        # returns before training, the successful retry trains.
        assert len(trains) == core.loads
        assert result.cores[0].mshr_stalls == core.mshr_stalls

    def test_stall_time_accounted_within_cycles(self):
        system = self.make_system()
        result = system.run(1_500)
        core = result.cores[0]
        assert core.mshr_stalls > 0
        assert 0 < core.stall_cycles <= core.cycles


class TestAccuracyHistory:
    def test_history_collected(self):
        result = run(accesses=4000)
        assert result.accuracy_history is not None
        assert len(result.accuracy_history) == 1


class TestServiceTimeCollection:
    def test_collects_when_enabled(self):
        result = run(
            policy="demand-first",
            benchmarks=(JUNKY,),
            accesses=3000,
            collect_service_times=True,
        )
        core = result.cores[0]
        assert core.useful_service_times or core.useless_service_times

    def test_disabled_by_default(self):
        result = run(policy="demand-first", benchmarks=(JUNKY,), accesses=1500)
        core = result.cores[0]
        assert not core.useful_service_times and not core.useless_service_times
