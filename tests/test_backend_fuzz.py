"""Tests for the differential backend fuzzer (DESIGN.md §11).

The CI ``equivalence-fuzz`` job runs the full 200-case sweep via
``python -m repro.fuzz``; the tier-1 suite keeps a smaller pinned-seed
sweep so every test run still exercises the three-backend differential,
plus unit tests for case generation and the shrinker.
"""

import dataclasses

import pytest

from repro.fuzz import (
    ACCESS_POOL,
    POLICY_POOL,
    FuzzCase,
    build_config,
    random_case,
    run_case,
    run_fuzz,
    shrink,
)
from repro.fuzz.__main__ import main as fuzz_main
from repro.params import BACKENDS, POLICY_TABLE


class TestCaseGeneration:
    def test_deterministic(self):
        assert random_case(5) == random_case(5)
        assert random_case(5) != random_case(6)

    def test_policy_pool_covers_registry(self):
        assert set(POLICY_POOL) == set(POLICY_TABLE)

    @pytest.mark.parametrize("seed", range(40))
    def test_cases_construct_valid_configs(self, seed):
        # BenchmarkProfile.__post_init__ and baseline_config validate on
        # construction; a draw outside the documented bounds raises here.
        case = random_case(seed)
        assert len(case.profiles) == case.num_cores
        assert case.accesses_per_core in ACCESS_POOL
        config = build_config(case)
        assert config.num_cores == case.num_cores
        assert config.dram.refresh_enabled == case.refresh_enabled

    def test_profiles_vary_across_seeds(self):
        cases = [random_case(seed) for seed in range(30)]
        assert len({case.policy for case in cases}) > 3
        assert len({case.profiles[0].stream_fraction for case in cases}) > 10


class TestDifferential:
    def test_pinned_sweep_byte_identical(self):
        # A small pinned-seed slice of the CI sweep; failures print the
        # shrunk repro via the report structure.
        report = run_fuzz(15, start_seed=0, shrink_failures=True)
        assert report["backends"] == list(BACKENDS)
        assert report["failures"] == [], report["failures"]

    def test_run_case_returns_divergent_backends(self):
        assert run_case(random_case(3)) == []


class TestShrinker:
    def test_shrink_preserves_failure_predicate(self):
        # Synthetic divergence: only refresh-enabled cases with >=100
        # accesses "fail".  The shrinker must keep both properties while
        # minimizing everything else.
        case = dataclasses.replace(
            random_case(7), refresh_enabled=True, accesses_per_core=600
        )

        def fails(candidate: FuzzCase) -> bool:
            return candidate.refresh_enabled and candidate.accesses_per_core >= 100

        shrunk = shrink(case, fails=fails)
        assert shrunk.refresh_enabled
        assert 100 <= shrunk.accesses_per_core < 200
        assert shrunk.num_cores == 1
        assert shrunk.policy == "fcfs"
        assert shrunk.prefetcher_kind == "none"

    def test_shrink_noop_when_nothing_fails(self):
        case = random_case(9)
        assert shrink(case, fails=lambda candidate: False) == case


class TestCLI:
    def test_single_case_mode(self, capsys):
        assert fuzz_main(["--case", "11"]) == 0
        out = capsys.readouterr().out
        assert "case_seed=11" in out
        assert "byte-identical" in out

    def test_sweep_mode_exit_zero(self, capsys):
        assert fuzz_main(["--cases", "5", "--start-seed", "100"]) == 0
        assert "all byte-identical" in capsys.readouterr().out
