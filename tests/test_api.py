"""The public repro.api facade and its contracts."""

import pytest

import repro
from repro import api
from repro.campaign import CampaignSpec, PolicyVariant, SpecError, Workload
from repro.params import PolicyError, baseline_config, resolve_policy
from repro.runtime import Runtime, SimJob
from repro.sim.system import System
from repro.sim.system import simulate as sim_simulate
from tests.conftest import tiny_system_config


def test_api_is_reexported_from_package_root():
    assert repro.api is api
    assert repro.simulate is api.simulate


def test_simulate_knobs_are_keyword_only():
    config = tiny_system_config()
    with pytest.raises(TypeError):
        api.simulate(config, ["swim"], 500, 1)  # positional seed
    with pytest.raises(TypeError):
        sim_simulate(config, ["swim"], 500, 1)


def test_api_simulate_matches_direct_simulate():
    config = tiny_system_config(num_cores=2)
    via_api = api.simulate(config, ["swim", "art"], 1_000, seed=7)
    direct = sim_simulate(config, ["swim", "art"], 1_000, seed=7)
    assert via_api == direct


def test_system_run_refuses_double_invocation():
    system = System(tiny_system_config(), ["swim"])
    system.run(300)
    with pytest.raises(RuntimeError, match="repro.api.simulate"):
        system.run(300)


def test_submit_serves_second_call_from_cache(tmp_path):
    runtime = Runtime(cache_dir=tmp_path)
    config = tiny_system_config()
    first = api.submit(config, ["swim"], 600, runtime=runtime)
    # A fresh runtime over the same directory must hit the disk cache.
    second = api.submit(config, ["swim"], 600, runtime=Runtime(cache_dir=tmp_path))
    assert first == second
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_submit_prunes_default_knobs_from_cache_key():
    config = tiny_system_config()
    spelled = api._make_job(
        config, ["swim"], 600, 0, telemetry=None, max_cycles=None,
        collect_service_times=False,
    )
    bare = api._make_job(config, ["swim"], 600, 0)
    assert spelled.key() == bare.key()
    # check=False is NOT pruned: it overrides $REPRO_CHECK=1.
    assert api._make_job(config, ["swim"], 600, 0, check=False).key() != bare.key()
    # A collector instance degrades to the plain flag.
    from repro.telemetry import TelemetryCollector

    flagged = api._make_job(config, ["swim"], 600, 0, telemetry=True)
    instanced = api._make_job(
        config, ["swim"], 600, 0, telemetry=TelemetryCollector()
    )
    assert flagged.key() == instanced.key()


def test_submit_many_accepts_pairs_and_jobs():
    config = tiny_system_config()
    job = SimJob.make(config, ["art"], 500, seed=5)
    results = api.submit_many([(config, ["swim"]), job], 500)
    assert len(results) == 2
    assert results[1] == api.simulate(config, ["art"], 500, seed=5)


def test_api_campaign_runs_a_spec_dict(tmp_path):
    spec = {
        "name": "api-campaign",
        "workloads": [{"benchmarks": ["swim"], "seed": 0}],
        "policies": [{"label": "padc", "policy": "padc"}],
        "accesses": 400,
        "include_alone": False,
    }
    run = api.campaign(spec, directory=tmp_path / "campaign")
    assert run.campaign.spec.name == "api-campaign"
    result = run.grid(0, "padc")
    assert result.total_cycles > 0


def test_api_campaign_rejects_unknown_preset():
    with pytest.raises(KeyError, match="unknown campaign preset"):
        api.campaign("no-such-preset")


# -- the shared policy table (with_policy / campaign parity) -------------------


def test_with_policy_resolves_table_aliases():
    base = baseline_config(2, policy="demand-first")
    ranked = base.with_policy("padc-rank")
    assert ranked.policy == "padc"
    assert ranked.padc.use_ranking is True
    plain = base.with_policy("padc")
    assert plain.padc.use_ranking is False


def test_unknown_policy_same_error_everywhere():
    with pytest.raises(PolicyError) as direct:
        resolve_policy("pdac")
    with pytest.raises(PolicyError) as via_config:
        baseline_config(1).with_policy("pdac")
    assert str(direct.value) == str(via_config.value)
    assert "did you mean" in str(direct.value)

    with pytest.raises(SpecError) as via_spec:
        CampaignSpec(
            name="bad",
            workloads=(Workload(benchmarks=("swim",)),),
            policies=(PolicyVariant(label="p", policy="padc"),),
            accesses=100,
            alone_policy="pdac",
        )
    assert str(direct.value) in str(via_spec.value)
