"""Tests for the DRAM address mapping, including permutation interleaving."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import AddressMapping
from repro.params import DRAMConfig


def make_mapping(channels=1, banks=8, permutation=False):
    return AddressMapping(
        DRAMConfig(
            num_channels=channels,
            banks_per_channel=banks,
            permutation_interleaving=permutation,
        )
    )


class TestBasicMapping:
    def test_consecutive_lines_share_a_row(self):
        mapping = make_mapping()
        first = mapping.decode(0)
        second = mapping.decode(1)
        assert first.row == second.row
        assert first.bank == second.bank
        assert second.column == first.column + 1

    def test_row_crossing_changes_bank(self):
        """Consecutive rows interleave across banks (open-row friendly)."""
        mapping = make_mapping()
        last_of_row = mapping.decode(63)
        first_of_next = mapping.decode(64)
        assert first_of_next.column == 0
        assert first_of_next.bank == (last_of_row.bank + 1) % 8

    def test_row_index_increments_after_all_banks(self):
        mapping = make_mapping()
        assert mapping.decode(0).row == 0
        assert mapping.decode(64 * 8).row == 1

    def test_channel_interleaving(self):
        mapping = make_mapping(channels=2)
        assert mapping.decode(0).channel == 0
        assert mapping.decode(64).channel == 1
        assert mapping.decode(128).channel == 0

    def test_non_power_of_two_banks_rejected(self):
        with pytest.raises(ValueError):
            make_mapping(banks=6)

    def test_lines_per_row_exposed(self):
        assert make_mapping().lines_per_row == 64


class TestPermutation:
    def test_permutation_changes_bank_by_row_xor(self):
        plain = make_mapping(permutation=False)
        permuted = make_mapping(permutation=True)
        line = 64 * 8 * 3  # row 3, bank 0, column 0
        assert plain.decode(line).bank == 0
        assert permuted.decode(line).bank == 3 ^ 0

    def test_permutation_preserves_row_and_column(self):
        plain = make_mapping(permutation=False)
        permuted = make_mapping(permutation=True)
        for line in (0, 17, 64 * 5 + 3, 64 * 8 * 11 + 40):
            a, b = plain.decode(line), permuted.decode(line)
            assert a.row == b.row
            assert a.column == b.column
            assert a.channel == b.channel

    @given(st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=200, deadline=None)
    def test_permutation_is_a_bank_bijection_per_row(self, base_line):
        """Within one row's bank group, permutation must not collide."""
        permuted = make_mapping(permutation=True)
        row_base = (base_line // (64 * 8)) * (64 * 8)
        banks = {
            permuted.decode(row_base + bank * 64).bank for bank in range(8)
        }
        assert len(banks) == 8


class TestMappingProperties:
    @given(st.integers(min_value=0, max_value=2**48))
    @settings(max_examples=300, deadline=None)
    def test_decode_is_deterministic_and_in_range(self, line):
        mapping = make_mapping(channels=2)
        decoded = mapping.decode(line)
        assert decoded == mapping.decode(line)
        assert 0 <= decoded.channel < 2
        assert 0 <= decoded.bank < 8
        assert 0 <= decoded.column < 64
        assert decoded.row >= 0

    @given(st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=200, deadline=None)
    def test_decode_is_injective_over_coordinates(self, line):
        """Two distinct lines never map to identical coordinates."""
        mapping = make_mapping()
        a = mapping.decode(line)
        b = mapping.decode(line + 1)
        assert (a.channel, a.bank, a.row, a.column) != (
            b.channel,
            b.bank,
            b.row,
            b.column,
        )
