"""Tests for per-core prefetch accuracy measurement (PSC/PUC/PAR)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.accuracy import PrefetchAccuracyTracker


def make_tracker(num_cores=2, **kwargs):
    return PrefetchAccuracyTracker(num_cores=num_cores, **kwargs)


class TestCounters:
    def test_initial_state_is_optimistic(self):
        tracker = make_tracker()
        assert tracker.par == [1.0, 1.0]
        assert tracker.prefetch_critical == [True, True]

    def test_par_updates_at_interval(self):
        tracker = make_tracker()
        for _ in range(10):
            tracker.record_sent(0)
        for _ in range(3):
            tracker.record_used(0)
        tracker.end_interval()
        assert tracker.par[0] == 0.3
        assert tracker.psc[0] == 0
        assert tracker.puc[0] == 0

    def test_par_retained_when_no_prefetches(self):
        tracker = make_tracker()
        tracker.record_sent(0)
        tracker.record_used(0)
        tracker.end_interval()
        assert tracker.par[0] == 1.0
        tracker.end_interval()  # no samples this interval
        assert tracker.par[0] == 1.0

    def test_cores_are_independent(self):
        tracker = make_tracker()
        tracker.record_sent(0)
        tracker.record_sent(1)
        tracker.record_used(1)
        tracker.end_interval()
        assert tracker.par[0] == 0.0
        assert tracker.par[1] == 1.0

    def test_history_records_every_interval(self):
        tracker = make_tracker()
        tracker.record_sent(0)
        tracker.end_interval()
        tracker.record_sent(0)
        tracker.record_used(0)
        tracker.end_interval()
        assert tracker.history[0] == [0.0, 1.0]


class TestDerivedFlags:
    def test_criticality_threshold(self):
        tracker = make_tracker(promotion_threshold=0.85)
        for _ in range(100):
            tracker.record_sent(0)
        for _ in range(86):
            tracker.record_used(0)
        tracker.end_interval()
        assert tracker.prefetch_critical[0]
        assert tracker.is_critical(0, is_prefetch=True)

    def test_below_threshold_not_critical(self):
        tracker = make_tracker(promotion_threshold=0.85)
        for _ in range(100):
            tracker.record_sent(0)
        for _ in range(84):
            tracker.record_used(0)
        tracker.end_interval()
        assert not tracker.prefetch_critical[0]
        assert not tracker.is_critical(0, is_prefetch=True)

    def test_demands_always_critical(self):
        tracker = make_tracker()
        tracker.record_sent(0)
        tracker.end_interval()
        assert tracker.is_critical(0, is_prefetch=False)

    def test_urgency_is_demand_of_inaccurate_core(self):
        tracker = make_tracker()
        tracker.record_sent(0)
        tracker.end_interval()  # core 0 accuracy -> 0
        assert tracker.is_urgent(0, is_prefetch=False)
        assert not tracker.is_urgent(0, is_prefetch=True)
        assert not tracker.is_urgent(1, is_prefetch=False)


class TestDropThresholds:
    def test_table6_bands(self):
        tracker = make_tracker()
        cases = [(0.05, 100), (0.2, 1_500), (0.5, 50_000), (0.9, 100_000)]
        for accuracy, expected in cases:
            assert tracker._lookup_drop_threshold(accuracy) == expected

    def test_threshold_updates_with_par(self):
        tracker = make_tracker()
        for _ in range(100):
            tracker.record_sent(0)
        for _ in range(5):
            tracker.record_used(0)
        tracker.end_interval()
        assert tracker.drop_threshold[0] == 100

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_threshold_monotone_in_accuracy(self, accuracy):
        tracker = make_tracker()
        lower = tracker._lookup_drop_threshold(accuracy * 0.5)
        upper = tracker._lookup_drop_threshold(accuracy)
        assert lower <= upper

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)), max_size=20
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_par_always_in_unit_interval(self, events):
        tracker = make_tracker(num_cores=1)
        for sent, used in events:
            for _ in range(sent):
                tracker.record_sent(0)
            for _ in range(min(used, sent)):
                tracker.record_used(0)
            tracker.end_interval()
            assert 0.0 <= tracker.par[0] <= 1.0
