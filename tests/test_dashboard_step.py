"""Tests for server-side series downsampling (?step=N, DESIGN.md §15)."""

import pytest

from repro.dashboard.aggregate import series


def _record(cycle, num_cores=2):
    return {
        "type": "interval",
        "cycle": cycle,
        "core": {
            "par": [0.5] * num_cores,
            "pf_sent": [10] * num_cores,
            "pf_dropped": [1] * num_cores,
            "fdp_level": [3] * num_cores,
        },
        "system": {
            "buffer_occupancy_mean": 4.0,
            "buffer_occupancy_max": 9,
        },
    }


class _Job:
    def __init__(self, key):
        self.key = key
        self.benchmarks = ["swim_00"]
        self.policy = "padc"
        self.variant = "base"
        self.seed = 7


class _Store:
    """Minimal ledger double: the samples table the aggregates fold over."""

    def __init__(self, rows):
        self._rows = rows

    def samples_since(self, after):
        return self._rows[after:], len(self._rows)


class _Campaign:
    def __init__(self, jobs, rows):
        self._jobs = jobs
        self.ledger = _Store(rows)

    def unique_jobs(self):
        return self._jobs


def _campaign(intervals=10, num_cores=2):
    records = [{"type": "header", "num_cores": num_cores, "interval_cycles": 1000}]
    records.extend(_record((i + 1) * 1000, num_cores) for i in range(intervals))
    rows = [{"key": "job-a", "record": record} for record in records]
    return _Campaign([_Job("job-a")], rows)


class TestSeriesStep:
    def test_default_step_keeps_every_interval(self):
        payload = series(_campaign(intervals=10))
        assert payload["step"] == 1
        (job,) = payload["jobs"]
        assert job["cycles"] == [(i + 1) * 1000 for i in range(10)]

    def test_stride_sampling_keeps_every_nth_from_the_first(self):
        payload = series(_campaign(intervals=10), step=3)
        assert payload["step"] == 3
        (job,) = payload["jobs"]
        # Records 0, 3, 6, 9 — anchored at the first interval so the
        # series start is stable as new samples land.
        assert job["cycles"] == [1000, 4000, 7000, 10000]
        # Every per-core series is downsampled in lockstep.
        assert all(len(core_series) == 4 for core_series in job["par"])
        assert all(len(core_series) == 4 for core_series in job["drop_rate"])
        assert all(len(core_series) == 4 for core_series in job["fdp_level"])
        assert len(job["buffer_mean"]) == len(job["buffer_max"]) == 4

    def test_step_larger_than_series_keeps_the_first(self):
        payload = series(_campaign(intervals=5), step=100)
        (job,) = payload["jobs"]
        assert job["cycles"] == [1000]

    def test_step_must_be_positive(self):
        with pytest.raises(ValueError, match="step"):
            series(_campaign(), step=0)
        with pytest.raises(ValueError, match="step"):
            series(_campaign(), step=-3)

    def test_downsampled_values_match_the_full_series(self):
        full = series(_campaign(intervals=12))["jobs"][0]
        sampled = series(_campaign(intervals=12), step=4)["jobs"][0]
        assert sampled["cycles"] == full["cycles"][::4]
        assert sampled["par"][0] == full["par"][0][::4]
        assert sampled["buffer_max"] == full["buffer_max"][::4]
