"""Trace measurement and BenchmarkProfile derivation."""

from pathlib import Path

import pytest

from repro import api
from repro.core.trace import TraceEntry
from repro.params import baseline_config
from repro.trace.format import write_trace
from repro.trace.profile import measure_trace, profile_from_trace
from repro.workloads import make_trace
from repro.workloads.profiles import BenchmarkProfile


def _streaming_entries(count, run=100, gap=40):
    """Pure sequential streams with a jump every ``run`` accesses."""
    line = 1 << 20
    for i in range(count):
        if i and i % run == 0:
            line += 1 << 12  # new stream, far away
        else:
            line += 1
        yield TraceEntry(gap, line, 0x400, False)


def _random_entries(count, seed=0):
    import random

    rng = random.Random(seed)
    for _ in range(count):
        yield TraceEntry(
            rng.randrange(10, 60),
            rng.randrange(1 << 30),
            0x400,
            rng.random() < 0.3,
        )


def test_measure_streaming_trace(tmp_path):
    path = tmp_path / "s.rtr"
    write_trace(path, _streaming_entries(5000, run=100, gap=40))
    stats = measure_trace(path)
    assert stats.entries == 5000
    assert stats.apki == pytest.approx(1000 / 40, rel=0.01)
    assert stats.stream_fraction > 0.9
    assert stats.run_length > 50
    assert stats.write_fraction == 0.0
    assert not stats.ws_capped


def test_measure_random_trace(tmp_path):
    path = tmp_path / "r.rtr"
    write_trace(path, _random_entries(3000))
    stats = measure_trace(path)
    assert stats.stream_fraction < 0.05
    assert 0.2 < stats.write_fraction < 0.4
    assert stats.ws_lines > 2900  # essentially no reuse at this density


def test_measure_window(tmp_path):
    path = tmp_path / "s.rtr"
    write_trace(path, _streaming_entries(1000))
    assert measure_trace(path, start=100, limit=50).entries == 50


def test_ws_cap(tmp_path):
    path = tmp_path / "r.rtr"
    write_trace(path, _random_entries(2000, seed=3))
    stats = measure_trace(path, ws_cap=500)
    assert stats.ws_capped
    assert stats.ws_lines == 500


def test_profile_from_trace_is_usable(tmp_path):
    path = tmp_path / "s.rtr"
    write_trace(path, _streaming_entries(4000))
    profile = profile_from_trace(path, name="captured")
    assert isinstance(profile, BenchmarkProfile)
    assert profile.name == "captured"
    assert profile.apki > 0
    assert profile.run_length >= 2
    # The derived profile feeds the normal synthetic flow end to end.
    result = api.simulate(
        baseline_config(1, policy="demand-first"), [profile], 500
    )
    assert result.cores[0].loads == 500
    assert result.cores[0].benchmark == "captured"


def test_profile_roundtrip_recovers_character(tmp_path):
    """Synthetic swim -> trace -> measured profile stays swim-like."""
    source = Path(tmp_path) / "swim.rtr"
    write_trace(source, make_trace("swim", seed=0), limit=20000)
    from repro.workloads.profiles import get_profile

    reference = get_profile("swim")
    derived = profile_from_trace(source)
    assert derived.apki == pytest.approx(reference.apki, rel=0.25)
    assert derived.stream_fraction == pytest.approx(
        reference.stream_fraction, abs=0.15
    )
    assert derived.name == "trace_swim"
