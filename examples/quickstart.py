#!/usr/bin/env python
"""Quickstart: simulate one benchmark under every scheduling policy.

Runs the synthetic libquantum workload (a prefetch-friendly streaming
benchmark) on the paper's single-core baseline and prints how each DRAM
scheduling policy treats it.  Expected outcome, mirroring the paper's
Figure 1/6: prefetching helps a lot, demand-prefetch-equal beats
demand-first, and PADC matches the best of them.

Usage: python examples/quickstart.py [benchmark] [accesses]
"""

import sys

from repro import ALL_POLICIES, api, baseline_config


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "libquantum"
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 8_000

    print(f"benchmark: {benchmark}, {accesses} L2 accesses per run\n")
    print(
        f"{'policy':<24}{'IPC':>7}{'norm':>7}{'ACC':>7}{'COV':>7}"
        f"{'traffic':>9}{'dropped':>9}"
    )
    baseline_ipc = None
    last_padc = None
    for policy in ALL_POLICIES:
        config = baseline_config(num_cores=1, policy=policy)
        result = api.simulate(
            config, [benchmark], accesses, telemetry=(policy == "padc")
        )
        if policy == "padc":
            last_padc = result
        core = result.cores[0]
        if baseline_ipc is None and policy == "demand-first":
            baseline_ipc = core.ipc
        if policy == "no-pref":
            baseline = core.ipc  # show normalization against no-pref
        print(
            f"{policy:<24}{core.ipc:>7.3f}{core.ipc / baseline:>7.2f}"
            f"{core.accuracy:>7.2f}{core.coverage:>7.2f}"
            f"{result.total_traffic:>9}{result.dropped_prefetches:>9}"
        )
    if last_padc is not None and last_padc.trace is not None:
        from repro.telemetry import phase_summary

        print("\nPADC phase summary (api.simulate(..., telemetry=True)):")
        for line in phase_summary(last_padc.trace):
            print(f"  * {line}")
    print(
        "\nnorm = IPC relative to no prefetching."
        "\nTry a prefetch-unfriendly benchmark next:"
        " python examples/quickstart.py milc"
    )


if __name__ == "__main__":
    main()
