#!/usr/bin/env python
"""Compare the four prefetcher types under demand-first vs PADC.

Mirrors the paper's §6.11: the stream, PC-stride and C/DC prefetchers all
capture the synthetic SPEC-like access patterns; the Markov prefetcher
(temporal correlation) fares worst on them.  PADC helps all of them by
prioritizing their useful prefetches and dropping the useless ones.

Usage: python examples/prefetcher_zoo.py [benchmark]
"""

import sys

from repro import api, baseline_config

PREFETCHERS = ["stream", "stride", "cdc", "markov"]
ACCESSES = 6_000


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "leslie3d"
    print(f"benchmark: {benchmark}\n")

    no_pref = api.simulate(
        baseline_config(1, policy="no-pref"),
        [benchmark],
        ACCESSES,
    )
    print(f"no prefetching: IPC = {no_pref.ipc():.3f}\n")
    print(
        f"{'prefetcher':<10}{'policy':<16}{'IPC':>7}{'vs nopref':>10}"
        f"{'ACC':>7}{'COV':>7}{'traffic':>9}{'drops':>7}"
    )
    for prefetcher in PREFETCHERS:
        for policy in ("demand-first", "padc"):
            config = baseline_config(
                1, policy=policy, prefetcher_kind=prefetcher
            )
            result = api.simulate(config, [benchmark], ACCESSES)
            core = result.cores[0]
            print(
                f"{prefetcher:<10}{policy:<16}{core.ipc:>7.3f}"
                f"{core.ipc / no_pref.ipc():>10.2f}"
                f"{core.accuracy:>7.2f}{core.coverage:>7.2f}"
                f"{result.total_traffic:>9}{result.dropped_prefetches:>7}"
            )
    print(
        "\nThe Markov prefetcher's coverage is lowest on streaming-style\n"
        "workloads — matching the paper's §6.11 observation."
    )


if __name__ == "__main__":
    main()
