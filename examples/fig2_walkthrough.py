#!/usr/bin/env python
"""Walk through the paper's Figure 2 example, step by step.

Three outstanding requests to one DRAM bank (row A open):

    X: prefetch, row A      Y: demand, row B      Z: prefetch, row A

Row-hit = 100 cycles, row-conflict = 300 cycles, 25 cycles of computation
between dependent loads.  The script prints the DRAM service timeline and
processor finish time for both rigid policies, in both the useful- and
useless-prefetch scenarios — reproducing the paper's 725/575/325/525
cycle totals exactly.
"""

from repro.experiments.fig02 import (
    COMPUTE,
    REQUESTS,
    execution_time,
    service_order,
    service_timeline,
)


def describe(policy: str) -> None:
    order = service_order(policy)
    timeline = service_timeline(order)
    print(f"  {policy}:")
    print(f"    service order : {' -> '.join(r.name for r in order)}")
    for name, completion in timeline:
        print(f"      {name} completes at cycle {completion}")
    useful = execution_time(policy, prefetches_useful=True)
    useless = execution_time(policy, prefetches_useful=False)
    print(f"    finish time if prefetches useful : {useful} cycles")
    print(f"    finish time if prefetches useless: {useless} cycles")


def main() -> None:
    print("Requests in the memory request buffer (row A open):")
    for request in REQUESTS:
        kind = "prefetch" if request.is_prefetch else "demand  "
        print(f"  {request.name}: {kind} row {request.row}")
    print(f"Computation between dependent loads: {COMPUTE} cycles\n")
    for policy in ("demand-first", "demand-prefetch-equal"):
        describe(policy)
        print()
    print(
        "Neither rigid policy wins both scenarios — which is exactly why\n"
        "PADC adapts the prioritization to the measured prefetch accuracy."
    )


if __name__ == "__main__":
    main()
