#!/usr/bin/env python
"""Explore PADC's knobs on a custom workload you define inline.

Builds a synthetic benchmark profile from command-line knobs (memory
intensity, sequential-run length) and shows how the scheduling policy,
the promotion threshold and the APD drop thresholds change the outcome.
Run lengths shorter than the 64-line prefetch distance make the stream
prefetcher useless — watch PADC's dropper wake up as you shorten them.

Usage: python examples/policy_explorer.py [apki] [run_length]
"""

import sys
from dataclasses import replace

from repro import api, baseline_config
from repro.workloads import BenchmarkProfile

ACCESSES = 6_000


def build_profile(apki: float, run_length: int) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=f"custom-apki{apki:g}-run{run_length}",
        pf_class=1 if run_length > 64 else 2,
        apki=apki,
        stream_fraction=0.9,
        run_length=run_length,
        num_streams=4,
        ws_lines=1 << 20,
    )


def run(profile, policy, promotion_threshold=0.85, drop_scale=1.0):
    config = baseline_config(1, policy=policy)
    thresholds = tuple(
        (bound, max(1, int(cycles * drop_scale)))
        for bound, cycles in config.padc.drop_thresholds
    )
    config = replace(
        config,
        padc=replace(
            config.padc,
            promotion_threshold=promotion_threshold,
            drop_thresholds=thresholds,
        ),
    )
    return api.simulate(config, [profile], ACCESSES)


def main() -> None:
    apki = float(sys.argv[1]) if len(sys.argv) > 1 else 20.0
    run_length = int(sys.argv[2]) if len(sys.argv) > 2 else 24
    profile = build_profile(apki, run_length)
    print(f"workload: {profile.name} (prefetch distance is 64 lines)\n")

    print("-- scheduling policies ------------------------------------")
    print(f"{'policy':<24}{'IPC':>7}{'ACC':>7}{'traffic':>9}{'drops':>7}")
    for policy in ("no-pref", "demand-first", "demand-prefetch-equal", "aps", "padc"):
        result = run(profile, policy)
        core = result.cores[0]
        print(
            f"{policy:<24}{core.ipc:>7.3f}{core.accuracy:>7.2f}"
            f"{result.total_traffic:>9}{result.dropped_prefetches:>7}"
        )

    print("\n-- APD drop-threshold ablation (PADC) ----------------------")
    print(f"{'threshold scale':<18}{'IPC':>7}{'traffic':>9}{'drops':>7}")
    for drop_scale in (0.1, 1.0, 10.0):
        result = run(profile, "padc", drop_scale=drop_scale)
        print(
            f"x{drop_scale:<17g}{result.ipc():>7.3f}"
            f"{result.total_traffic:>9}{result.dropped_prefetches:>7}"
        )

    print("\n-- promotion-threshold ablation (APS) ----------------------")
    print(f"{'threshold':<18}{'IPC':>7}")
    for threshold in (0.5, 0.85, 0.99):
        result = run(profile, "aps", promotion_threshold=threshold)
        print(f"{threshold:<18}{result.ipc():>7.3f}")


if __name__ == "__main__":
    main()
