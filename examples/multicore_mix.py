#!/usr/bin/env python
"""Multiprogrammed 4-core workload under every DRAM scheduling policy.

Reproduces the paper's case-study methodology (§6.3): run a mix of
prefetch-friendly and prefetch-unfriendly applications together, measure
each application alone (demand-first policy, per §5.2), and report
individual speedups, weighted/harmonic speedup, unfairness and bus
traffic per policy.

Usage: python examples/multicore_mix.py [bench1 bench2 bench3 bench4]
"""

import sys

from repro import (
    api,
    baseline_config,
    harmonic_speedup,
    unfairness,
    weighted_speedup,
)

DEFAULT_MIX = ["omnetpp", "libquantum", "galgel", "GemsFDTD"]  # case study III
POLICIES = ["no-pref", "demand-first", "demand-prefetch-equal", "aps", "padc"]
ACCESSES = 6_000


def main() -> None:
    mix = sys.argv[1:5] if len(sys.argv) >= 5 else DEFAULT_MIX
    print(f"4-core workload: {', '.join(mix)}\n")

    print("measuring alone-IPCs (demand-first, one core active)...")
    alone = []
    for index, benchmark in enumerate(mix):
        result = api.simulate(
            baseline_config(1, policy="demand-first"),
            [benchmark],
            ACCESSES,
            seed=index,
        )
        alone.append(result.cores[0].ipc)
        print(f"  {benchmark:<14} IPC_alone = {alone[-1]:.3f}")

    header = (
        f"\n{'policy':<24}"
        + "".join(f"{'IS_' + b[:8]:>12}" for b in mix)
        + f"{'WS':>7}{'HS':>7}{'UF':>7}{'traffic':>9}{'drops':>7}"
    )
    print(header)
    for policy in POLICIES:
        result = api.simulate(
            baseline_config(4, policy=policy),
            mix,
            ACCESSES,
        )
        together = result.ipcs()
        speedups = [t / a for t, a in zip(together, alone)]
        print(
            f"{policy:<24}"
            + "".join(f"{s:>12.3f}" for s in speedups)
            + f"{weighted_speedup(together, alone):>7.3f}"
            + f"{harmonic_speedup(together, alone):>7.3f}"
            + f"{unfairness(together, alone):>7.2f}"
            + f"{result.total_traffic:>9}"
            + f"{result.dropped_prefetches:>7}"
        )
    print(
        "\nPADC should keep the friendly apps' speedups while dropping the"
        "\nunfriendly apps' useless prefetches (drops column)."
    )


if __name__ == "__main__":
    main()
