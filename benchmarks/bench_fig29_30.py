"""Figures 29-30: DDPF and FDP prefetch filters vs/with PADC.

Paper shape: the filters reduce traffic; APD preserves performance at
least as well as the filters when layered on the same scheduler.
"""

from conftest import run_once


def test_fig29_filters_with_demand_first_and_aps(benchmark, scale):
    result = run_once(benchmark, "fig29", scale)
    rows = {row["variant"]: row for row in result.rows}
    base = rows["demand-first"]
    # FDP throttling cuts traffic relative to the unfiltered baseline.
    assert rows["demand-first-fdp"]["traffic"] <= base["traffic"] * 1.02
    # APD on demand-first keeps performance within noise of the baseline.
    assert rows["demand-first-apd"]["ws"] >= base["ws"] * 0.95
    assert rows["aps-apd (PADC)"]["ws"] >= rows["aps-ddpf"]["ws"] * 0.95
    print(result.to_table())


def test_fig30_filters_with_equal(benchmark, scale):
    result = run_once(benchmark, "fig30", scale)
    rows = {row["variant"]: row for row in result.rows}
    equal = rows["demand-pref-equal"]
    assert rows["demand-pref-equal-fdp"]["traffic"] <= equal["traffic"] * 1.02
    assert rows["aps-apd (PADC)"]["ws"] >= equal["ws"] * 0.98
    print(result.to_table())
