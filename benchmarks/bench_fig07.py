"""Figure 7: single-core stall-time per load (SPL).

Paper shape: prefetching with any policy reduces SPL vs no-pref for the
benchmark population on average, and PADC does not inflate it.
"""

from conftest import run_once


def test_fig07(benchmark, scale):
    result = run_once(benchmark, "fig07", scale)
    amean = result.rows[-1]
    assert amean["benchmark"] == "amean"
    assert amean["demand-first"] < amean["no-pref"]
    assert amean["padc"] < amean["no-pref"]
    assert amean["padc"] <= amean["demand-prefetch-equal"] * 1.10
    print(result.to_table())
