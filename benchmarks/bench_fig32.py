"""Figure 32: PADC on a runahead-execution processor.

Paper shape: runahead lifts every configuration, and PADC remains
effective on top of it.
"""

from conftest import run_once


def test_fig32_runahead(benchmark, scale):
    result = run_once(benchmark, "fig32", scale)
    rows = {row["variant"]: row for row in result.rows}
    assert rows["no-pref-ra"]["ws"] > rows["no-pref"]["ws"]
    assert rows["padc-ra"]["ws"] > rows["padc"]["ws"]
    assert rows["padc-ra"]["ws"] >= rows["aps-ra"]["ws"] * 0.97
    print(result.to_table())
