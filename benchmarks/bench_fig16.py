"""Figure 16: 4-core overall performance and traffic.

Paper shape: demand-first is the best rigid policy at 4 cores; PADC beats
demand-prefetch-equal clearly and cuts traffic relative to it.  (In this
reproduction PADC lands within a few percent of demand-first rather than
above it — see EXPERIMENTS.md for the analysis.)
"""

from conftest import run_once


def test_fig16(benchmark, scale):
    result = run_once(benchmark, "fig16", scale)
    rows = {row["policy"]: row for row in result.rows}
    assert rows["demand-first"]["ws"] > rows["no-pref"]["ws"]
    assert rows["demand-first"]["ws"] > rows["demand-prefetch-equal"]["ws"]
    assert rows["padc"]["ws"] > rows["demand-prefetch-equal"]["ws"]
    assert rows["padc"]["ws"] >= rows["aps"]["ws"] * 0.99
    assert rows["padc"]["ws"] >= rows["demand-first"]["ws"] * 0.90
    assert rows["padc"]["traffic"] <= rows["demand-prefetch-equal"]["traffic"]
    print(result.to_table())
