"""Case study II (Figures 12-13): four prefetch-unfriendly applications.

Paper shape: demand-prefetch-equal is a disaster; demand-first and PADC
stay near the no-prefetching level; APD removes a large number of useless
prefetches.
"""

from conftest import run_once


def test_fig12_13(benchmark, scale):
    result = run_once(benchmark, "fig12_13", scale)
    rows = {row["policy"]: row for row in result.rows}
    assert rows["demand-first"]["ws"] > rows["demand-prefetch-equal"]["ws"]
    assert rows["padc"]["ws"] > rows["demand-prefetch-equal"]["ws"]
    assert rows["padc"]["ws"] > 0.92 * rows["no-pref"]["ws"]
    assert rows["padc"]["dropped"] > 0
    # Dropping removes junk but also frees MSHRs for new prefetch issue,
    # so serviced-useless can land a hair above APS; bound it loosely.
    assert rows["padc"]["useless"] <= rows["aps"]["useless"] * 1.08
    print(result.to_table())
