"""Case study I (Figures 10-11): four prefetch-friendly applications.

Paper shape: prefetching helps every app under every policy, and PADC's
drop count is small (few useless prefetches to remove).
"""

from conftest import run_once


def test_fig10_11(benchmark, scale):
    result = run_once(benchmark, "fig10_11", scale)
    rows = {row["policy"]: row for row in result.rows}
    assert rows["demand-first"]["ws"] > rows["no-pref"]["ws"]
    assert rows["padc"]["ws"] > rows["no-pref"]["ws"]
    # Friendly mix: useless traffic is a small share of the total.
    assert rows["padc"]["useless"] < 0.2 * rows["padc"]["traffic"]
    print(result.to_table())
