"""Ablations of PADC's design choices (DESIGN.md §4 extensions).

Not paper figures — these sweep the parameters the paper fixes (drop
thresholds, promotion threshold, sampling interval, prefetcher
aggressiveness) to verify the chosen values sit in sensible regions.
"""

from conftest import run_once


def test_ablation_drop_threshold(benchmark, scale):
    result = run_once(benchmark, "ablation_drop_threshold", scale)
    rows = {row["variant"]: row for row in result.rows}
    # Aggressive fixed dropping removes the most; dynamic drops a
    # nontrivial amount; no-drop drops nothing.
    assert rows["no-drop (aps)"]["dropped"] == 0
    assert rows["fixed-100"]["dropped"] >= rows["dynamic (Table 6)"]["dropped"]
    assert rows["dynamic (Table 6)"]["dropped"] > 0
    # Dynamic keeps performance within the envelope of the alternatives.
    best = max(row["ws"] for row in result.rows)
    assert rows["dynamic (Table 6)"]["ws"] >= best * 0.93
    print(result.to_table())


def test_ablation_promotion(benchmark, scale):
    result = run_once(benchmark, "ablation_promotion", scale)
    values = [row["ws"] for row in result.rows]
    # The sweep runs and stays in a sane range; the paper's 0.85 is not
    # catastrophically worse than the best setting.
    chosen = next(
        row["ws"] for row in result.rows if row["promotion_threshold"] == 0.85
    )
    assert chosen >= max(values) * 0.90
    print(result.to_table())


def test_ablation_interval(benchmark, scale):
    result = run_once(benchmark, "ablation_interval", scale)
    # Shorter intervals react to milc's phases and drop more junk.
    by_interval = {row["interval"]: row for row in result.rows}
    assert by_interval[25_000]["dropped"] >= by_interval[400_000]["dropped"]
    print(result.to_table())


def test_ablation_aggressiveness(benchmark, scale):
    result = run_once(benchmark, "ablation_aggressiveness", scale)
    # At the most aggressive setting, PADC loses less than demand-first
    # relative to the paper's 4/64 default (it drops the extra junk).
    def ws(policy, degree):
        return next(
            row["ws"]
            for row in result.rows
            if row["policy"] == policy and row["degree"] == degree
        )

    padc_degradation = ws("padc", 8) / ws("padc", 4)
    rigid_degradation = ws("demand-first", 8) / ws("demand-first", 4)
    assert padc_degradation >= rigid_degradation - 0.05
    print(result.to_table())
