"""Tables 9-10: four identical applications on the 4-core system.

Paper shape: with 4x libquantum (friendly), equal/APS/PADC treat all
instances evenly and beat demand-first; with 4x milc (unfriendly), PADC
drops junk and every instance speeds up evenly (UF stays near 1).
"""

from conftest import run_once


def test_table09_identical_friendly(benchmark, scale):
    result = run_once(benchmark, "table09", scale)
    rows = {row["policy"]: row for row in result.rows}
    # Even treatment: unfairness stays moderate for the adaptive policies
    # (identical instances should progress at similar rates).
    assert rows["padc"]["uf"] < 1.6
    assert rows["padc"]["ws"] >= rows["demand-prefetch-equal"]["ws"] * 0.90
    print(result.to_table())


def test_table10_identical_unfriendly(benchmark, scale):
    result = run_once(benchmark, "table10", scale)
    rows = {row["policy"]: row for row in result.rows}
    assert rows["demand-first"]["ws"] > rows["demand-prefetch-equal"]["ws"]
    assert rows["padc"]["ws"] > rows["demand-prefetch-equal"]["ws"] * 0.97
    assert rows["padc"]["uf"] < 1.6
    print(result.to_table())
