"""Figure 25: L2 cache size sweep (per core).

Paper shape: every policy improves with cache size; PADC stays at least
competitive with the best rigid policy at every size.
"""

from conftest import run_once


def test_fig25_cache_sweep(benchmark, scale):
    result = run_once(benchmark, "fig25", scale)
    sizes = [row["cache_kb_per_core"] for row in result.rows]
    assert sizes == sorted(sizes)
    for row in result.rows:
        assert row["padc"] >= row["demand-prefetch-equal"] * 0.85, row
        assert row["padc"] >= row["no-pref"] * 0.95, row
    # The equal policy closes on demand-first as the cache grows (larger
    # caches tolerate pollution, paper §6.9); WS itself stays flat here
    # because IS normalizes against same-cache alone runs (EXPERIMENTS.md).
    first, last = result.rows[0], result.rows[-1]
    first_ratio = first["demand-prefetch-equal"] / first["demand-first"]
    last_ratio = last["demand-prefetch-equal"] / last["demand-first"]
    assert last_ratio >= first_ratio - 0.02
    print(result.to_table())
