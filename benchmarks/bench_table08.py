"""Table 8: effect of prioritizing urgent requests.

Paper shape: removing the urgency rule from APS/PADC inflates unfairness
on the mixed case-study-III workload; urgency restores it.
"""

from conftest import run_once


def test_table08(benchmark, scale):
    result = run_once(benchmark, "table08", scale)
    rows = {row["variant"]: row for row in result.rows}
    # Urgency must keep fairness in the same envelope.  (In this
    # reproduction the case-III mix starves the prefetch-friendly cores
    # rather than the unfriendly ones, so urgency's UF *improvement*
    # does not reproduce — see EXPERIMENTS.md; we bound the regression.)
    assert rows["aps"]["uf"] <= rows["aps-no-urgent"]["uf"] * 1.45
    assert rows["aps-apd (PADC)"]["uf"] <= rows["aps-apd-no-urgent"]["uf"] * 1.45
    # And urgency keeps throughput in the same envelope.
    assert rows["aps"]["ws"] >= rows["aps-no-urgent"]["ws"] * 0.90
    print(result.to_table())
