"""Figure 9: 2-core overall performance and traffic.

Paper shape: prefetching helps (demand-first > no-pref), and PADC is the
most bandwidth-efficient prefetching policy.
"""

from conftest import run_once


def test_fig09(benchmark, scale):
    result = run_once(benchmark, "fig09", scale)
    rows = {row["policy"]: row for row in result.rows}
    assert rows["demand-first"]["ws"] > rows["no-pref"]["ws"]
    assert rows["padc"]["ws"] > rows["no-pref"]["ws"]
    assert rows["padc"]["traffic"] <= rows["demand-prefetch-equal"]["traffic"]
    print(result.to_table())
