"""Figure 31: permutation-based page interleaving.

Paper shape: the remapping helps the baselines, and PADC composes with it
(PADC-perm at least matches plain PADC and demand-first-perm stays below
or near PADC-perm).
"""

from conftest import run_once


def test_fig31_permutation(benchmark, scale):
    result = run_once(benchmark, "fig31", scale)
    rows = {row["variant"]: row for row in result.rows}
    # Permutation does not hurt the no-pref baseline.
    assert rows["no-pref-perm"]["ws"] >= rows["no-pref"]["ws"] * 0.95
    # PADC composes with the remapping scheme.
    assert rows["padc-perm"]["ws"] >= rows["padc"]["ws"] * 0.95
    print(result.to_table())
