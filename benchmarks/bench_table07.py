"""Table 7: row-buffer hit rate over useful requests (RBHU).

Paper shape: demand-prefetch-equal has the highest RBHU (it maximizes
row-hit batching); APS/PADC stay close; demand-first trails.
"""

from conftest import run_once

from repro.experiments.runner import average


def test_table07(benchmark, scale):
    result = run_once(benchmark, "table07", scale)
    mean = {
        policy: average(result.column(policy))
        for policy in ("no-pref", "demand-first", "demand-prefetch-equal", "aps", "padc")
    }
    assert mean["demand-prefetch-equal"] >= mean["demand-first"]
    assert mean["aps"] >= mean["demand-first"] * 0.97
    assert mean["padc"] >= mean["demand-first"] * 0.95
    print(result.to_table())
