"""Figure 23: DRAM row-buffer size sweep (2KB-128KB).

Paper shape: PADC never loses to demand-prefetch-equal at any size, and
larger row buffers do not erase the benefit of adaptivity.
"""

from conftest import run_once


def test_fig23_row_buffer_sweep(benchmark, scale):
    result = run_once(benchmark, "fig23", scale)
    for row in result.rows:
        assert row["padc"] >= row["demand-prefetch-equal"] * 0.95, row
        assert row["padc"] > row["no-pref"] * 0.90, row
    print(result.to_table())
