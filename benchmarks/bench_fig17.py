"""Figure 17: 8-core overall performance and traffic.

Paper shape: DRAM bandwidth is scarcer at 8 cores, so rigid
demand-prefetch-equal degrades hard and PADC's dropping matters more.
"""

from conftest import run_once


def test_fig17(benchmark, scale):
    result = run_once(benchmark, "fig17", scale)
    rows = {row["policy"]: row for row in result.rows}
    assert rows["padc"]["ws"] > rows["demand-prefetch-equal"]["ws"]
    assert rows["padc"]["traffic"] <= rows["demand-prefetch-equal"]["traffic"]
    assert rows["padc"]["ws"] >= rows["aps"]["ws"] * 0.99
    print(result.to_table())
