"""Tables 1-2: PADC hardware storage cost — exact paper numbers."""

from conftest import run_once


def test_table01_02_storage_cost(benchmark, scale):
    result = run_once(benchmark, "table01_02", scale)
    four_core = next(row for row in result.rows if row["cores"] == 4)
    assert four_core["total_bits"] == 34_720
    assert abs(four_core["total_KB"] - 4.25) < 0.02
    assert four_core["no_P_bits"] == 1_824
    assert four_core["frac_of_L2"] < 0.003
    print(result.to_table())
