"""Case study III (Figures 14-15): mixed friendly/unfriendly workload.

Paper shape: APD eliminates a large share of omnetpp/galgel's useless
prefetches, cutting total traffic versus the rigid policies.
"""

from conftest import run_once


def test_fig14_15(benchmark, scale):
    result = run_once(benchmark, "fig14_15", scale)
    rows = {row["policy"]: row for row in result.rows}
    assert rows["padc"]["dropped"] > 0
    assert rows["padc"]["traffic"] < rows["demand-prefetch-equal"]["traffic"]
    assert rows["padc"]["ws"] > rows["demand-prefetch-equal"]["ws"]
    print(result.to_table())
