"""Figure 28: PADC under stride, C/DC and Markov prefetchers.

Paper shape: PADC improves on demand-prefetch-equal with every
prefetcher; the Markov prefetcher benefits least from prefetching.
"""

from conftest import run_once


def test_fig28_other_prefetchers(benchmark, scale):
    result = run_once(benchmark, "fig28", scale)
    by_prefetcher = {}
    for row in result.rows:
        by_prefetcher.setdefault(row["prefetcher"], {})[row["policy"]] = row
    for prefetcher, rows in by_prefetcher.items():
        assert rows["padc"]["ws"] >= rows["demand-prefetch-equal"]["ws"] * 0.95, prefetcher
    # Markov is the least effective prefetcher (lowest gain over no-pref).
    gain = {
        prefetcher: rows["padc"]["ws"] / rows["no-pref"]["ws"]
        for prefetcher, rows in by_prefetcher.items()
    }
    assert gain["markov"] <= min(gain["stride"], gain["cdc"]) + 0.05
    print(result.to_table())
