"""Figures 19-20: PADC with PAR-BS-style request ranking.

Paper shape: ranking keeps WS within noise of plain PADC and improves
(or at least does not worsen) unfairness; the effect grows at 8 cores.
"""

from conftest import run_once


def test_fig19_ranking_4core(benchmark, scale):
    result = run_once(benchmark, "fig19", scale)
    rows = {row["policy"]: row for row in result.rows}
    assert rows["padc-rank"]["ws"] >= rows["padc"]["ws"] * 0.95
    assert rows["padc-rank"]["uf"] <= rows["padc"]["uf"] * 1.10
    print(result.to_table())


def test_fig20_ranking_8core(benchmark, scale):
    result = run_once(benchmark, "fig20", scale)
    rows = {row["policy"]: row for row in result.rows}
    # 8-core quick runs average very few mixes; check ranking stays in the
    # same performance envelope rather than a tight UF ratio.
    assert rows["padc-rank"]["ws"] >= rows["padc"]["ws"] * 0.90
    assert rows["padc-rank"]["uf"] <= rows["padc"]["uf"] * 1.35
    print(result.to_table())
