"""Figure 2: the scheduling walkthrough — must match the paper exactly."""

from conftest import run_once


def test_fig02(benchmark, scale):
    result = run_once(benchmark, "fig02", scale)
    values = {
        (row["prefetches"], row["policy"]): row["total_cycles"]
        for row in result.rows
    }
    assert values[("useful", "demand-first")] == 725
    assert values[("useful", "demand-prefetch-equal")] == 575
    assert values[("useless", "demand-first")] == 325
    assert values[("useless", "demand-prefetch-equal")] == 525
    print(result.to_table())
