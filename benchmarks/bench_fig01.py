"""Figure 1: rigid policies on 10 benchmarks (normalized to no-pref).

Paper shape: the five prefetch-unfriendly benchmarks (galgel, ammp,
xalancbmk, art, milc) prefer demand-first; the five friendly ones (swim,
libquantum, bwaves, leslie3d, lbm) prefer demand-prefetch-equal.
"""

from conftest import run_once

UNFRIENDLY = {"galgel", "ammp", "xalancbmk", "art", "milc"}
FRIENDLY = {"swim", "libquantum", "bwaves", "leslie3d", "lbm"}


def test_fig01(benchmark, scale):
    result = run_once(benchmark, "fig01", scale)
    rows = {row["benchmark"]: row for row in result.rows}
    unfriendly_margin = [
        rows[b]["demand-first"] - rows[b]["demand-pref-equal"] for b in UNFRIENDLY
    ]
    friendly_margin = [
        rows[b]["demand-pref-equal"] - rows[b]["demand-first"] for b in FRIENDLY
    ]
    # Every unfriendly benchmark individually prefers demand-first.
    assert all(margin > -0.02 for margin in unfriendly_margin)
    assert sum(unfriendly_margin) > 0
    # The friendly group prefers equal treatment on aggregate.
    assert sum(friendly_margin) > 0
    print(result.to_table())
