"""Figure 24: open-row vs closed-row buffer policies.

Paper shape: PADC works under both; the open-row variant is at least as
good overall (SPEC-like workloads have high row locality).
"""

from conftest import run_once


def test_fig24_closed_row(benchmark, scale):
    result = run_once(benchmark, "fig24", scale)
    rows = {row["policy"]: row for row in result.rows}
    # PADC stays within the envelope of the best closed-row policy.  (In
    # this reproduction closed-row *outperforms* open-row on conflict-
    # heavy multiprogrammed mixes, inverting the paper's slight open-row
    # edge — a documented artifact of in-order bus grants, see
    # EXPERIMENTS.md.)
    best_closed = max(
        row["ws"] for name, row in rows.items() if name.endswith("-closed")
    )
    assert rows["padc-closed"]["ws"] >= best_closed * 0.90
    assert rows["padc-open"]["ws"] > 0
    print(result.to_table())
