"""Shared configuration for the benchmark harness.

Each ``benchmarks/bench_*.py`` file regenerates one of the paper's tables
or figures through :mod:`repro.experiments` and asserts the paper's
qualitative *shape* (who wins, roughly by how much).  Absolute numbers are
not expected to match — the substrate is a synthetic-trace simulator, not
the authors' testbed (see DESIGN.md §2 and EXPERIMENTS.md).

Benchmarks run at a reduced scale by default so the whole harness
completes in minutes; set ``REPRO_SCALE=paper`` for the full sweep.
"""

import os

import pytest

from repro.experiments import Scale

BENCH_SCALE = Scale(
    accesses=4_000,
    mixes_2core=3,
    mixes_4core=3,
    mixes_8core=2,
    single_core_benches=15,
)


@pytest.fixture(scope="session", autouse=True)
def _bench_runtime(tmp_path_factory):
    """Submit through the parallel runtime, but from a cold private cache.

    Benchmarks honour ``$REPRO_JOBS`` for fan-out, yet always start from
    an empty, session-local result cache — a warm ``~/.cache/repro``
    would turn the timings into cache-read measurements.  Set
    ``$REPRO_BENCH_CACHE_DIR`` to share (and warm) a directory across
    sessions deliberately.
    """
    from repro import runtime

    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR") or str(
        tmp_path_factory.mktemp("repro-bench-cache")
    )
    runtime.configure(cache_dir=cache_dir)
    yield
    runtime.reset()


@pytest.fixture(scope="session")
def scale():
    env_scale = Scale.from_env()
    if env_scale != Scale():  # an explicit REPRO_SCALE wins
        return env_scale
    return BENCH_SCALE


def run_once(benchmark, name, scale):
    """Run one experiment exactly once under pytest-benchmark timing."""
    from repro.experiments import run_experiment

    return benchmark.pedantic(
        run_experiment, args=(name, scale), rounds=1, iterations=1
    )
