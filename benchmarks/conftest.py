"""Shared configuration for the benchmark harness.

Each ``benchmarks/bench_*.py`` file regenerates one of the paper's tables
or figures through :mod:`repro.experiments` and asserts the paper's
qualitative *shape* (who wins, roughly by how much).  Absolute numbers are
not expected to match — the substrate is a synthetic-trace simulator, not
the authors' testbed (see DESIGN.md §2 and EXPERIMENTS.md).

Benchmarks run at a reduced scale by default so the whole harness
completes in minutes; set ``REPRO_SCALE=paper`` for the full sweep.
"""

import pytest

from repro.experiments import Scale

BENCH_SCALE = Scale(
    accesses=4_000,
    mixes_2core=3,
    mixes_4core=3,
    mixes_8core=2,
    single_core_benches=15,
)


@pytest.fixture(scope="session")
def scale():
    env_scale = Scale.from_env()
    if env_scale != Scale():  # an explicit REPRO_SCALE wins
        return env_scale
    return BENCH_SCALE


def run_once(benchmark, name, scale):
    """Run one experiment exactly once under pytest-benchmark timing."""
    from repro.experiments import run_experiment

    return benchmark.pedantic(
        run_experiment, args=(name, scale), rounds=1, iterations=1
    )
