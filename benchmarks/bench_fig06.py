"""Figure 6: single-core normalized IPC across the five policies.

Paper shape: APS tracks the best rigid policy per benchmark; adding APD
(full PADC) is at least as good on the geometric mean.
"""

from conftest import run_once


def test_fig06(benchmark, scale):
    result = run_once(benchmark, "fig06", scale)
    gmean = result.rows[-1]
    assert gmean["benchmark"].startswith("gmean")
    # PADC within noise of the best rigid policy on the geometric mean,
    # and strictly above the worse rigid policy.
    best_rigid = max(gmean["demand-first"], gmean["demand-prefetch-equal"])
    worst_rigid = min(gmean["demand-first"], gmean["demand-prefetch-equal"])
    assert gmean["padc"] > worst_rigid
    assert gmean["padc"] > 0.93 * best_rigid
    assert gmean["padc"] >= gmean["aps"] * 0.99
    print(result.to_table())
