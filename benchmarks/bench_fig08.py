"""Figure 8: single-core bus-traffic breakdown.

Paper shape: PADC's total traffic is below demand-prefetch-equal's (it
drops useless prefetches) and its useless-prefetch share shrinks.
"""

from collections import defaultdict

from conftest import run_once


def test_fig08(benchmark, scale):
    result = run_once(benchmark, "fig08", scale)
    totals = defaultdict(int)
    useless = defaultdict(int)
    for row in result.rows:
        totals[row["policy"]] += row["total"]
        useless[row["policy"]] += row["pref_useless"]
    assert totals["no-pref"] < totals["demand-first"]
    assert totals["padc"] <= totals["demand-prefetch-equal"]
    assert useless["padc"] <= useless["demand-prefetch-equal"]
    print(result.to_table())
