"""Figures 21-22: dual memory controllers.

Paper shape: doubling the channels lifts every policy's WS, and PADC
remains effective (still the most bandwidth-efficient prefetch policy).
"""

from conftest import run_once


def test_fig21_dual_controller_4core(benchmark, scale):
    result = run_once(benchmark, "fig21", scale)
    rows = {row["policy"]: row for row in result.rows}
    assert rows["padc"]["ws"] > rows["no-pref"]["ws"] * 0.95
    assert rows["padc"]["ws"] > rows["demand-prefetch-equal"]["ws"] * 0.95
    assert rows["padc"]["traffic"] <= rows["demand-prefetch-equal"]["traffic"]
    print(result.to_table())


def test_fig22_dual_controller_8core(benchmark, scale):
    result = run_once(benchmark, "fig22", scale)
    rows = {row["policy"]: row for row in result.rows}
    assert rows["padc"]["ws"] > rows["demand-prefetch-equal"]["ws"] * 0.95
    assert rows["padc"]["traffic"] <= rows["demand-prefetch-equal"]["traffic"]
    print(result.to_table())
