"""Figures 26-27: shared last-level cache.

Paper shape: demand-prefetch-equal suffers most under a shared cache
(cross-core pollution); PADC stays ahead of it and saves bandwidth.
"""

from conftest import run_once


def test_fig26_shared_cache_4core(benchmark, scale):
    result = run_once(benchmark, "fig26", scale)
    rows = {row["policy"]: row for row in result.rows}
    assert rows["padc"]["ws"] > rows["demand-prefetch-equal"]["ws"] * 0.97
    assert rows["padc"]["traffic"] <= rows["demand-prefetch-equal"]["traffic"]
    print(result.to_table())


def test_fig27_shared_cache_8core(benchmark, scale):
    result = run_once(benchmark, "fig27", scale)
    rows = {row["policy"]: row for row in result.rows}
    assert rows["padc"]["ws"] > rows["demand-prefetch-equal"]["ws"] * 0.97
    assert rows["padc"]["traffic"] <= rows["demand-prefetch-equal"]["traffic"]
    print(result.to_table())
