"""Table 5: benchmark characteristics with/without the stream prefetcher.

Shape checks against the paper's per-class characteristics: libquantum's
prefetches are near-perfect, the unfriendly group's accuracy is low.
"""

from conftest import run_once


def test_table05(benchmark, scale):
    result = run_once(benchmark, "table05", scale)
    rows = {row["benchmark"]: row for row in result.rows}
    assert rows["libquantum"]["acc"] > 0.9
    assert rows["swim"]["acc"] > 0.85
    for unfriendly in ("ammp", "omnetpp", "xalancbmk"):
        assert rows[unfriendly]["acc"] < 0.35
    # Memory-intensive benchmarks show higher MPKI than light ones.
    assert rows["art"]["mpki_nopref"] > rows["ammp"]["mpki_nopref"]
    print(result.to_table())
