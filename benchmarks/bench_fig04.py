"""Figure 4: milc's prefetch behaviour (service times and phases).

Paper shape: (a) useless prefetches dominate the long-service-time tail;
(b) accuracy shows strong phase behaviour with near-zero stretches.
"""

from conftest import run_once


def test_fig04a_service_time_histogram(benchmark, scale):
    result = run_once(benchmark, "fig04a", scale)
    useful = sum(row["useful"] for row in result.rows)
    useless = sum(row["useless"] for row in result.rows)
    assert useful + useless > 0
    assert useless > 0  # milc generates useless prefetches
    print(result.to_table())


def test_fig04b_accuracy_phases(benchmark, scale):
    result = run_once(benchmark, "fig04b", scale)
    accuracies = [row["accuracy"] for row in result.rows]
    assert len(accuracies) >= 2
    # Phase behaviour: the accuracy swings over the run.
    assert max(accuracies) - min(accuracies) > 0.2
    print(result.to_table())
