#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table/figure.

Runs every registered experiment at the current REPRO_SCALE and writes
the measured tables next to the paper's expectations.  The preamble and
per-experiment expectation text are maintained here; the numbers are
always regenerated.

Usage: [REPRO_SCALE=quick|medium|paper] python scripts/generate_experiments_md.py
"""

import os
import sys
import time

from repro.campaign import submit
from repro.campaign.presets import paper_campaign
from repro.campaign.report import status_summary
from repro.experiments import REGISTRY, Scale, run_experiment

# Paper expectation per experiment id (shown verbatim in EXPERIMENTS.md).
PAPER_EXPECTATIONS = {
    "fig01": "Unfriendly five (galgel, ammp, xalancbmk, art, milc) prefer "
             "demand-first; friendly five (swim, libquantum, bwaves, "
             "leslie3d, lbm) prefer demand-prefetch-equal. Paper extremes: "
             "libquantum 2.69x (equal) vs 1.60x (demand-first); milc 0.64x "
             "(equal) vs 1.10x (demand-first).",
    "fig02": "Exact: useful prefetches 725 (demand-first) vs 575 (equal); "
             "useless 325 vs 525.",
    "fig04a": "56% of milc's prefetches take >1600 cycles; 86% of those are "
              "useless; useless mean 2238 vs useful 1486 cycles.",
    "fig04b": "Accuracy shows strong phases: near 0% for a long stretch, "
              "high elsewhere.",
    "fig06": "gmean over the suite: demand-pref-equal +0.5% over "
             "demand-first; APS +3.6%; PADC +4.3%.",
    "fig07": "PADC cuts SPL ~5% vs demand-first on average.",
    "fig08": "PADC cuts total traffic ~10.4%, almost all from useless "
             "prefetches.",
    "table05": "Per-benchmark IPC/MPKI/RBH/ACC/COV; e.g. libquantum ACC "
               "~100% COV ~80%; ammp ACC 6%; art ACC 36%.",
    "table07": "RBHU: equal highest, APS within ~2%, demand-first clearly "
               "lower (amean 0.68 vs 0.63).",
    "fig09": "2-core: PADC +8.4% WS, +6.4% HS vs demand-first; -10% traffic.",
    "fig10_11": "Case I (all friendly): equal +28% WS over demand-first; "
                "PADC +31.3%; traffic savings small (0.9%).",
    "fig12_13": "Case II (all unfriendly): equal collapses; PADC +17.7% WS "
                "over demand-first, -9.1% traffic, within 2% of no-pref.",
    "fig14_15": "Case III (mixed): APD drops 67%/57% of omnetpp/galgel's "
                "useless prefetches; -14.5% traffic vs demand-first.",
    "table08": "Without urgency UF blows up to 4.55; with urgency 1.84. "
               "Urgency: +13.7% UF, +8.8% HS, +3.8% WS on average.",
    "table09": "4x libquantum: equal/APS/PADC all reach WS 3.14 vs 2.66 "
               "demand-first, evenly across instances.",
    "table10": "4x milc: PADC WS 2.33 vs 1.99 demand-first vs 1.45 equal; "
               "UF stays ~1.0.",
    "fig16": "4-core average: PADC +8.2% WS, +4.1% HS vs demand-first; "
             "-10.1% traffic vs best rigid (demand-first).",
    "fig17": "8-core: rigid policies make prefetching a net loss; PADC "
             "+9.9% WS, -9.4% traffic.",
    "fig19": "4-core ranking: WS -0.4%, HS +0.9%, UF 1.63 -> 1.53.",
    "fig20": "8-core ranking: WS +2.0%, HS +5.4%, UF -10.4%.",
    "fig21": "Dual controller 4-core: PADC +5.9% WS, -12.9% traffic vs "
             "demand-first.",
    "fig22": "Dual controller 8-core: PADC +5.5% WS, -13.2% traffic.",
    "fig23": "PADC best at every row-buffer size; demand-first degrades "
             "below no-pref beyond 64KB rows.",
    "fig24": "Closed-row: PADC +7.6% WS vs closed-row demand-first; "
             "open-row PADC ~1.1% better than closed-row PADC.",
    "fig25": "PADC best at every cache size; equal overtakes demand-first "
             "beyond 1MB/core; APD's margin shrinks with cache size.",
    "fig26": "Shared L2 4-core: PADC +8.0% WS; equal -2.4% and +22.3% "
             "traffic vs demand-first.",
    "fig27": "Shared L2 8-core: PADC +7.6% WS; equal -10.4% and +46.3% "
             "traffic.",
    "fig28": "PADC improves WS and traffic with stride, C/DC and Markov; "
             "Markov gains least (+2.2% WS, -10.3% traffic).",
    "fig29": "DDPF/FDP with demand-first: +1.5%/+1.7% WS; APD +2.6%. "
             "Composed with APS: +6.3%/+7.4%; PADC best overall (+8.2%).",
    "fig30": "DDPF/FDP with equal: only +2.3%/+2.7% (they kill useful "
             "prefetches); PADC +8.2%.",
    "fig31": "Permutation helps everyone (+3.8% baseline); PADC adds +5.4% "
             "WS, -11.3% traffic on top.",
    "fig32": "Runahead baseline +3.7% WS; PADC still adds +6.7% WS, -10.2% "
             "traffic.",
    "table01_02": "Exact: 34,720 bits (~4.25KB, 0.2% of L2) for 4 cores; "
                  "1,824 bits if caches already have P bits.",
    "ablation_drop_threshold": "(extension, not in paper) Table 6's dynamic "
        "thresholds should approach fixed-100's junk removal without its "
        "useful-prefetch casualties.",
    "ablation_promotion": "(extension) the paper's 85% threshold should sit "
        "near the sweep's optimum.",
    "ablation_interval": "(extension) shorter sampling catches milc's "
        "phases and drops more junk.",
    "ablation_aggressiveness": "(extension) PADC tolerates over-aggressive "
        "prefetching better than rigid demand-first.",
}

PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Generated by `scripts/generate_experiments_md.py` at scale
`{scale_name}` ({scale}).  Regenerate with:

```bash
REPRO_SCALE={scale_name} python scripts/generate_experiments_md.py
```

**How to read this file.**  Our substrate is a first-order simulator over
synthetic SPEC-like traces (see DESIGN.md §2), so the comparison target is
the *shape* of each result — which policy wins, where the crossovers fall,
what APD drops — not absolute IPC/WS values.  Two artifacts reproduce the
paper's numbers exactly (Figure 2 and Tables 1–2) because they are
closed-form.

**Known deviation (multicore magnitudes).**  On random multiprogrammed
4/8-core mixes, our PADC lands within a few percent of demand-first
instead of ~8–10% above it.  The per-application adaptivity works (APS
tracks the best rigid policy per benchmark single-core; APD removes most
useless prefetches and cuts traffic), but the paper's multicore headline
additionally relies on equal-treatment of accurate prefetches being a net
*throughput* win under contention.  In our model three second-order
effects mute that win: (1) the first-order ROB model gives cores enough
memory-level parallelism to tolerate the demand-queueing that
equal-treatment introduces, so coverage gains buy less; (2) with
bank-level parallelism, row-conflicts burn bank-parallel slack rather
than bus throughput; and (3) our closed-loop cores throttle their own
request generation when stalled, draining the queues the paper's
saturated system kept full.  We verified the underlying mechanisms the
paper describes are present (§6.1 coverage loss under demand-first:
measured COV 0.37 vs 0.72 in case study I; request-buffer overflow under
demand-first: thousands of blocked demands) — they simply convert to less
end-to-end WS here.  All of this is measured below.

**Other recorded deviations.**
* *fig24 (closed-row)*: our closed-row policy **outperforms** open-row on
  conflict-heavy multiprogrammed mixes, inverting the paper's slight
  open-row edge.  Cause: the in-order data-bus grant (chosen to match the
  paper's Figure 2 service model) wastes idle bus time behind long
  precharge+activate sequences, which the closed-row policy shortens.
* *fig25 (cache sweep)*: weighted speedup is nearly flat across cache
  sizes because IS normalizes each run against an alone run with the
  *same* cache — capacity effects cancel by construction.  The underlying
  capacity sensitivity exists (the cache-walker workload's hit count
  rises ~30% from 256KB to 1MB single-core) and the equal-vs-demand-first
  gap narrows with cache size, as the paper predicts.
* *table08 (urgency)*: in our case-III mix the prefetch-*friendly* cores
  are the starved ones (equal-treatment costs them under contention), so
  boosting the unfriendly cores' demands does not improve fairness the
  way it does in the paper; the mechanism itself is implemented and unit
  tested, and the bench bounds its regression instead.

"""


def main() -> int:
    scale_name = os.environ.get("REPRO_SCALE", "quick")
    scale = Scale.from_env()  # dies loudly on a typo'd scale name
    # Drive the headline multiprogrammed sweep through the campaign layer
    # first: every job lands in a persistent ledger (resumable if this
    # script is interrupted), and the per-figure generators below become
    # thin views served from the warm result store.
    spec = paper_campaign(scale)
    print(f"campaign: {spec.name} at scale {scale_name}")
    start = time.time()
    run = submit(spec)
    print(status_summary(run.campaign))
    print(f"campaign complete in {time.time() - start:.1f}s")
    sections = [PREAMBLE.format(scale_name=scale_name, scale=scale)]
    for name in sorted(REGISTRY):
        start = time.time()
        result = run_experiment(name, scale)
        elapsed = time.time() - start
        expectation = PAPER_EXPECTATIONS.get(name, "(no recorded expectation)")
        sections.append(f"## {result.experiment_id}: {result.title}\n")
        sections.append(f"**Paper:** {expectation}\n")
        sections.append("**Measured:**\n")
        sections.append("```")
        sections.append(result.to_table())
        sections.append("```")
        sections.append(f"_(generated in {elapsed:.1f}s)_\n")
        print(f"{name}: {elapsed:.1f}s")
    with open("EXPERIMENTS.md", "w") as handle:
        handle.write("\n".join(sections))
    print("wrote EXPERIMENTS.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
