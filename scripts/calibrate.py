#!/usr/bin/env python
"""Calibration harness: compare per-benchmark metrics against Table 5.

Run after editing workload profiles to check that each benchmark's
prefetch accuracy (ACC), coverage (COV), row-buffer hit rate (RBH) and the
demand-first vs demand-prefetch-equal IPC ordering land near the paper's
values.  Shape targets, not absolutes (see DESIGN.md §2).

Usage: python scripts/calibrate.py [bench ...]
"""

import sys
import time

from repro import baseline_config, simulate

# name -> (ACC, COV, RBH, equal_should_beat_demand_first)
PAPER_TARGETS = {
    "libquantum": (1.00, 0.80, 0.81, True),
    "swim": (1.00, 0.69, 0.43, True),
    "leslie3d": (0.90, 0.89, 0.77, True),
    "bwaves": (1.00, 0.98, 0.84, True),
    "lbm": (0.94, 0.85, 0.58, True),
    "GemsFDTD": (0.91, 0.87, 0.56, True),
    "mcf_06": (0.31, 0.15, 0.26, None),
    "soplex": (0.80, 0.83, 0.79, None),
    "sphinx3": (0.55, 0.83, 0.84, None),
    "art": (0.36, 0.34, 0.91, False),
    "milc": (0.19, 0.29, 0.81, False),
    "galgel": (0.31, 0.24, 0.66, False),
    "ammp": (0.06, 0.08, 0.56, False),
    "omnetpp": (0.11, 0.18, 0.62, False),
    "xalancbmk": (0.09, 0.13, 0.49, False),
}


def main(benches, accesses=8000):
    print(
        f"{'bench':<12}{'npref':>7}{'dfirst':>7}{'equal':>7}{'eq/df':>7}"
        f"{'ACC':>6}({'tgt':>4}){'COV':>6}({'tgt':>4}){'RBH':>6}({'tgt':>4}) ok?"
    )
    start = time.time()
    for bench in benches:
        values = {}
        for policy in ("no-pref", "demand-first", "demand-prefetch-equal"):
            config = baseline_config(1, policy=policy)
            result = simulate(config, [bench], max_accesses_per_core=accesses)
            values[policy] = result
        core_df = values["demand-first"].cores[0]
        np_ipc = values["no-pref"].ipc()
        df_ipc = values["demand-first"].ipc()
        eq_ipc = values["demand-prefetch-equal"].ipc()
        acc_t, cov_t, rbh_t, eq_wins_t = PAPER_TARGETS.get(
            bench, (None, None, None, None)
        )
        rbh = values["demand-first"].row_buffer_hit_rate
        eq_wins = eq_ipc > df_ipc
        verdict = "OK" if eq_wins_t is None or eq_wins == eq_wins_t else "SHAPE!"
        fmt_target = lambda t: f"({t:>4.2f})" if t is not None else "(  --)"
        print(
            f"{bench:<12}{np_ipc:>7.3f}{df_ipc:>7.3f}{eq_ipc:>7.3f}"
            f"{eq_ipc / df_ipc:>7.3f}"
            f"{core_df.accuracy:>6.2f}{fmt_target(acc_t)}"
            f"{core_df.coverage:>6.2f}{fmt_target(cov_t)}"
            f"{rbh:>6.2f}{fmt_target(rbh_t)} {verdict}"
        )
    print(f"elapsed {time.time() - start:.1f}s")


if __name__ == "__main__":
    benches = sys.argv[1:] or list(PAPER_TARGETS)
    main(benches)
