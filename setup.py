"""Legacy setup shim: the environment has no `wheel` package, so editable
installs must go through the setup.py code path (--no-use-pep517)."""
from setuptools import setup

setup()
