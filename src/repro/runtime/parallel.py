"""Parallel, cache-aware execution of independent simulation jobs.

:class:`SimJob` freezes one ``simulate()`` call into a hashable,
picklable value; :class:`Runtime` runs batches of jobs — serving hits
from the on-disk :class:`~repro.runtime.store.ResultStore`, deduplicating
identical jobs within a batch, and fanning the misses out over a
:class:`~concurrent.futures.ProcessPoolExecutor` when more than one
worker is configured.

Because every simulation is fully deterministic in its seed, a job's
result is identical whether it ran serially, in a worker process, or was
loaded back from the cache — ``tests/test_parallel.py`` asserts this
bit-for-bit across worker counts and cold/warm caches.

Knobs (flag overrides env, env overrides default):

* workers — ``--jobs N`` / ``$REPRO_JOBS`` (default 1 = serial;
  0 = one per CPU core);
* cache location — ``--cache-dir`` / ``$REPRO_CACHE_DIR``
  (default ``~/.cache/repro``);
* cache on/off — ``--no-cache`` / ``$REPRO_CACHE=0``.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.params import SystemConfig
from repro.runtime.hashing import canonicalize
from repro.runtime.store import ResultStore, cache_key
from repro.sim.results import SimResult


@dataclass(frozen=True)
class SimJob:
    """One independent ``simulate()`` call, ready to hash, pickle or ship."""

    config: SystemConfig
    benchmarks: Tuple = ()
    accesses: int = 0
    seed: int = 0
    # Extra simulate() keyword arguments as a sorted tuple of pairs so the
    # job stays hashable (e.g. (("collect_service_times", True),)).
    sim_kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, config, benchmarks, accesses, seed=0, **sim_kwargs) -> "SimJob":
        return cls(
            config=config,
            benchmarks=tuple(benchmarks),
            accesses=int(accesses),
            seed=int(seed),
            sim_kwargs=tuple(sorted(sim_kwargs.items())),
        )

    def payload(self) -> Dict:
        """Canonical content of this job, for cache keying.

        Workloads canonicalize through
        :func:`repro.workloads.canonical_workload`: benchmark names stay
        strings, while ``trace:`` specs and ``TraceWorkload`` values hash
        by the trace file's embedded content digest (never its path), so
        the same trace at two paths shares cache entries and an edited
        trace invalidates them.
        """
        from repro.workloads.resolve import canonical_workload

        return {
            "config": canonicalize(self.config),
            "benchmarks": [
                canonical_workload(benchmark) for benchmark in self.benchmarks
            ],
            "accesses": self.accesses,
            "seed": self.seed,
            "sim_kwargs": canonicalize(dict(self.sim_kwargs)),
        }

    def key(self) -> str:
        return cache_key(self)


class JobExecutionError(RuntimeError):
    """A simulation job died; carries the job's identity, not just a trace.

    A bare worker traceback says *that* something crashed but not *what*
    was running; this error pins the failure to a job via its cache key
    and a config summary (policy, cores, benchmarks, accesses, seed).
    The three-argument form keeps the default ``Exception`` pickling
    working, so the error crosses the ProcessPoolExecutor boundary
    intact.
    """

    def __init__(self, key: str, summary: str, traceback_text: str):
        super().__init__(key, summary, traceback_text)
        self.key = key
        self.summary = summary
        self.traceback_text = traceback_text

    def __str__(self) -> str:
        return (
            f"simulation job {self.key[:16]} failed ({self.summary})\n"
            f"{self.traceback_text.rstrip()}"
        )


def job_summary(job: SimJob) -> str:
    """One-line human identity of a job for error reports and ledgers."""
    names = ",".join(
        getattr(benchmark, "name", str(benchmark)) for benchmark in job.benchmarks
    )
    return (
        f"policy={job.config.policy} cores={job.config.num_cores} "
        f"benchmarks={names} accesses={job.accesses} seed={job.seed}"
    )


def execute_job(job: SimJob, *, telemetry=None) -> SimResult:
    """Run one job in this process (also the worker-side entry point).

    Any simulation failure is re-raised as :class:`JobExecutionError`
    carrying the job's cache key and config summary, so callers (and
    users reading a worker traceback) know which job died.

    ``telemetry`` (keyword-only) overrides the job's own telemetry knob
    with a live collector — the streaming path.  The override is
    **cache-neutral**: it never reaches the job's key (the job is
    untouched), and if the job did not itself ask for telemetry the
    collector's piggy-backed trace is stripped from the result, so the
    persisted bytes are identical to an unstreamed run.
    """
    # Late attribute lookup so tests can monkeypatch repro.sim.simulate.
    import repro.sim

    sim_kwargs = dict(job.sim_kwargs)
    job_wants_trace = bool(sim_kwargs.get("telemetry"))
    if telemetry is not None:
        sim_kwargs["telemetry"] = telemetry
    try:
        result = repro.sim.simulate(
            job.config,
            list(job.benchmarks),
            max_accesses_per_core=job.accesses,
            seed=job.seed,
            **sim_kwargs,
        )
    except Exception as error:
        raise JobExecutionError(
            job.key(), job_summary(job), traceback.format_exc()
        ) from error
    if telemetry is not None and not job_wants_trace:
        result.trace = None
    return result


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "1").strip()
        try:
            jobs = int(raw)
        except ValueError:
            # Fail loudly, mirroring Scale.from_env: a typo'd
            # REPRO_JOBS=1O silently serializing a whole campaign is
            # far worse than dying at startup.
            raise ValueError(
                f"$REPRO_JOBS must be an integer worker count "
                f"(0 = one per CPU core), got {raw!r}"
            ) from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _resolve_cache_enabled(enabled: Optional[bool]) -> bool:
    if enabled is not None:
        return enabled
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in {
        "0",
        "off",
        "false",
        "no",
    }


class Runtime:
    """Cache-aware serial/parallel executor for simulation jobs."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir=None,
        cache_enabled: Optional[bool] = None,
    ):
        self.jobs = _resolve_jobs(jobs)
        self.cache_enabled = _resolve_cache_enabled(cache_enabled)
        self.store = ResultStore(cache_dir)

    def run(self, job: SimJob) -> SimResult:
        return self.run_many([job])[0]

    def run_many(self, jobs: Sequence[SimJob]) -> List[SimResult]:
        """Run a batch of independent jobs, preserving input order.

        Cache hits never touch a worker; identical jobs within the batch
        are computed once and fanned back to every requesting slot.
        """
        jobs = list(jobs)
        results: List[Optional[SimResult]] = [None] * len(jobs)
        pending: Dict[str, List[int]] = {}
        misses: List[Tuple[str, SimJob]] = []
        for index, job in enumerate(jobs):
            key = job.key()
            if key in pending:
                pending[key].append(index)
                continue
            if self.cache_enabled:
                hit = self.store.get(key)
                if hit is not None:
                    results[index] = hit
                    continue
            pending[key] = [index]
            misses.append((key, job))
        if misses:
            computed = self._execute([job for _, job in misses])
            for (key, _), result in zip(misses, computed):
                if self.cache_enabled:
                    self.store.put(key, result)
                for index in pending[key]:
                    results[index] = result
        return results

    def _execute(self, jobs: List[SimJob]) -> List[SimResult]:
        try:
            if self.jobs > 1 and len(jobs) > 1:
                workers = min(self.jobs, len(jobs))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    return list(pool.map(execute_job, jobs))
            return [execute_job(job) for job in jobs]
        except JobExecutionError as error:
            # Report which member of the batch died; the whole batch is
            # abandoned here (the campaign executor is the fault-isolated
            # path that lets siblings finish).  Folded into the message
            # rather than BaseException.add_note: that API is 3.11+ and
            # this package declares 3.9 support — and unlike a note, the
            # message also reaches ledgers that record str(error).
            error.traceback_text = (
                error.traceback_text.rstrip()
                + f"\nwhile running a batch of {len(jobs)} jobs; "
                "the rest of the batch was abandoned"
            )
            raise


# -- the process-wide runtime -------------------------------------------------
#
# CLI flags install an explicit runtime via configure(); otherwise
# get_runtime() builds one from the environment and rebuilds it whenever
# the relevant variables change (tests flip them per-case).

_CONFIGURED: Optional[Runtime] = None
_ENV_RUNTIME: Optional[Runtime] = None
_ENV_SNAPSHOT: Optional[Tuple] = None

_ENV_VARS = ("REPRO_JOBS", "REPRO_CACHE_DIR", "REPRO_CACHE")


def _env_snapshot() -> Tuple:
    return tuple(os.environ.get(name) for name in _ENV_VARS)


def get_runtime() -> Runtime:
    """The active runtime: configure()'d one, else env-derived."""
    global _ENV_RUNTIME, _ENV_SNAPSHOT
    if _CONFIGURED is not None:
        return _CONFIGURED
    snapshot = _env_snapshot()
    if _ENV_RUNTIME is None or snapshot != _ENV_SNAPSHOT:
        _ENV_RUNTIME = Runtime()
        _ENV_SNAPSHOT = snapshot
    return _ENV_RUNTIME


def configure(
    jobs: Optional[int] = None,
    cache_dir=None,
    cache_enabled: Optional[bool] = None,
) -> Runtime:
    """Install an explicit process-wide runtime (CLI flags land here)."""
    global _CONFIGURED
    _CONFIGURED = Runtime(jobs=jobs, cache_dir=cache_dir, cache_enabled=cache_enabled)
    return _CONFIGURED


def reset() -> None:
    """Drop any configured/env-derived runtime (test isolation)."""
    global _CONFIGURED, _ENV_RUNTIME, _ENV_SNAPSHOT
    _CONFIGURED = None
    _ENV_RUNTIME = None
    _ENV_SNAPSHOT = None
