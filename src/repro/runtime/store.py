"""On-disk cache of :class:`~repro.sim.results.SimResult` objects.

Layout: one JSON file per entry under the cache root (default
``~/.cache/repro``, overridable with ``$REPRO_CACHE_DIR`` or the
``--cache-dir`` CLI flag), named ``<key>.json`` where ``key`` is the
SHA-256 of the job's complete content (config + workload + accesses +
seed + simulate kwargs) combined with :data:`CACHE_VERSION`.

Invalidation rules:

* any changed config field, benchmark, access count, seed or simulate
  kwarg changes the key (see :mod:`repro.runtime.hashing`);
* bumping :data:`CACHE_VERSION` orphans every existing entry — do this
  whenever simulator semantics change so stale results stop matching;
* unreadable/corrupt entries are treated as misses and recomputed.

Writes go through a temp file + :func:`os.replace`, so concurrent
processes can safely share one cache directory.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.runtime.hashing import content_hash
from repro.sim.results import SimResult

# Code-version stamp baked into every cache key.  Bump on any change to
# simulator semantics or the SimResult schema.
# v2: APD drop-age fix, FDP retry single-counting, writeback index fix,
#     new CoreResult fields (pf_evicted_unused, mshr_stalls).
# v3: SimResult schema v2 (schema_version fields, interval-telemetry
#     trace) and the telemetry sim kwarg.
# v4: scheduler hot-path rework (PR 5): admission-seq tie-breaks replace
#     queue-order-dependent selection, fill-waiter wake order is
#     insertion-ordered, and admission ticks coalesce at bank-free time.
# v5: skip-ahead event backend (PR 6) becomes the default simulation
#     loop.  Results are certified byte-identical across backends (the
#     backend knob is hash-excluded), but the version stamp still moves:
#     entries written before the certification machinery existed must
#     not answer for the new default path.
# v6: trace subsystem (PR 8): job payloads canonicalize workloads
#     through canonical_workload — file-backed workloads key by their
#     embedded content digest plus windowing knobs, never by path.
CACHE_VERSION = 6

DEFAULT_CACHE_DIR = "~/.cache/repro"


def default_cache_dir() -> Path:
    """Cache root: $REPRO_CACHE_DIR if set, else ~/.cache/repro."""
    return Path(os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR).expanduser()


def cache_key(job) -> str:
    """Cache key for one simulation job: full content hash + version stamp."""
    return content_hash({"version": CACHE_VERSION, "job": job.payload()})


class ResultStore:
    """A directory of serialized SimResults, addressed by content key."""

    def __init__(self, root=None):
        self._root = Path(root).expanduser() if root is not None else None

    @property
    def root(self) -> Path:
        return self._root if self._root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[SimResult]:
        """Load an entry, or None on miss/corruption."""
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return SimResult.from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def put(self, key: str, result: SimResult) -> Path:
        """Atomically persist one entry; returns its path."""
        root = self.root
        root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        payload = {"key": key, "version": CACHE_VERSION, "result": result.to_dict()}
        descriptor, tmp_name = tempfile.mkstemp(dir=str(root), suffix=".tmp")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:
            return 0
