"""Content hashing for configurations and simulation jobs.

The disk cache and the ``alone_ipc`` memo must distinguish *every* field
of a :class:`~repro.params.SystemConfig`.  A hand-picked tuple of
"important" fields silently collides the moment a new knob is added —
the seed repo's ``_config_key`` ignored ``dram.banks_per_channel`` and
the APD drop thresholds, so two different systems shared one cache
entry.  Hashing the canonical JSON form of the whole dataclass tree
makes that class of bug structurally impossible: a new field changes the
hash by construction.

The one sanctioned escape hatch is declared *at the field*, not here: a
dataclass field carrying ``metadata={"exclude_from_hash": True}`` is
skipped.  It exists for knobs that select among certified-identical
implementations (``SystemConfig.backend``: every backend produces
byte-identical results, so a cached result answers for all of them).
Because the exclusion is declared on the field next to its
justification — and asserted by tests — it cannot silently collide the
way a hand-picked inclusion list can.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass


def canonicalize(obj):
    """Reduce ``obj`` to JSON-serializable primitives, deterministically.

    Dataclasses become ``{"__dataclass__": <type name>, <field>: ...}``
    so two different dataclass types with identical field values do not
    alias.  Tuples and lists both become lists; dict keys are sorted.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        body = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in fields(obj)
            if not f.metadata.get("exclude_from_hash")
        }
        return {"__dataclass__": type(obj).__name__, **body}
    if isinstance(obj, dict):
        return {
            str(key): canonicalize(value)
            for key, value in sorted(obj.items(), key=lambda item: str(item[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for hashing")


def content_hash(obj) -> str:
    """SHA-256 over the canonical JSON encoding of ``obj``."""
    payload = json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_fingerprint(config) -> str:
    """Complete content hash of a SystemConfig (every field, every level)."""
    return content_hash(config)
