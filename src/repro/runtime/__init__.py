"""Parallel execution + persistent result caching for the experiment pipeline.

* :mod:`repro.runtime.hashing` — canonical content hashes of configs/jobs;
* :mod:`repro.runtime.store` — the on-disk SimResult cache;
* :mod:`repro.runtime.parallel` — :class:`SimJob`, the serial/parallel
  :class:`Runtime`, and the process-wide ``get_runtime``/``configure``.

Every entry point that runs simulations (``run_policies``, ``alone_ipc``,
the CLIs, the benchmark harness) submits through this layer, so the
``--jobs``/``--cache-dir`` knobs and ``$REPRO_JOBS``/``$REPRO_CACHE_DIR``/
``$REPRO_CACHE`` variables apply uniformly.
"""

from repro.runtime.hashing import canonicalize, config_fingerprint, content_hash
from repro.runtime.parallel import (
    JobExecutionError,
    Runtime,
    SimJob,
    configure,
    execute_job,
    get_runtime,
    job_summary,
    reset,
)
from repro.runtime.store import CACHE_VERSION, ResultStore, cache_key, default_cache_dir

__all__ = [
    "CACHE_VERSION",
    "JobExecutionError",
    "ResultStore",
    "Runtime",
    "SimJob",
    "cache_key",
    "canonicalize",
    "config_fingerprint",
    "configure",
    "content_hash",
    "default_cache_dir",
    "execute_job",
    "get_runtime",
    "job_summary",
    "reset",
]
