"""Common prefetcher interface.

A prefetcher observes every L2 access of its core and returns candidate
line addresses to prefetch.  The system layer is responsible for
suppressing candidates that already hit in the cache or MSHRs, applying
filters, and admitting the survivors into the memory request buffer.
"""

from __future__ import annotations

from typing import List

from repro.params import PrefetcherConfig


class Prefetcher:
    """Base class for hardware prefetchers."""

    name = "abstract"

    def on_access(
        self,
        line_addr: int,
        was_hit: bool,
        pc: int = 0,
        allocate: bool = True,
    ) -> List[int]:
        """Observe one L2 access; return candidate prefetch line addresses.

        ``allocate=False`` implements the *only-train* update policy used
        during runahead execution (paper §6.14): existing structures are
        trained but no new stream/table entries are created.
        """
        raise NotImplementedError

    @property
    def aggressiveness(self):  # pragma: no cover - informational
        """(degree, distance) if meaningful for this prefetcher."""
        return None

    def set_aggressiveness(self, degree: int, distance: int) -> None:
        """Adopt an FDP throttling decision.

        Table-based prefetchers (stride/CDC/Markov) have no
        degree/distance knob, so FDP's level moves are recorded by the
        controller but have no effect here.  Only stream-style
        prefetchers override this.  (Found by the differential fuzzer:
        ``filter_kind="fdp"`` with a non-stream prefetcher used to crash
        at the first interval boundary.)
        """

    def rewind(self, count: int) -> None:
        """The memory system could not accept the last ``count`` candidates.

        Stream-style prefetchers roll their pointer back so the lines are
        re-attempted on the next trigger instead of being skipped forever
        (a real stream engine's prefetch pointer only advances when a
        request actually issues).  Table-based prefetchers ignore this.
        """


class NullPrefetcher(Prefetcher):
    """Prefetching disabled."""

    name = "none"

    def on_access(self, line_addr, was_hit, pc=0, allocate=True) -> List[int]:
        return []


def make_prefetcher(config: PrefetcherConfig) -> Prefetcher:
    """Instantiate the prefetcher named by ``config.kind``."""
    from repro.prefetch.cdc import CDCPrefetcher
    from repro.prefetch.markov import MarkovPrefetcher
    from repro.prefetch.stream import StreamPrefetcher
    from repro.prefetch.stride import StridePrefetcher

    if config.kind == "none":
        return NullPrefetcher()
    if config.kind == "stream":
        return StreamPrefetcher(
            num_streams=config.num_streams,
            degree=config.degree,
            distance=config.distance,
        )
    if config.kind == "stride":
        return StridePrefetcher(degree=config.degree)
    if config.kind == "cdc":
        return CDCPrefetcher(degree=config.degree)
    if config.kind == "markov":
        return MarkovPrefetcher(degree=min(config.degree, 2))
    raise ValueError(f"unknown prefetcher kind: {config.kind!r}")
