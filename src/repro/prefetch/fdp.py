"""Feedback-Directed Prefetching (Srinath et al. [32], paper §6.12).

FDP adjusts the stream prefetcher's aggressiveness — a (degree, distance)
pair chosen from five levels, Very Conservative through Very Aggressive —
at every accuracy-sampling interval, using three feedback signals:

* **accuracy** (useful / sent, from the interval's PSC/PUC);
* **lateness** (useful prefetches that were matched by a demand while
  still in flight / useful prefetches);
* **pollution** (demand misses to lines recently evicted by prefetch
  fills, tracked in a fixed-size filter).

The decision table follows the published mechanism: accurate-and-late
prefetching is made more aggressive, inaccurate or polluting prefetching
is throttled down.  As the paper notes, FDP reacts slowly when a new
program phase begins — a property this implementation shares, since level
changes move one step per interval.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.prefetch.stream import StreamPrefetcher

# (degree, distance) per aggressiveness level, from Srinath et al.
AGGRESSIVENESS_LEVELS: Tuple[Tuple[int, int], ...] = (
    (1, 4),    # very conservative
    (1, 8),    # conservative
    (2, 16),   # middle-of-the-road
    (4, 32),   # aggressive
    (4, 64),   # very aggressive
)


class PollutionFilter:
    """Fixed-size filter of demand lines evicted by prefetch fills."""

    __slots__ = ("mask", "bits")

    def __init__(self, size_bits: int = 12):
        self.mask = (1 << size_bits) - 1
        self.bits = bytearray(1 << size_bits)

    def record_eviction(self, line_addr: int) -> None:
        self.bits[line_addr & self.mask] = 1

    def check_miss(self, line_addr: int) -> bool:
        """True if this demand miss was plausibly caused by pollution."""
        index = line_addr & self.mask
        if self.bits[index]:
            self.bits[index] = 0
            return True
        return False


class FDPController:
    """Per-core feedback-directed throttle for a stream prefetcher."""

    __slots__ = (
        "prefetcher",
        "accuracy_high",
        "accuracy_low",
        "lateness_threshold",
        "pollution_threshold",
        "level",
        "pollution_filter",
        "level_changes",
        "sent",
        "used",
        "late",
        "pollution_misses",
        "demand_misses",
    )

    def __init__(
        self,
        prefetcher: StreamPrefetcher,
        accuracy_high: float = 0.90,
        accuracy_low: float = 0.40,
        lateness_threshold: float = 0.01,
        pollution_threshold: float = 0.005,
        initial_level: int = 4,
    ):
        self.prefetcher = prefetcher
        self.accuracy_high = accuracy_high
        self.accuracy_low = accuracy_low
        self.lateness_threshold = lateness_threshold
        self.pollution_threshold = pollution_threshold
        self.level = initial_level
        self.pollution_filter = PollutionFilter()
        # Lifetime count of level moves (telemetry observable).
        self.level_changes = 0
        # Interval counters, reset by ``adjust``.
        self.sent = 0
        self.used = 0
        self.late = 0
        self.pollution_misses = 0
        self.demand_misses = 0
        self._apply()

    def _apply(self) -> None:
        degree, distance = AGGRESSIVENESS_LEVELS[self.level]
        self.prefetcher.set_aggressiveness(degree, distance)

    def _step(self, delta: int) -> None:
        new_level = max(0, min(len(AGGRESSIVENESS_LEVELS) - 1, self.level + delta))
        if new_level != self.level:
            self.level_changes += 1
        self.level = new_level

    def adjust(self) -> int:
        """End-of-interval decision; returns the new level."""
        sent, used = self.sent, self.used
        accuracy: Optional[float] = used / sent if sent else None
        lateness = self.late / used if used else 0.0
        pollution = (
            self.pollution_misses / self.demand_misses if self.demand_misses else 0.0
        )
        if accuracy is not None:
            polluting = pollution > self.pollution_threshold
            late = lateness > self.lateness_threshold
            if accuracy >= self.accuracy_high:
                if late:
                    self._step(+1)
            elif accuracy >= self.accuracy_low:
                if polluting:
                    self._step(-1)
                elif late:
                    self._step(+1)
            else:
                self._step(-1)
        self._apply()
        self.sent = 0
        self.used = 0
        self.late = 0
        self.pollution_misses = 0
        self.demand_misses = 0
        return self.level
