"""PC-based stride prefetcher (Baer & Chen [1], paper §2.2).

A table indexed by the load PC records the last address and the last
observed stride with a 2-bit confidence counter.  Once the same stride is
seen twice, the prefetcher issues ``degree`` prefetches continuing the
stride pattern.

The table is a plain insertion-ordered dict used as an LRU: a hit pops
and reinserts the entry (MRU at the back, two C dict operations) and
eviction removes the front key via ``next(iter(...))`` — measurably
cheaper per access than ``OrderedDict``'s linked-list bookkeeping
(DESIGN.md §15).
"""

from __future__ import annotations

from typing import Dict, List

from repro.prefetch.base import Prefetcher


class _StrideEntry:
    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self, last_addr: int):
        self.last_addr = last_addr
        self.stride = 0
        self.confidence = 0


class StridePrefetcher(Prefetcher):
    """Classic per-PC stride detection with confidence counters."""

    name = "stride"

    def __init__(self, table_size: int = 256, degree: int = 4, threshold: int = 2):
        self.table_size = table_size
        self.degree = degree
        self.threshold = threshold
        self._table: Dict[int, _StrideEntry] = {}

    @property
    def aggressiveness(self):
        return (self.degree, self.degree)

    def on_access(self, line_addr, was_hit, pc=0, allocate=True) -> List[int]:
        table = self._table
        entry = table.pop(pc, None)
        if entry is None:
            if not allocate:
                return []
            if len(table) >= self.table_size:
                del table[next(iter(table))]
            table[pc] = _StrideEntry(line_addr)
            return []
        table[pc] = entry  # reinsert at the MRU end
        stride = line_addr - entry.last_addr
        entry.last_addr = line_addr
        if stride == 0:
            return []
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 3)
        else:
            entry.confidence -= 1
            if entry.confidence <= 0:
                entry.stride = stride
                entry.confidence = 1
            return []
        if entry.confidence < self.threshold:
            return []
        prefetches = [
            line_addr + entry.stride * step for step in range(1, self.degree + 1)
        ]
        return [address for address in prefetches if address >= 0]
