"""Hardware prefetchers and prefetch filters.

* :class:`~repro.prefetch.stream.StreamPrefetcher` — the paper's primary
  prefetcher (IBM POWER4/5-style, §2.3): 32 streams, prefetch degree 4,
  prefetch distance 64 lines.
* :class:`~repro.prefetch.stride.StridePrefetcher` — PC-based stride [1].
* :class:`~repro.prefetch.cdc.CDCPrefetcher` — CZone/Delta-Correlation [24].
* :class:`~repro.prefetch.markov.MarkovPrefetcher` — correlation-based [7].
* :class:`~repro.prefetch.ddpf.DDPFFilter` — dynamic data prefetch
  filtering [41] (compared against APD in §6.12).
* :class:`~repro.prefetch.fdp.FDPController` — feedback-directed
  aggressiveness throttling [32] (also §6.12).
"""

from repro.prefetch.base import Prefetcher, make_prefetcher
from repro.prefetch.cdc import CDCPrefetcher
from repro.prefetch.ddpf import DDPFFilter
from repro.prefetch.fdp import FDPController
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.stream import StreamPrefetcher
from repro.prefetch.stride import StridePrefetcher

__all__ = [
    "Prefetcher",
    "make_prefetcher",
    "StreamPrefetcher",
    "StridePrefetcher",
    "CDCPrefetcher",
    "MarkovPrefetcher",
    "DDPFFilter",
    "FDPController",
]
