"""Aggressive stream prefetcher, modelled on IBM POWER4/5 (paper §2.3).

Each of the ``num_streams`` entries walks through three states:

1. **allocated** — a miss outside every existing stream records the line
   address as the start pointer S;
2. **training** — a subsequent access within ``train_distance`` lines of S
   fixes the stream direction and establishes the monitoring region
   [S, S + D·dir] where D is the prefetch distance;
3. **monitoring** — an access inside the monitoring region issues N
   (prefetch degree) consecutive prefetches beyond the region's leading
   edge and shifts the region forward by N lines.

The degree/distance pair is mutable so that FDP (paper §6.12) can throttle
the aggressiveness at interval boundaries.

Hot-path layout (DESIGN.md §15): every entry carries a *normalized*
match interval ``[lo, hi]`` maintained at the handful of mutation sites
(allocate, train, trigger, rewind).  The per-access ``_find`` scan — one
run over up to ``num_streams`` entries per L2 access — then reduces to a
single range compare per entry, with no state branch and no low/high
swap for descending streams.  ``mon_start``/``mon_end`` keep the paper's
directed-region semantics (and the existing tests' expectations); lo/hi
are derived bookkeeping only.
"""

from __future__ import annotations

from typing import List, Optional

from repro.prefetch.base import Prefetcher

_ALLOCATED = 0
_MONITORING = 1


class StreamEntry:
    """One tracked stream."""

    __slots__ = (
        "state",
        "start",
        "direction",
        "mon_start",
        "mon_end",
        "last_use",
        "lo",
        "hi",
    )

    def __init__(self, start: int, now_tick: int, train_distance: int = 0):
        self.state = _ALLOCATED
        self.start = start
        self.direction = 0
        self.mon_start = start
        self.mon_end = start
        self.last_use = now_tick
        # Normalized match window: while allocated, an access within
        # train_distance of S trains the stream; while monitoring, the
        # window is the (direction-normalized) monitoring region.
        self.lo = start - train_distance
        self.hi = start + train_distance

    def contains(self, line_addr: int) -> bool:
        low, high = self.mon_start, self.mon_end
        if low > high:
            low, high = high, low
        return low <= line_addr <= high

    def near_start(self, line_addr: int, train_distance: int) -> bool:
        return abs(line_addr - self.start) <= train_distance


class StreamPrefetcher(Prefetcher):
    """POWER4/5-style sequential stream prefetcher."""

    name = "stream"

    def __init__(
        self,
        num_streams: int = 32,
        degree: int = 4,
        distance: int = 64,
        train_distance: int = 16,
    ):
        self.num_streams = num_streams
        self.degree = degree
        self.distance = distance
        self.train_distance = train_distance
        self.entries: List[StreamEntry] = []
        self._tick = 0
        self._last_triggered: Optional[StreamEntry] = None

    @property
    def aggressiveness(self):
        return (self.degree, self.distance)

    def set_aggressiveness(self, degree: int, distance: int) -> None:
        """Used by FDP to throttle/boost the prefetcher."""
        self.degree = degree
        self.distance = distance

    def _find(self, line_addr: int) -> Optional[StreamEntry]:
        # First match wins (regions may overlap), same order as the
        # allocation list — the normalized lo/hi window makes this a
        # single compare per entry regardless of state or direction.
        for entry in self.entries:
            if entry.lo <= line_addr <= entry.hi:
                return entry
        return None

    def _allocate(self, line_addr: int) -> None:
        entries = self.entries
        if len(entries) >= self.num_streams:
            # LRU victim by manual scan: min(entries, key=lambda ...) pays
            # a lambda call per entry on every allocation.
            victim = entries[0]
            best = victim.last_use
            for entry in entries:
                last_use = entry.last_use
                if last_use < best:
                    best = last_use
                    victim = entry
            entries.remove(victim)
        entries.append(StreamEntry(line_addr, self._tick, self.train_distance))

    def on_access(self, line_addr, was_hit, pc=0, allocate=True) -> List[int]:
        self._tick += 1
        entry = self._find(line_addr)
        if entry is None:
            # Only a demand *miss* outside all streams allocates (§2.3); the
            # only-train policy additionally suppresses allocation (§6.14).
            if not was_hit and allocate:
                self._allocate(line_addr)
            return []
        entry.last_use = self._tick
        if entry.state == _ALLOCATED:
            if line_addr == entry.start:
                return []
            start = entry.start
            direction = 1 if line_addr > start else -1
            end = start + self.distance * direction
            entry.direction = direction
            entry.mon_start = start
            entry.mon_end = end
            entry.state = _MONITORING
            if direction > 0:
                entry.lo = start
                entry.hi = end
            else:
                entry.lo = end
                entry.hi = start
            return []
        # Monitoring: issue degree prefetches past the leading edge, then
        # shift the monitoring region forward by the same amount.
        direction = entry.direction
        edge = entry.mon_end
        degree = self.degree
        shift = degree * direction
        entry.mon_end = edge + shift
        entry.mon_start += shift
        entry.lo += shift
        entry.hi += shift
        self._last_triggered = entry
        if direction > 0:
            # Ascending streams (the common case) build the batch at C
            # speed; negative addresses are unreachable going up.
            return list(range(edge + 1, edge + degree + 1))
        return [
            address
            for address in range(edge - 1, edge - degree - 1, -1)
            if address >= 0
        ]

    def rewind(self, count: int) -> None:
        """Roll the last triggered stream back ``count`` lines.

        Called when the memory system rejected the tail of the last
        candidate batch (MSHR or request buffer full): the monitoring
        region retreats so the same lines are re-attempted on the next
        trigger rather than skipped (which would permanently lose
        coverage, the effect paper §6.1 attributes to full buffers).
        """
        entry = self._last_triggered
        if entry is None or count <= 0 or entry.state != _MONITORING:
            return
        retreat = min(count, self.degree) * entry.direction
        entry.mon_end -= retreat
        entry.mon_start -= retreat
        entry.lo -= retreat
        entry.hi -= retreat
