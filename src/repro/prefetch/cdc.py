"""CZone/Delta-Correlation (C/DC) prefetcher (Nesbit et al. [24], §2.2).

The address space is split statically into fixed-size CZones.  Per zone,
the prefetcher keeps the recent history of address *deltas*.  On each
access it searches for the most recent earlier occurrence of the last two
deltas (delta correlation); when found, the deltas that followed that
occurrence are replayed from the current address as prefetch candidates.
"""

from __future__ import annotations

from typing import Dict, List

from repro.prefetch.base import Prefetcher


class _ZoneEntry:
    __slots__ = ("last_addr", "deltas")

    def __init__(self, last_addr: int):
        self.last_addr = last_addr
        self.deltas: List[int] = []


class CDCPrefetcher(Prefetcher):
    """Delta-correlation prefetching within CZones."""

    name = "cdc"

    def __init__(
        self,
        czone_lines_log2: int = 10,
        zones: int = 64,
        history: int = 24,
        degree: int = 4,
    ):
        self.czone_shift = czone_lines_log2
        self.zones = zones
        self.history = history
        self.degree = degree
        # Plain insertion-ordered dict as LRU: pop+reinsert on hit,
        # evict the front key (DESIGN.md §15).
        self._table: Dict[int, _ZoneEntry] = {}

    @property
    def aggressiveness(self):
        return (self.degree, self.degree)

    def on_access(self, line_addr, was_hit, pc=0, allocate=True) -> List[int]:
        zone = line_addr >> self.czone_shift
        table = self._table
        entry = table.pop(zone, None)
        if entry is None:
            if not allocate:
                return []
            if len(table) >= self.zones:
                del table[next(iter(table))]
            table[zone] = _ZoneEntry(line_addr)
            return []
        table[zone] = entry  # reinsert at the MRU end
        delta = line_addr - entry.last_addr
        entry.last_addr = line_addr
        if delta == 0:
            return []
        deltas = entry.deltas
        deltas.append(delta)
        if len(deltas) > self.history:
            del deltas[: len(deltas) - self.history]
        if len(deltas) < 3:
            return []
        # Correlate on the last two deltas: find their most recent earlier
        # occurrence and replay what followed it.
        pair = (deltas[-2], deltas[-1])
        prefetches: List[int] = []
        for index in range(len(deltas) - 3, 0, -1):
            if (deltas[index - 1], deltas[index]) == pair:
                address = line_addr
                for future_delta in deltas[index + 1 : index + 1 + self.degree]:
                    address += future_delta
                    if address >= 0:
                        prefetches.append(address)
                break
        return prefetches
