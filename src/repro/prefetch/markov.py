"""Markov prefetcher (Joseph & Grunwald [7], paper §2.2).

A correlation table maps a miss address to the miss addresses that have
followed it, most-recent-first.  On a miss, the recorded successors of the
missing address are prefetched.  The table is trained only on demand
misses (temporal correlation), which is why it fares poorly on SPEC-like
workloads (paper §6.11) — a behaviour our reproduction preserves.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.prefetch.base import Prefetcher


class MarkovPrefetcher(Prefetcher):
    """Miss-correlation prefetching with an LRU-managed table."""

    name = "markov"

    def __init__(self, table_size: int = 4096, successors: int = 2, degree: int = 2):
        self.table_size = table_size
        self.successors = successors
        self.degree = degree
        # Plain insertion-ordered dict as LRU: pop+reinsert on touch,
        # evict the front key (DESIGN.md §15).
        self._table: Dict[int, List[int]] = {}
        self._last_miss: Optional[int] = None

    @property
    def aggressiveness(self):
        return (self.degree, self.degree)

    def on_access(self, line_addr, was_hit, pc=0, allocate=True) -> List[int]:
        if was_hit:
            return []
        if self._last_miss is not None and allocate:
            table = self._table
            last_miss = self._last_miss
            successors = table.pop(last_miss, None)
            if successors is None:
                if len(table) >= self.table_size:
                    del table[next(iter(table))]
                table[last_miss] = [line_addr]
            else:
                if line_addr in successors:
                    successors.remove(line_addr)
                successors.insert(0, line_addr)
                del successors[self.successors :]
                table[last_miss] = successors  # reinsert at the MRU end
        self._last_miss = line_addr
        recorded = self._table.get(line_addr)
        if not recorded:
            return []
        return list(recorded[: self.degree])
