"""Dynamic Data Prefetch Filtering (Zhuang & Lee [41], paper §6.12).

A gshare-style Prefetch History Table of 2-bit counters predicts whether a
prefetch to an address will be useful, based on whether past prefetches
with the same index were.  The index hashes the candidate line address
with the triggering PC (the paper's PC-based gshare variant).

Training feedback comes from the cache/memory system:

* a prefetched line used by a demand → strengthen (useful);
* a prefetched line evicted unused, or a prefetch dropped → weaken.

As the paper observes, aliasing in the finite table makes DDPF filter out
useful prefetches along with useless ones — that emerges naturally here.
"""

from __future__ import annotations

from typing import List


class DDPFFilter:
    """PC-based gshare prefetch filter with a 2-bit counter PHT."""

    def __init__(self, table_bits: int = 12, threshold: int = 1, initial: int = 3):
        self.size = 1 << table_bits
        self.mask = self.size - 1
        self.threshold = threshold
        self.table: List[int] = [initial] * self.size
        self.filtered = 0
        self.allowed = 0

    def _index(self, line_addr: int, pc: int) -> int:
        return (line_addr ^ (pc << 3) ^ (line_addr >> 12)) & self.mask

    def allow(self, line_addr: int, pc: int = 0) -> bool:
        """Predict usefulness; True means the prefetch may be issued."""
        if self.table[self._index(line_addr, pc)] >= self.threshold:
            self.allowed += 1
            return True
        self.filtered += 1
        return False

    def train(self, line_addr: int, useful: bool, pc: int = 0) -> None:
        """Update the PHT with the observed outcome of a past prefetch."""
        index = self._index(line_addr, pc)
        if useful:
            self.table[index] = min(self.table[index] + 1, 3)
        else:
            self.table[index] = max(self.table[index] - 1, 0)
