"""The interval-telemetry trace schema (:class:`SimTrace`).

A trace is a set of per-interval time series sampled by the
:class:`~repro.telemetry.collector.TelemetryCollector` at the
simulator's accuracy-interval boundaries (the paper's 100K-cycle PAR
recomputation points, §4.1), plus one final partial-interval sample at
end-of-sim.  It is column-oriented:

* ``intervals`` — the cycle at which each sample was taken (strictly
  increasing; the last entry may close a partial interval);
* ``core_series[name][core][i]`` — per-core series, one value per core
  per sample;
* ``system_series[name][i]`` — system-wide series, one value per sample.

The schema is versioned (:data:`TRACE_SCHEMA_VERSION`) and validated:
:meth:`SimTrace.validate` rejects ragged series, unknown shapes and
non-monotonic interval stamps, so a trace that round-trips through JSON
(`to_dict`/`from_dict`), the result store, or a campaign export is
either well-formed or loudly broken.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping

TRACE_SCHEMA_VERSION = 1

# Canonical series names (a trace must carry exactly these).
CORE_SERIES = (
    "par",                  # PAR after the interval's recomputation
    "prefetch_critical",    # 1 = above the promotion threshold (APS C bit)
    "drop_threshold",       # APD drop threshold in cycles (Table 6 tier)
    "pf_sent",              # prefetches sent this interval (PSC)
    "pf_used",              # prefetches proven useful this interval (PUC)
    "pf_dropped",           # APD drops charged to this core this interval
    "stall_cycles",         # core stall cycles accrued this interval
    "mshr_occupancy_mean",  # mean of per-tick MSHR occupancy samples
    "mshr_occupancy_max",   # MSHR high-water mark this interval
    "fdp_level",            # FDP aggressiveness level (-1 without FDP)
)
SYSTEM_SERIES = (
    "row_hits",               # bank accesses that hit the open row
    "row_closed",             # accesses to a precharged bank
    "row_conflicts",          # accesses that had to close another row
    "drops",                  # APD drops across all cores
    "demand_overflows",       # demands parked in the overflow FIFO
    "bus_utilization",        # booked data-bus cycles / interval cycles
    "bank_utilization",       # mean busy fraction across all banks
    "buffer_occupancy_mean",  # mean of per-tick request-buffer samples
    "buffer_occupancy_max",   # request-buffer high-water mark
)


class TraceSchemaError(ValueError):
    """A SimTrace payload violates the schema contract."""


@dataclass
class SimTrace:
    """Schema-versioned interval telemetry of one simulation run."""

    interval_cycles: int
    num_cores: int
    policy: str = ""
    promotion_threshold: float = 0.0
    intervals: List[int] = field(default_factory=list)
    core_series: Dict[str, List[List[float]]] = field(default_factory=dict)
    system_series: Dict[str, List[float]] = field(default_factory=dict)
    schema_version: int = TRACE_SCHEMA_VERSION

    # -- views ----------------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        return len(self.intervals)

    def core(self, name: str) -> List[List[float]]:
        """Per-core series ``name``: ``[core][interval]``."""
        try:
            return self.core_series[name]
        except KeyError:
            raise TraceSchemaError(
                f"unknown core series {name!r}; known: {', '.join(CORE_SERIES)}"
            ) from None

    def system(self, name: str) -> List[float]:
        """System-wide series ``name``: ``[interval]``."""
        try:
            return self.system_series[name]
        except KeyError:
            raise TraceSchemaError(
                f"unknown system series {name!r}; known: {', '.join(SYSTEM_SERIES)}"
            ) from None

    # -- validation ------------------------------------------------------------

    def validate(self) -> "SimTrace":
        """Check the schema contract; returns self so calls chain."""
        problems: List[str] = []
        if self.schema_version != TRACE_SCHEMA_VERSION:
            problems.append(
                f"schema_version {self.schema_version} unsupported "
                f"(this build reads {TRACE_SCHEMA_VERSION})"
            )
        if self.interval_cycles <= 0:
            problems.append(f"interval_cycles must be positive, got {self.interval_cycles}")
        if self.num_cores <= 0:
            problems.append(f"num_cores must be positive, got {self.num_cores}")
        n = len(self.intervals)
        if any(b <= a for a, b in zip(self.intervals, self.intervals[1:])):
            problems.append(f"interval stamps not strictly increasing: {self.intervals}")
        if set(self.core_series) != set(CORE_SERIES):
            problems.append(
                f"core series mismatch: have {sorted(self.core_series)}, "
                f"want {sorted(CORE_SERIES)}"
            )
        if set(self.system_series) != set(SYSTEM_SERIES):
            problems.append(
                f"system series mismatch: have {sorted(self.system_series)}, "
                f"want {sorted(SYSTEM_SERIES)}"
            )
        for name, per_core in self.core_series.items():
            if len(per_core) != self.num_cores:
                problems.append(
                    f"core series {name!r} has {len(per_core)} cores, "
                    f"want {self.num_cores}"
                )
                continue
            for core_id, series in enumerate(per_core):
                if len(series) != n:
                    problems.append(
                        f"core series {name!r} core {core_id} has "
                        f"{len(series)} samples, want {n}"
                    )
        for name, series in self.system_series.items():
            if len(series) != n:
                problems.append(
                    f"system series {name!r} has {len(series)} samples, want {n}"
                )
        if problems:
            raise TraceSchemaError(
                f"invalid SimTrace ({len(problems)} problem(s)):\n  - "
                + "\n  - ".join(problems)
            )
        return self

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-serializable form; exact inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SimTrace":
        try:
            return cls(
                interval_cycles=int(payload["interval_cycles"]),
                num_cores=int(payload["num_cores"]),
                policy=str(payload.get("policy", "")),
                promotion_threshold=float(payload.get("promotion_threshold", 0.0)),
                intervals=list(payload["intervals"]),
                core_series={
                    str(name): [list(series) for series in per_core]
                    for name, per_core in payload["core_series"].items()
                },
                system_series={
                    str(name): list(series)
                    for name, series in payload["system_series"].items()
                },
                schema_version=int(payload.get("schema_version", TRACE_SCHEMA_VERSION)),
            )
        except (KeyError, TypeError, AttributeError) as error:
            raise TraceSchemaError(f"malformed SimTrace payload: {error!r}") from None
