"""``python -m repro.telemetry`` — render and produce telemetry traces.

Subcommands::

    # per-interval report + phase summary from a saved SimResult JSON
    python -m repro.telemetry report result.json

    # run a quick traced simulation (through repro.api) and report it
    python -m repro.telemetry run --benchmarks swim,art --policy padc

    # phase summaries for every traced result of a campaign
    python -m repro.telemetry campaign runs/campaigns/smoke-abc123

``report`` accepts either a raw ``SimResult.to_dict()`` payload or a
result-store entry (the ``{"key", "version", "result"}`` envelope) and
exits 2 when the result carries no trace — i.e. the run was not made
with ``telemetry=True``.

``run --aggregates FILE`` writes the result *minus* its trace with
sorted keys; CI diffs these files between a traced and an untraced run
to enforce the telemetry-off equivalence contract.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.sim.results import SimResult
from repro.telemetry.report import phase_summary, render_report
from repro.telemetry.trace import TraceSchemaError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.telemetry",
        description="interval telemetry: reports and traced quick runs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="render a saved SimResult's trace")
    report.add_argument("file", help="SimResult JSON (raw or result-store entry)")
    report.add_argument("--max-rows", type=int, default=40)
    report.add_argument(
        "--summary-only", action="store_true", help="skip the interval table"
    )

    run = sub.add_parser("run", help="run one traced simulation and report it")
    run.add_argument(
        "--benchmarks",
        required=True,
        help="comma-separated benchmark names (one per core)",
    )
    run.add_argument("--policy", default="padc")
    run.add_argument("--accesses", type=int, default=4_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--interval",
        type=int,
        default=None,
        help="accuracy/sampling interval in cycles (default: config value)",
    )
    run.add_argument("--check", action="store_true", help="checked mode")
    run.add_argument(
        "--no-trace",
        action="store_true",
        help="run with telemetry off (for equivalence checks)",
    )
    run.add_argument("--output", default=None, help="write the full result JSON here")
    run.add_argument(
        "--aggregates",
        default=None,
        help="write the result JSON minus its trace here (sorted keys)",
    )
    run.add_argument("--max-rows", type=int, default=40)
    run.add_argument("--quiet", action="store_true", help="no report, files only")

    campaign = sub.add_parser(
        "campaign", help="phase summaries for a campaign's traced results"
    )
    campaign.add_argument("directory", help="campaign directory (spec + ledger)")
    campaign.add_argument(
        "--cache-dir",
        default=None,
        help="result store (default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    return parser


def _load_result(path: str) -> Optional[SimResult]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return None
    if isinstance(payload, dict) and "result" in payload and "cores" not in payload:
        payload = payload["result"]  # result-store envelope
    try:
        return SimResult.from_dict(payload)
    except (KeyError, TypeError, TraceSchemaError) as error:
        print(f"error: {path} is not a SimResult payload: {error}", file=sys.stderr)
        return None


def _report(result: SimResult, max_rows: int, summary_only: bool = False) -> int:
    if result.trace is None:
        print(
            "error: result has no telemetry trace "
            "(run with telemetry=True / without --no-trace)",
            file=sys.stderr,
        )
        return 2
    trace = result.trace.validate()
    if not summary_only:
        print(render_report(trace, max_rows=max_rows))
        print()
    print("phase summary:")
    for line in phase_summary(trace):
        print(f"  * {line}")
    return 0


def _cmd_report(args) -> int:
    result = _load_result(args.file)
    if result is None:
        return 2
    return _report(result, args.max_rows, args.summary_only)


def _cmd_run(args) -> int:
    from repro import api
    from repro.params import PolicyError, baseline_config

    benchmarks = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
    try:
        config = baseline_config(len(benchmarks), policy=args.policy)
    except PolicyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.interval is not None:
        config = config.with_policy(args.policy, accuracy_interval=args.interval)
    result = api.simulate(
        config,
        benchmarks,
        args.accesses,
        seed=args.seed,
        check=True if args.check else None,
        telemetry=not args.no_trace,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=1, sort_keys=True)
    if args.aggregates:
        aggregates = result.to_dict()
        aggregates.pop("trace", None)
        with open(args.aggregates, "w", encoding="utf-8") as handle:
            json.dump(aggregates, handle, indent=1, sort_keys=True)
    if args.quiet:
        return 0
    if args.no_trace:
        print(f"policy={result.policy} cycles={result.total_cycles} (untraced)")
        return 0
    return _report(result, args.max_rows)


def _cmd_campaign(args) -> int:
    from repro.campaign import Campaign, CampaignError
    from repro.runtime.store import ResultStore

    try:
        campaign = Campaign.open(args.directory)
    except CampaignError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    store = ResultStore(args.cache_dir)
    states = campaign.states()
    traced = untraced = missing = 0
    for job in campaign.unique_jobs():
        if states[job.key].status != "done":
            continue
        result = store.get(job.key)
        if result is None:
            missing += 1
            continue
        if result.trace is None:
            untraced += 1
            continue
        traced += 1
        print(f"{job.describe()}:")
        for line in phase_summary(result.trace.validate()):
            print(f"  * {line}")
    print(
        f"{traced} traced result(s), {untraced} untraced, "
        f"{missing} missing from the store"
    )
    return 0 if traced or not (untraced or missing) else 1


_COMMANDS = {
    "report": _cmd_report,
    "run": _cmd_run,
    "campaign": _cmd_campaign,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
