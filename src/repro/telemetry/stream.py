"""Streaming telemetry: per-interval sample records and their fold.

The post-hoc path materializes a :class:`~repro.telemetry.trace.SimTrace`
only at ``finalize()`` — a long campaign is a black box until each run
ends.  Streaming turns every accuracy-interval boundary into an emitted
**sample record** (via the collector's ``on_sample`` hook) that can land
in the campaign job store while the simulation is still running.

The stream is exactly the trace, re-cut row-wise:

* record 0 is the **header** — the trace's identity fields
  (``interval_cycles``, ``num_cores``, ``policy``,
  ``promotion_threshold``), emitted from ``on_start``;
* every following record is one **interval** — the cycle stamp plus the
  value each core/system series gained at that boundary, emitted right
  after the PAR-derived half of the sample is appended (so a record is
  only ever a *complete* row, never half a sample).

:func:`fold_samples` inverts the cut: header + interval records fold
back into a ``SimTrace`` that is **byte-identical** (same ``to_dict``
JSON) to the one ``finalize()`` returns — the equivalence contract
``tests/test_stream.py`` pins per backend.  :func:`records_from_trace`
is the other direction (trace → records), used to synthesize a stream
for cache-hit jobs whose trace already exists.

All values in a record are the exact Python objects appended to the
trace (ints, and floats already rounded by the collector), so a record
survives JSON/SQLite round-trips without drift: shortest-repr float
serialization is lossless both ways.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.telemetry.trace import CORE_SERIES, SYSTEM_SERIES, SimTrace

#: Version stamp carried by every header record; bump when the record
#: shape changes so a reader never misfolds an old stream.
STREAM_SCHEMA_VERSION = 1

#: Sample records buffered per batched insert (see :class:`SampleBatcher`).
DEFAULT_BATCH = 8


class StreamError(ValueError):
    """A sample stream violates the record contract (cannot be folded)."""


def header_record(trace: SimTrace) -> Dict:
    """The stream's record 0: the trace identity, emitted at ``on_start``."""
    return {
        "type": "header",
        "stream_version": STREAM_SCHEMA_VERSION,
        "interval_cycles": trace.interval_cycles,
        "num_cores": trace.num_cores,
        "policy": trace.policy,
        "promotion_threshold": trace.promotion_threshold,
    }


def interval_record(trace: SimTrace, index: int) -> Dict:
    """One complete sample row: interval ``index`` of every series."""
    return {
        "type": "interval",
        "cycle": trace.intervals[index],
        "core": {
            name: [per_core[index] for per_core in trace.core_series[name]]
            for name in CORE_SERIES
        },
        "system": {name: trace.system_series[name][index] for name in SYSTEM_SERIES},
    }


def records_from_trace(trace: SimTrace) -> List[Dict]:
    """Re-cut a finished trace into the records streaming would have emitted.

    Used for cache-hit jobs: their trace already exists, so the live view
    gets the same rows a cold run would have streamed.
    """
    return [header_record(trace)] + [
        interval_record(trace, index) for index in range(trace.num_intervals)
    ]


def fold_samples(records: Sequence[Dict]) -> SimTrace:
    """Fold streamed sample records back into a validated ``SimTrace``.

    The inverse of :func:`records_from_trace`: the result's ``to_dict``
    is byte-identical (as sorted JSON) to the post-hoc trace the same
    run finalizes.  Raises :class:`StreamError` on a missing/duplicate
    header, an unknown record type, or a version mismatch; ragged rows
    are caught by ``SimTrace.validate``.
    """
    records = list(records)
    if not records:
        raise StreamError("empty sample stream (no header record)")
    header = records[0]
    if header.get("type") != "header":
        raise StreamError(
            f"sample stream must start with a header record, "
            f"got type {header.get('type')!r}"
        )
    version = header.get("stream_version")
    if version != STREAM_SCHEMA_VERSION:
        raise StreamError(
            f"sample stream version {version!r} unsupported "
            f"(this build reads {STREAM_SCHEMA_VERSION})"
        )
    num_cores = int(header["num_cores"])
    trace = SimTrace(
        interval_cycles=int(header["interval_cycles"]),
        num_cores=num_cores,
        policy=str(header.get("policy", "")),
        promotion_threshold=header.get("promotion_threshold", 0.0),
        core_series={name: [[] for _ in range(num_cores)] for name in CORE_SERIES},
        system_series={name: [] for name in SYSTEM_SERIES},
    )
    for position, record in enumerate(records[1:], start=1):
        kind = record.get("type")
        if kind == "header":
            raise StreamError(f"duplicate header record at position {position}")
        if kind != "interval":
            raise StreamError(
                f"unknown sample record type {kind!r} at position {position}"
            )
        trace.intervals.append(record["cycle"])
        core_values = record["core"]
        for name in CORE_SERIES:
            values = core_values[name]
            if len(values) != num_cores:
                raise StreamError(
                    f"record {position}: core series {name!r} has "
                    f"{len(values)} values, want {num_cores}"
                )
            for core_id, value in enumerate(values):
                trace.core_series[name][core_id].append(value)
        system_values = record["system"]
        for name in SYSTEM_SERIES:
            trace.system_series[name].append(system_values[name])
    return trace.validate()


class SampleBatcher:
    """Buffer sample records and flush them in batches.

    The collector calls the batcher once per record (header included);
    every ``batch`` records it hands the buffered list to ``flush`` —
    one store transaction per batch rather than per sample.  Call
    :meth:`flush` explicitly at end-of-run for the tail (the worker does
    this before persisting the result, so the stream is complete before
    the job is journaled ``done``).
    """

    def __init__(
        self,
        sink: Callable[[List[Dict]], None],
        batch: int = DEFAULT_BATCH,
    ):
        self._sink = sink
        self._batch = max(1, int(batch))
        self._buffer: List[Dict] = []
        self.emitted = 0

    def __call__(self, record: Dict) -> None:
        self._buffer.append(record)
        if len(self._buffer) >= self._batch:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            buffered, self._buffer = self._buffer, []
            self._sink(buffered)
            self.emitted += len(buffered)


def streamed_execute(job, store, key: str, batch: int = DEFAULT_BATCH):
    """Run one job with live sample streaming into ``store``.

    ``store`` is any ledger backend with ``append_samples(key, records)``
    (the SQLite job store or the JSONL sidecar).  The job's own
    ``sim_kwargs`` are untouched — cache keys and the persisted result
    are identical to an unstreamed run; :func:`~repro.runtime.execute_job`
    strips the piggy-backed trace when the job did not ask for telemetry.
    """
    from repro.runtime import execute_job
    from repro.telemetry.collector import TelemetryCollector

    batcher = SampleBatcher(lambda records: store.append_samples(key, records), batch)
    collector = TelemetryCollector(on_sample=batcher)
    try:
        result = execute_job(job, telemetry=collector)
    finally:
        batcher.flush()
    return result
