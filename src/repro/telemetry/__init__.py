"""Interval telemetry: low-overhead time series of a simulation run.

The subsystem has three layers:

* :mod:`repro.telemetry.trace` — the schema-versioned :class:`SimTrace`
  container (per-interval PAR, drop, row-buffer, occupancy series);
* :mod:`repro.telemetry.collector` — the samplers: a
  :class:`NoopCollector` null object (telemetry off: zero per-event
  work) and the real :class:`TelemetryCollector` hooked at the
  simulator's accuracy-interval boundaries;
* :mod:`repro.telemetry.report` — plain-text interval tables and the
  phase summary, also exposed as ``python -m repro.telemetry``;
* :mod:`repro.telemetry.stream` — the live half (DESIGN.md §14): the
  collector's ``on_sample`` hook re-cuts the trace into per-interval
  sample records as they happen, :func:`fold_samples` folds a stream
  back into the byte-identical ``SimTrace``.

Enable tracing with ``repro.api.simulate(..., telemetry=True)``; the
trace rides on ``SimResult.trace`` through ``to_dict``, the result
store and campaign exports.  Streaming is the campaign layer's job
(``worker --stream``), never on by default.
"""

from repro.telemetry.collector import NoopCollector, TelemetryCollector, as_collector
from repro.telemetry.report import phase_summary, render_report
from repro.telemetry.stream import (
    STREAM_SCHEMA_VERSION,
    SampleBatcher,
    StreamError,
    fold_samples,
    records_from_trace,
)
from repro.telemetry.trace import (
    CORE_SERIES,
    SYSTEM_SERIES,
    TRACE_SCHEMA_VERSION,
    SimTrace,
    TraceSchemaError,
)

__all__ = [
    "CORE_SERIES",
    "STREAM_SCHEMA_VERSION",
    "SYSTEM_SERIES",
    "TRACE_SCHEMA_VERSION",
    "NoopCollector",
    "SampleBatcher",
    "SimTrace",
    "StreamError",
    "TelemetryCollector",
    "TraceSchemaError",
    "as_collector",
    "fold_samples",
    "phase_summary",
    "records_from_trace",
    "render_report",
]
