"""Interval telemetry: low-overhead time series of a simulation run.

The subsystem has three layers:

* :mod:`repro.telemetry.trace` — the schema-versioned :class:`SimTrace`
  container (per-interval PAR, drop, row-buffer, occupancy series);
* :mod:`repro.telemetry.collector` — the samplers: a
  :class:`NoopCollector` null object (telemetry off: zero per-event
  work) and the real :class:`TelemetryCollector` hooked at the
  simulator's accuracy-interval boundaries;
* :mod:`repro.telemetry.report` — plain-text interval tables and the
  phase summary, also exposed as ``python -m repro.telemetry``.

Enable tracing with ``repro.api.simulate(..., telemetry=True)``; the
trace rides on ``SimResult.trace`` through ``to_dict``, the result
store and campaign exports.
"""

from repro.telemetry.collector import NoopCollector, TelemetryCollector, as_collector
from repro.telemetry.report import phase_summary, render_report
from repro.telemetry.trace import (
    CORE_SERIES,
    SYSTEM_SERIES,
    TRACE_SCHEMA_VERSION,
    SimTrace,
    TraceSchemaError,
)

__all__ = [
    "CORE_SERIES",
    "SYSTEM_SERIES",
    "TRACE_SCHEMA_VERSION",
    "NoopCollector",
    "SimTrace",
    "TelemetryCollector",
    "TraceSchemaError",
    "as_collector",
    "phase_summary",
    "render_report",
]
