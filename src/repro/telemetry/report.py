"""Plain-text rendering of a :class:`~repro.telemetry.trace.SimTrace`.

Two views:

* :func:`render_report` — one table row per sampling interval (PAR per
  core, criticality bits, prefetch/drop counts, row-buffer breakdown,
  bus and buffer pressure);
* :func:`phase_summary` — a short narrative of phase behaviour: when
  each core crossed the promotion threshold, where APD drops spiked
  (and whether a threshold crossing preceded the spike), peak queue
  pressure, and FDP level movement.

Both are pure functions of the trace, so they render identically for a
live result, a cached one, or a campaign export.
"""

from __future__ import annotations

from typing import List

from repro.telemetry.trace import SimTrace

# A drop spike must exceed both this multiple of the all-interval mean
# and an absolute floor, so quiet traces do not report noise.
_SPIKE_FACTOR = 2.0
_SPIKE_MIN_DROPS = 4
# How many intervals after a downward PAR crossing a drop spike is
# still attributed to it.
_CAUSE_WINDOW = 3


def _fmt_cores(values, fmt: str) -> str:
    return "/".join(fmt.format(v) for v in values)


def render_report(trace: SimTrace, max_rows: int = 40) -> str:
    """Per-interval table; the middle is elided past ``max_rows`` rows."""
    n = trace.num_intervals
    header = (
        f"telemetry: policy={trace.policy or '?'} cores={trace.num_cores} "
        f"interval={trace.interval_cycles} cycles, {n} sample(s), "
        f"promotion threshold {trace.promotion_threshold:.2f}"
    )
    if n == 0:
        return header + "\n(no intervals sampled — run shorter than one interval?)"
    columns = (
        f"{'#':>4} {'cycle':>10} {'par':>17} {'crit':>5} {'sent':>6} "
        f"{'used':>6} {'drop':>5} {'row h/c/x':>17} {'bus%':>5} "
        f"{'buf avg/max':>12} {'stall%':>7}"
    )
    rows: List[str] = [header, columns]

    par = trace.core("par")
    crit = trace.core("prefetch_critical")
    sent = trace.core("pf_sent")
    used = trace.core("pf_used")
    stall = trace.core("stall_cycles")
    drops = trace.system("drops")
    row_h = trace.system("row_hits")
    row_c = trace.system("row_closed")
    row_x = trace.system("row_conflicts")
    bus = trace.system("bus_utilization")
    buf_mean = trace.system("buffer_occupancy_mean")
    buf_max = trace.system("buffer_occupancy_max")

    if n > max_rows:
        head = max_rows // 2
        shown = list(range(head)) + [-1] + list(range(n - (max_rows - head), n))
    else:
        shown = list(range(n))
    for i in shown:
        if i == -1:
            rows.append(f"{'...':>4} ({n - max_rows} interval(s) elided)")
            continue
        cycle = trace.intervals[i]
        elapsed = max(1, cycle - (trace.intervals[i - 1] if i else 0))
        stall_pct = 100.0 * sum(s[i] for s in stall) / (trace.num_cores * elapsed)
        rows.append(
            f"{i:>4} {cycle:>10} {_fmt_cores((p[i] for p in par), '{:.2f}'):>17} "
            f"{''.join(str(int(c[i])) for c in crit):>5} "
            f"{sum(s[i] for s in sent):>6} {sum(u[i] for u in used):>6} "
            f"{int(drops[i]):>5} "
            f"{f'{int(row_h[i])}/{int(row_c[i])}/{int(row_x[i])}':>17} "
            f"{100 * bus[i]:>5.1f} "
            f"{f'{buf_mean[i]:.1f}/{int(buf_max[i])}':>12} "
            f"{stall_pct:>7.1f}"
        )
    rows.append(
        "columns: par per core; crit = criticality bit per core; "
        "row h/c/x = hits/closed/conflicts; stall% = mean core stall share"
    )
    return "\n".join(rows)


def phase_summary(trace: SimTrace) -> List[str]:
    """Narrative phase events, one per line (empty trace → explanatory line)."""
    n = trace.num_intervals
    if n == 0:
        return ["no intervals sampled; nothing to summarize"]
    lines: List[str] = []
    threshold_pct = round(100 * trace.promotion_threshold)
    crit = trace.core("prefetch_critical")
    drops = trace.system("drops")

    # Promotion-threshold crossings (APS criticality flips), per core.
    down_crossings: List[tuple] = []
    for core_id in range(trace.num_cores):
        series = crit[core_id]
        for i in range(1, n):
            if series[i] == series[i - 1]:
                continue
            direction = "above" if series[i] else "below"
            lines.append(
                f"core {core_id} crossed {direction} the {threshold_pct}% "
                f"accuracy threshold at interval {i} "
                f"(cycle {trace.intervals[i]})"
            )
            if not series[i]:
                down_crossings.append((i, core_id))
    if not any(len(set(series)) > 1 for series in crit):
        if all(s[0] for s in crit):
            state = "above the threshold"
        elif not any(s[0] for s in crit):
            state = "below the threshold"
        else:
            state = "on its starting side"
        lines.append(
            f"no {threshold_pct}% threshold crossings; every core stayed "
            f"{state} throughout"
        )

    # APD drop spikes, attributed to a preceding downward crossing when
    # one happened within the causal window.
    if any(d > 0 for d in drops):
        mean = sum(drops) / len(drops)
        spike_floor = max(_SPIKE_MIN_DROPS, _SPIKE_FACTOR * mean)
        for i, count in enumerate(drops):
            if count < spike_floor:
                continue
            causes = [
                (i - at, core_id)
                for at, core_id in down_crossings
                if 0 <= i - at <= _CAUSE_WINDOW
            ]
            if causes:
                lag, core_id = min(causes)
                suffix = (
                    f" — {int(count)} drops, {lag} interval(s) after core "
                    f"{core_id} fell below the threshold"
                )
            else:
                suffix = f" ({int(count)} drops)"
            lines.append(f"drops spiked at interval {i}{suffix}")
    elif any(t > 0 for core in trace.core("pf_sent") for t in core):
        lines.append("no prefetches were dropped")

    # Peak queueing pressure.
    buf_max = trace.system("buffer_occupancy_max")
    peak = max(buf_max)
    if peak > 0:
        at = buf_max.index(peak)
        lines.append(
            f"request-buffer pressure peaked at interval {at} "
            f"(high-water {int(peak)} entries, "
            f"mean {trace.system('buffer_occupancy_mean')[at]:.1f})"
        )
    bus = trace.system("bus_utilization")
    busiest = max(bus)
    if busiest > 0:
        lines.append(
            f"data-bus utilization peaked at {100 * busiest:.1f}% "
            f"(interval {bus.index(busiest)})"
        )

    # FDP movement (level -1 means no FDP attached).
    fdp = trace.core("fdp_level")
    for core_id in range(trace.num_cores):
        series = fdp[core_id]
        if series[0] < 0:
            continue
        moves = sum(1 for a, b in zip(series, series[1:]) if a != b)
        if moves:
            lines.append(
                f"core {core_id} FDP moved {moves} time(s): level "
                f"{int(series[0])} -> {int(series[-1])}"
            )
    return lines
