"""Telemetry collectors: the null object and the real interval sampler.

The simulator talks to a collector through five hooks:

* ``on_start(system)`` — once, before the first event;
* ``on_tick(system, channel_id, now)`` — every DRAM scheduling round
  (guarded by ``System._telemetry_on``, so the disabled path pays one
  attribute test and nothing else);
* ``on_interval_pre(system, now)`` — at each accuracy-interval boundary
  *before* ``tracker.end_interval()`` resets PSC/PUC and before FDP
  adjusts, so the interval's raw counters are still live;
* ``on_interval_post(system, now)`` — same boundary, *after* the PAR
  recomputation, so the freshly derived PAR / criticality / drop
  threshold are visible;
* ``finalize(system, end_time)`` — at end-of-sim; closes a partial final
  interval and returns the :class:`~repro.telemetry.trace.SimTrace`
  (or ``None`` for the null object).

Everything the sampler reads is either an existing simulator counter or
one of the O(1) always-on counters added for telemetry (bank/bus busy
cycles, occupancy high-water marks, FDP level moves); the collector
differences them per interval, so per-event work stays out of the hot
path even when tracing.

Streaming (DESIGN.md §14): ``TelemetryCollector(on_sample=...)`` emits
one :mod:`~repro.telemetry.stream` record per completed sample — the
header at ``on_start``, then one interval record right after each
sample's PAR-derived half lands — so a sink (the campaign job store)
sees samples *while the run is in flight*.  The hook is strictly
read-only over the trace: with or without it, the collector appends the
exact same values, which is what makes streamed-then-folded traces
byte-identical to post-hoc ones.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.telemetry.trace import CORE_SERIES, SYSTEM_SERIES, SimTrace


class NoopCollector:
    """Telemetry disabled: every hook is a no-op, ``finalize`` is None.

    ``System`` checks the class attribute ``enabled`` once and skips the
    per-tick call entirely, so this object only sees the (cheap,
    unconditional) interval and lifecycle hooks.
    """

    enabled = False

    def on_start(self, system) -> None:
        pass

    def on_tick(self, system, channel_id: int, now: int) -> None:
        pass

    def on_interval_pre(self, system, now: int) -> None:
        pass

    def on_interval_post(self, system, now: int) -> None:
        pass

    def finalize(self, system, end_time: int) -> Optional[SimTrace]:
        return None


_NOOP = NoopCollector()


class TelemetryCollector(NoopCollector):
    """Interval-sampled telemetry of one simulation run.

    ``on_sample`` (optional) is called with one stream record per
    completed sample — see :mod:`repro.telemetry.stream` for the record
    shapes and the fold that reconstitutes the trace.
    """

    enabled = True

    def __init__(self, on_sample: Optional[Callable[[Dict], None]] = None):
        self._started = False
        self._trace: Optional[SimTrace] = None
        self._on_sample = on_sample

    # -- lifecycle -------------------------------------------------------------

    def on_start(self, system) -> None:
        if self._started:
            raise RuntimeError(
                "a TelemetryCollector records one run; build a new one "
                "(or call repro.api.simulate again) for another"
            )
        self._started = True
        config = system.config
        n = config.num_cores
        self._trace = SimTrace(
            interval_cycles=system.tracker.interval,
            num_cores=n,
            policy=config.policy,
            promotion_threshold=system.tracker.promotion_threshold,
            core_series={name: [[] for _ in range(n)] for name in CORE_SERIES},
            system_series={name: [] for name in SYSTEM_SERIES},
        )
        self._last_boundary = 0
        # Per-tick accumulators (reset every interval).
        self._buffer_sum = 0
        self._buffer_count = 0
        self._mshr_sum = [0] * n
        self._mshr_count = 0
        # Previous-boundary snapshots of lifetime counters.
        self._prev_stall = [0] * n
        self._prev_dropped = [0] * n
        self._prev_row = (0, 0, 0)
        self._prev_drops = 0
        self._prev_overflows = 0
        self._prev_bus_busy = 0
        self._prev_bank_busy = 0
        self._reset_peaks(system)
        if self._on_sample is not None:
            from repro.telemetry.stream import header_record

            self._on_sample(header_record(self._trace))

    def on_tick(self, system, channel_id: int, now: int) -> None:
        self._buffer_sum += system.engine.occupancy(channel_id)
        self._buffer_count += 1
        for core_id, mshr in enumerate(system._mshrs):
            self._mshr_sum[core_id] += mshr.occupancy
        self._mshr_count += 1

    def on_interval_pre(self, system, now: int) -> None:
        self._sample_counters(system, now, partial=False)

    def on_interval_post(self, system, now: int) -> None:
        self._sample_derived(system, now)

    def finalize(self, system, end_time: int) -> Optional[SimTrace]:
        trace = self._trace
        if trace is None:
            raise RuntimeError("finalize() before on_start()")
        if end_time > self._last_boundary:
            # Close the partial tail interval.  PSC/PUC are live (no
            # end_interval ran), and PAR & friends are as-of the last
            # recomputation — exactly what the simulator was acting on.
            self._sample_counters(system, end_time, partial=True)
            self._sample_derived(system, end_time)
        return trace.validate()

    # -- sampling --------------------------------------------------------------

    def _reset_peaks(self, system) -> None:
        """Re-arm high-water marks at the current level for the next interval."""
        engine = system.engine
        for channel_id in range(len(engine.peak_occupancy)):
            engine.peak_occupancy[channel_id] = engine.occupancy(channel_id)
        for mshr in {id(m): m for m in system._mshrs}.values():
            mshr.peak_occupancy = mshr.occupancy

    def _sample_counters(self, system, now: int, partial: bool) -> None:
        """First half of a sample: everything read *before* the PAR reset."""
        trace = self._trace
        core_series = trace.core_series
        tracker = system.tracker
        engine = system.engine
        elapsed = now - self._last_boundary

        for core_id, core in enumerate(system.cores):
            stats = system.results[core_id]
            core_series["pf_sent"][core_id].append(tracker.psc[core_id])
            core_series["pf_used"][core_id].append(tracker.puc[core_id])
            core_series["pf_dropped"][core_id].append(
                stats.pf_dropped - self._prev_dropped[core_id]
            )
            self._prev_dropped[core_id] = stats.pf_dropped
            # Charge an open stall up to the boundary so a core parked for
            # several intervals shows the pressure in each of them.
            effective_stall = core.stall_cycles + (
                now - core.stall_start if core.stalled and not core.done else 0
            )
            core_series["stall_cycles"][core_id].append(
                max(0, effective_stall - self._prev_stall[core_id])
            )
            self._prev_stall[core_id] = effective_stall
            mshr = system._mshrs[core_id]
            mean = (
                self._mshr_sum[core_id] / self._mshr_count
                if self._mshr_count
                else float(mshr.occupancy)
            )
            core_series["mshr_occupancy_mean"][core_id].append(round(mean, 4))
            core_series["mshr_occupancy_max"][core_id].append(
                max(mshr.peak_occupancy, mshr.occupancy)
            )

        system_series = trace.system_series
        banks = [bank for channel in engine.channels for bank in channel.banks]
        row = (
            sum(bank.hits for bank in banks),
            sum(bank.closed_accesses for bank in banks),
            sum(bank.conflicts for bank in banks),
        )
        system_series["row_hits"].append(row[0] - self._prev_row[0])
        system_series["row_closed"].append(row[1] - self._prev_row[1])
        system_series["row_conflicts"].append(row[2] - self._prev_row[2])
        self._prev_row = row
        system_series["drops"].append(
            engine.stats.dropped_prefetches - self._prev_drops
        )
        self._prev_drops = engine.stats.dropped_prefetches
        system_series["demand_overflows"].append(
            engine.stats.demand_overflows - self._prev_overflows
        )
        self._prev_overflows = engine.stats.demand_overflows

        bus_busy = sum(channel.bus_busy_cycles for channel in engine.channels)
        bank_busy = sum(bank.busy_cycles for bank in banks)
        channels = len(engine.channels)
        if elapsed > 0:
            bus_util = (bus_busy - self._prev_bus_busy) / (channels * elapsed)
            bank_util = (bank_busy - self._prev_bank_busy) / (len(banks) * elapsed)
        else:
            bus_util = bank_util = 0.0
        # Booked-ahead bursts can exceed the wall-clock interval; clamp so
        # the series reads as a fraction.
        system_series["bus_utilization"].append(round(min(1.0, bus_util), 4))
        system_series["bank_utilization"].append(round(min(1.0, bank_util), 4))
        self._prev_bus_busy = bus_busy
        self._prev_bank_busy = bank_busy

        occupancies = [engine.occupancy(c) for c in range(channels)]
        buffer_mean = (
            self._buffer_sum / self._buffer_count
            if self._buffer_count
            else float(max(occupancies, default=0))
        )
        system_series["buffer_occupancy_mean"].append(round(buffer_mean, 4))
        system_series["buffer_occupancy_max"].append(
            max(
                max(engine.peak_occupancy, default=0),
                max(occupancies, default=0),
            )
        )

        self._buffer_sum = 0
        self._buffer_count = 0
        self._mshr_sum = [0] * trace.num_cores
        self._mshr_count = 0
        self._reset_peaks(system)
        self._last_boundary = now

    def _sample_derived(self, system, now: int) -> None:
        """Second half: PAR-derived state, read *after* the recomputation."""
        trace = self._trace
        core_series = trace.core_series
        tracker = system.tracker
        for core_id in range(trace.num_cores):
            core_series["par"][core_id].append(round(tracker.par[core_id], 6))
            core_series["prefetch_critical"][core_id].append(
                int(tracker.prefetch_critical[core_id])
            )
            core_series["drop_threshold"][core_id].append(
                tracker.drop_threshold[core_id]
            )
            fdp = system._fdp[core_id]
            core_series["fdp_level"][core_id].append(
                fdp.level if fdp is not None else -1
            )
        trace.intervals.append(now)
        # The sample is complete (both halves appended): stream it.
        if self._on_sample is not None:
            from repro.telemetry.stream import interval_record

            self._on_sample(interval_record(trace, trace.num_intervals - 1))


CollectorLike = Union[None, bool, NoopCollector]


def as_collector(value: CollectorLike) -> NoopCollector:
    """Coerce the public ``telemetry=`` knob to a collector instance.

    ``None``/``False`` → the shared null object, ``True`` → a fresh
    :class:`TelemetryCollector`, a collector instance → itself.
    """
    if value is None or value is False:
        return _NOOP
    if value is True:
        return TelemetryCollector()
    if isinstance(value, NoopCollector):
        return value
    raise TypeError(
        f"telemetry must be None, a bool, or a collector instance; "
        f"got {type(value).__name__}"
    )
