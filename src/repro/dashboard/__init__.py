"""Live fleet dashboard over streamed campaign telemetry (DESIGN.md §14).

Two halves, mirroring the log-buffer/api split of stdlib web dashboards:

* :mod:`repro.dashboard.aggregate` — pure functions folding the campaign
  job store (states + streamed ``samples``) into the JSON the service
  endpoints return: progress/ETA, per-core PAR and drop-rate series,
  FDP aggressiveness histograms, queue-pressure rollups;
* :mod:`repro.dashboard.page` — the dependency-free static HTML+JS view
  (inline sparklines and the fleet heatmap) that polls those endpoints;
  served by ``python -m repro.campaign serve`` at ``/``.

Nothing here touches the simulator: the dashboard is a read-only
consumer of ``api.Campaign`` handles.
"""

from repro.dashboard.aggregate import (
    campaign_metrics,
    fdp_histogram,
    progress,
    queue_pressure,
    series,
)
from repro.dashboard.page import render_page

__all__ = [
    "campaign_metrics",
    "fdp_histogram",
    "progress",
    "queue_pressure",
    "render_page",
    "series",
]
