"""Fold campaign state + streamed samples into dashboard JSON.

Every function here is a pure fold over two sources:

* the job store's folded states (done/running/failed/... per job), and
* the streamed ``samples`` rows (header + per-interval records, see
  :mod:`repro.telemetry.stream`) that land while jobs run.

They are recomputed per request straight from the samples table — the
table *is* the incremental state (each batched insert advances it), so
the endpoints always reflect exactly what has landed, torn nothing.
All outputs are plain JSON-able dicts; ``api.Campaign.metrics()`` and
the service endpoints return them verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.campaign.ledger import status_counts
from repro.telemetry.trace import CORE_SERIES, SYSTEM_SERIES  # noqa: F401 - doc anchor


def _streams(store) -> Dict[str, List[Dict]]:
    """Streamed records grouped per job key, in stream order."""
    if not hasattr(store, "samples_since"):
        return {}
    rows, _ = store.samples_since(0)
    streams: Dict[str, List[Dict]] = {}
    for row in rows:
        streams.setdefault(row["key"], []).append(row["record"])
    return streams


def _split_stream(records: List[Dict]) -> Tuple[Optional[Dict], List[Dict]]:
    """(header, interval records) of one job's stream; header may be None
    if only a partial batch has landed yet."""
    header = None
    intervals = []
    for record in records:
        kind = record.get("type")
        if kind == "header" and header is None:
            header = record
        elif kind == "interval":
            intervals.append(record)
    return header, intervals


def _job_label(job) -> str:
    label = f"{'+'.join(job.benchmarks)} · {job.policy}"
    if job.variant not in ("", "base"):
        label += f" · {job.variant}"
    return f"{label} · seed {job.seed}"


def progress(campaign) -> Dict:
    """Campaign progress histogram + a naive serial ETA.

    ``eta_seconds`` extrapolates the mean elapsed time of finished jobs
    over everything not yet done — a live-view estimate (it ignores
    worker parallelism and cache hits), not an export-grade number.
    """
    jobs = campaign.unique_jobs()
    states = campaign.states()
    counts = status_counts(states[job.key] for job in jobs)
    total = len(jobs)
    done = counts.get("done", 0)
    elapsed = [
        states[job.key].elapsed
        for job in jobs
        if states[job.key].status == "done" and states[job.key].elapsed
    ]
    remaining = total - done
    eta = round(sum(elapsed) / len(elapsed) * remaining, 3) if elapsed and remaining else 0.0
    store = campaign.ledger
    sample_counts = store.sample_counts() if hasattr(store, "sample_counts") else {}
    return {
        "total": total,
        "counts": counts,
        "done": done,
        "complete": done == total,
        "eta_seconds": eta,
        "samples": sum(sample_counts.values()),
        "jobs_with_samples": len(sample_counts),
        "states": [
            {
                "key": job.key,
                "label": _job_label(job),
                "status": states[job.key].status,
                "samples": sample_counts.get(job.key, 0),
            }
            for job in jobs
        ],
    }


def series(campaign, *, max_jobs: Optional[int] = None, step: int = 1) -> Dict:
    """Per-core time series of every job that has streamed samples.

    For each job: the interval cycle stamps, per-core PAR, per-core
    drop rate (APD drops this interval per prefetch sent this interval,
    clamped to [0, 1]), per-core FDP level, and the request-buffer
    pressure pair — everything the dashboard sparklines draw.
    ``max_jobs`` caps the payload (expansion order wins); the response
    reports how many were dropped so truncation is never silent.

    ``step`` downsamples server-side: every ``step``-th interval record
    is kept (stride sampling from the first record, so the series start
    is stable as new samples land), shrinking long-run payloads by
    ``1/step`` while preserving shape.  The response echoes the applied
    ``step`` so clients can recover absolute interval spacing via
    ``interval_cycles * step``.
    """
    if step < 1:
        raise ValueError(f"step must be >= 1, got {step}")
    streams = _streams(campaign.ledger)
    ordered = [job for job in campaign.unique_jobs() if job.key in streams]
    dropped = 0
    if max_jobs is not None and len(ordered) > max_jobs:
        dropped = len(ordered) - max_jobs
        ordered = ordered[:max_jobs]
    out = []
    for job in ordered:
        header, intervals = _split_stream(streams[job.key])
        if header is None:
            continue
        if step > 1:
            intervals = intervals[::step]
        num_cores = int(header["num_cores"])
        par = [[] for _ in range(num_cores)]
        drop_rate = [[] for _ in range(num_cores)]
        fdp_level = [[] for _ in range(num_cores)]
        cycles = []
        buffer_mean = []
        buffer_max = []
        for record in intervals:
            cycles.append(record["cycle"])
            core = record["core"]
            for core_id in range(num_cores):
                par[core_id].append(core["par"][core_id])
                sent = core["pf_sent"][core_id]
                dropped_pf = core["pf_dropped"][core_id]
                rate = dropped_pf / sent if sent else (1.0 if dropped_pf else 0.0)
                drop_rate[core_id].append(round(min(1.0, rate), 4))
                fdp_level[core_id].append(core["fdp_level"][core_id])
            system = record["system"]
            buffer_mean.append(system["buffer_occupancy_mean"])
            buffer_max.append(system["buffer_occupancy_max"])
        out.append(
            {
                "key": job.key,
                "label": _job_label(job),
                "policy": job.policy,
                "num_cores": num_cores,
                "interval_cycles": header["interval_cycles"],
                "cycles": cycles,
                "par": par,
                "drop_rate": drop_rate,
                "fdp_level": fdp_level,
                "buffer_mean": buffer_mean,
                "buffer_max": buffer_max,
            }
        )
    return {"jobs": out, "dropped_jobs": dropped, "step": step}


def fdp_histogram(campaign) -> Dict:
    """FDP aggressiveness-level histogram across all streamed samples.

    Counts every (core, interval) sample by its FDP level; level ``-1``
    means the core runs without FDP and is reported separately so the
    histogram reads as "time spent per aggressiveness level".
    """
    levels: Dict[int, int] = {}
    samples_without_fdp = 0
    for records in _streams(campaign.ledger).values():
        _, intervals = _split_stream(records)
        for record in intervals:
            for level in record["core"]["fdp_level"]:
                if level < 0:
                    samples_without_fdp += 1
                else:
                    levels[level] = levels.get(level, 0) + 1
    return {
        "levels": {str(level): levels[level] for level in sorted(levels)},
        "samples_without_fdp": samples_without_fdp,
    }


def queue_pressure(campaign) -> Dict:
    """Queue-pressure rollup across every streamed run.

    Means are sample-weighted across all landed intervals; maxima are
    fleet-wide high-water marks.  ``per_job`` carries the same rollup
    per run for the dashboard's detail rows.
    """
    per_job = []
    jobs_by_key = {job.key: job for job in campaign.unique_jobs()}
    totals = {"intervals": 0, "buffer_mean": 0.0, "bus": 0.0, "bank": 0.0}
    fleet_buffer_max = 0
    fleet_overflows = 0
    fleet_drops = 0
    for key, records in _streams(campaign.ledger).items():
        _, intervals = _split_stream(records)
        if not intervals:
            continue
        n = len(intervals)
        buffer_means = [record["system"]["buffer_occupancy_mean"] for record in intervals]
        buffer_maxes = [record["system"]["buffer_occupancy_max"] for record in intervals]
        overflows = sum(record["system"]["demand_overflows"] for record in intervals)
        drops = sum(record["system"]["drops"] for record in intervals)
        bus = sum(record["system"]["bus_utilization"] for record in intervals)
        bank = sum(record["system"]["bank_utilization"] for record in intervals)
        totals["intervals"] += n
        totals["buffer_mean"] += sum(buffer_means)
        totals["bus"] += bus
        totals["bank"] += bank
        fleet_buffer_max = max(fleet_buffer_max, max(buffer_maxes))
        fleet_overflows += overflows
        fleet_drops += drops
        job = jobs_by_key.get(key)
        per_job.append(
            {
                "key": key,
                "label": _job_label(job) if job is not None else key[:16],
                "intervals": n,
                "buffer_mean": round(sum(buffer_means) / n, 4),
                "buffer_max": max(buffer_maxes),
                "demand_overflows": overflows,
                "drops": drops,
                "bus_utilization": round(bus / n, 4),
                "bank_utilization": round(bank / n, 4),
            }
        )
    n = totals["intervals"]
    return {
        "intervals": n,
        "buffer_mean": round(totals["buffer_mean"] / n, 4) if n else 0.0,
        "buffer_max": fleet_buffer_max,
        "demand_overflows": fleet_overflows,
        "drops": fleet_drops,
        "bus_utilization": round(totals["bus"] / n, 4) if n else 0.0,
        "bank_utilization": round(totals["bank"] / n, 4) if n else 0.0,
        "per_job": per_job,
    }


def campaign_metrics(campaign, *, max_jobs: Optional[int] = None) -> Dict:
    """Everything the dashboard polls for one campaign, in one payload."""
    return {
        "id": campaign.directory.name,
        "name": campaign.spec.name,
        "backend": campaign.backend,
        "progress": progress(campaign),
        "series": series(campaign, max_jobs=max_jobs),
        "fdp": fdp_histogram(campaign),
        "pressure": queue_pressure(campaign),
    }
