"""The dependency-free dashboard page: static HTML + inline JS.

One self-contained document — no frameworks, no CDN fetches, no build
step — served by ``python -m repro.campaign serve`` at ``/`` and
``/dashboard``.  The inline script polls the JSON endpoints
(``/campaigns``, ``/campaigns/<id>/metrics``) every couple of seconds
and redraws:

* a **fleet heatmap**: one cell per job, colored by ledger state
  (pending grey, running amber, done green, failed red, interrupted
  purple), with streamed-sample counts on hover;
* per-job **sparklines** (inline SVG) of per-core PAR, prefetch drop
  rate and request-buffer occupancy, straight off the streamed samples;
* the **FDP aggressiveness histogram** and queue-pressure rollup.

Everything renders from the aggregate payloads verbatim; this module
owns presentation only.
"""

from __future__ import annotations

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro · campaign fleet</title>
<style>
  :root {
    --bg: #11151a; --panel: #1a2027; --ink: #d7dde4; --dim: #77828e;
    --pending: #3a434d; --running: #d9a426; --done: #3da35d;
    --failed: #d9534f; --interrupted: #8e6bbf; --accent: #5aa7d9;
  }
  * { box-sizing: border-box; }
  body { margin: 0; background: var(--bg); color: var(--ink);
         font: 14px/1.45 ui-monospace, "SF Mono", Menlo, Consolas, monospace; }
  header { padding: 14px 20px; border-bottom: 1px solid #252d36;
           display: flex; align-items: baseline; gap: 14px; }
  header h1 { font-size: 16px; margin: 0; font-weight: 600; }
  header .sub { color: var(--dim); font-size: 12px; }
  main { padding: 16px 20px; max-width: 1200px; }
  .panel { background: var(--panel); border: 1px solid #252d36;
           border-radius: 6px; padding: 12px 14px; margin-bottom: 14px; }
  .panel h2 { font-size: 13px; margin: 0 0 8px; color: var(--accent);
              font-weight: 600; text-transform: uppercase;
              letter-spacing: 0.06em; }
  .muted { color: var(--dim); }
  .error { color: var(--failed); }
  select { background: var(--panel); color: var(--ink);
           border: 1px solid #2c3540; border-radius: 4px; padding: 3px 6px;
           font: inherit; }
  .heatmap { display: flex; flex-wrap: wrap; gap: 4px; }
  .cell { width: 22px; height: 22px; border-radius: 3px;
          background: var(--pending); position: relative; }
  .cell.running { background: var(--running); }
  .cell.done { background: var(--done); }
  .cell.failed { background: var(--failed); }
  .cell.interrupted { background: var(--interrupted); }
  .legend { margin-top: 8px; font-size: 12px; color: var(--dim); }
  .legend span { display: inline-block; margin-right: 14px; }
  .legend i { display: inline-block; width: 10px; height: 10px;
              border-radius: 2px; margin-right: 4px; vertical-align: -1px; }
  .stats { display: flex; gap: 24px; flex-wrap: wrap; }
  .stat .value { font-size: 20px; font-weight: 600; }
  .stat .label { font-size: 11px; color: var(--dim);
                 text-transform: uppercase; letter-spacing: 0.06em; }
  .job { border-top: 1px solid #252d36; padding: 10px 0; }
  .job:first-of-type { border-top: none; }
  .job .name { margin-bottom: 6px; }
  .sparkrow { display: flex; gap: 18px; flex-wrap: wrap; }
  .spark { font-size: 11px; color: var(--dim); }
  .spark svg { display: block; background: #141920; border-radius: 3px; }
  .bars { display: flex; align-items: flex-end; gap: 8px; height: 90px; }
  .bar { background: var(--accent); width: 34px; border-radius: 3px 3px 0 0;
         min-height: 2px; }
  .bar-label { text-align: center; font-size: 11px; color: var(--dim);
               margin-top: 4px; }
  table { border-collapse: collapse; font-size: 12px; width: 100%; }
  th, td { text-align: right; padding: 3px 10px; }
  th:first-child, td:first-child { text-align: left; }
  th { color: var(--dim); font-weight: 400; border-bottom: 1px solid #252d36; }
</style>
</head>
<body>
<header>
  <h1>repro campaign fleet</h1>
  <span class="sub">prefetch-aware DRAM controller reproduction — live telemetry</span>
  <span class="sub" id="poll-state"></span>
</header>
<main>
  <div class="panel">
    <h2>Campaign</h2>
    <select id="campaign-select"></select>
    <span class="muted" id="campaign-meta"></span>
  </div>
  <div class="panel">
    <h2>Progress</h2>
    <div class="stats" id="progress-stats"></div>
  </div>
  <div class="panel">
    <h2>Fleet heatmap</h2>
    <div class="heatmap" id="heatmap"></div>
    <div class="legend">
      <span><i style="background:var(--pending)"></i>pending</span>
      <span><i style="background:var(--running)"></i>running</span>
      <span><i style="background:var(--done)"></i>done</span>
      <span><i style="background:var(--failed)"></i>failed</span>
      <span><i style="background:var(--interrupted)"></i>interrupted</span>
    </div>
  </div>
  <div class="panel">
    <h2>Live series</h2>
    <div id="series"></div>
  </div>
  <div class="panel">
    <h2>FDP aggressiveness</h2>
    <div class="bars" id="fdp-bars"></div>
    <div class="muted" id="fdp-note"></div>
  </div>
  <div class="panel">
    <h2>Queue pressure</h2>
    <div id="pressure"></div>
  </div>
</main>
<script>
"use strict";
const POLL_MS = 2000;
let selected = null;

function el(tag, attrs, text) {
  const node = document.createElement(tag);
  for (const key in (attrs || {})) node.setAttribute(key, attrs[key]);
  if (text !== undefined) node.textContent = text;
  return node;
}

function sparkline(values, width, height, color) {
  const svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
  svg.setAttribute("width", width);
  svg.setAttribute("height", height);
  if (!values.length) return svg;
  let lo = Math.min(...values), hi = Math.max(...values);
  if (hi === lo) { hi = lo + 1; }
  const step = values.length > 1 ? (width - 4) / (values.length - 1) : 0;
  const points = values.map((v, i) => {
    const x = 2 + i * step;
    const y = height - 3 - (v - lo) / (hi - lo) * (height - 6);
    return x.toFixed(1) + "," + y.toFixed(1);
  }).join(" ");
  const line = document.createElementNS("http://www.w3.org/2000/svg", "polyline");
  line.setAttribute("points", points);
  line.setAttribute("fill", "none");
  line.setAttribute("stroke", color);
  line.setAttribute("stroke-width", "1.5");
  svg.appendChild(line);
  return svg;
}

function spark(label, values, color) {
  const box = el("div", {class: "spark"});
  box.appendChild(sparkline(values, 150, 40, color));
  const lo = values.length ? Math.min(...values) : 0;
  const hi = values.length ? Math.max(...values) : 0;
  box.appendChild(el("div", {}, label + "  [" + lo + " … " + hi + "]"));
  return box;
}

function renderProgress(progress) {
  const stats = document.getElementById("progress-stats");
  stats.replaceChildren();
  const items = [
    [progress.done + "/" + progress.total, "jobs done"],
    [(progress.counts.running || 0), "running"],
    [(progress.counts.failed || 0), "failed"],
    [progress.samples, "samples streamed"],
    [progress.eta_seconds ? progress.eta_seconds.toFixed(1) + "s" : "—", "eta (serial)"],
  ];
  for (const [value, label] of items) {
    const stat = el("div", {class: "stat"});
    stat.appendChild(el("div", {class: "value"}, String(value)));
    stat.appendChild(el("div", {class: "label"}, label));
    stats.appendChild(stat);
  }
}

function renderHeatmap(progress) {
  const map = document.getElementById("heatmap");
  map.replaceChildren();
  for (const job of progress.states) {
    const cell = el("div", {
      class: "cell " + job.status,
      title: job.label + " — " + job.status + " (" + job.samples + " samples)",
    });
    map.appendChild(cell);
  }
}

function renderSeries(series) {
  const root = document.getElementById("series");
  root.replaceChildren();
  if (!series.jobs.length) {
    root.appendChild(el("div", {class: "muted"},
      "no streamed samples yet — run workers with --stream"));
    return;
  }
  for (const job of series.jobs) {
    const box = el("div", {class: "job"});
    box.appendChild(el("div", {class: "name"},
      job.label + "  (" + job.cycles.length + " intervals)"));
    const row = el("div", {class: "sparkrow"});
    for (let core = 0; core < job.num_cores; core++) {
      row.appendChild(spark("core " + core + " PAR", job.par[core], "#5aa7d9"));
      row.appendChild(spark("core " + core + " drop rate", job.drop_rate[core], "#d9534f"));
    }
    row.appendChild(spark("buffer mean", job.buffer_mean, "#d9a426"));
    box.appendChild(row);
    root.appendChild(box);
  }
  if (series.dropped_jobs) {
    root.appendChild(el("div", {class: "muted"},
      series.dropped_jobs + " more streamed job(s) not shown"));
  }
}

function renderFdp(fdp) {
  const bars = document.getElementById("fdp-bars");
  bars.replaceChildren();
  const levels = Object.keys(fdp.levels);
  const peak = Math.max(1, ...levels.map(level => fdp.levels[level]));
  for (const level of levels) {
    const wrap = el("div");
    const bar = el("div", {class: "bar"});
    bar.style.height = Math.round(fdp.levels[level] / peak * 80) + "px";
    bar.title = fdp.levels[level] + " samples";
    wrap.appendChild(bar);
    wrap.appendChild(el("div", {class: "bar-label"}, "L" + level));
    bars.appendChild(wrap);
  }
  const note = document.getElementById("fdp-note");
  note.textContent = levels.length
    ? (fdp.samples_without_fdp
       ? fdp.samples_without_fdp + " core-interval samples without FDP"
       : "")
    : "no FDP samples yet";
}

function renderPressure(pressure) {
  const root = document.getElementById("pressure");
  root.replaceChildren();
  const summary = el("div", {class: "muted"},
    pressure.intervals + " intervals · buffer mean " + pressure.buffer_mean +
    " / max " + pressure.buffer_max + " · " + pressure.drops + " drops · " +
    pressure.demand_overflows + " demand overflows · bus " +
    pressure.bus_utilization);
  root.appendChild(summary);
  if (!pressure.per_job.length) return;
  const table = el("table");
  const head = el("tr");
  for (const column of ["job", "intervals", "buf mean", "buf max",
                        "overflows", "drops", "bus", "bank"]) {
    head.appendChild(el("th", {}, column));
  }
  table.appendChild(head);
  for (const row of pressure.per_job) {
    const tr = el("tr");
    tr.appendChild(el("td", {}, row.label));
    for (const value of [row.intervals, row.buffer_mean, row.buffer_max,
                         row.demand_overflows, row.drops,
                         row.bus_utilization, row.bank_utilization]) {
      tr.appendChild(el("td", {}, String(value)));
    }
    table.appendChild(tr);
  }
  root.appendChild(table);
}

async function fetchJson(path) {
  const response = await fetch(path);
  if (!response.ok) throw new Error(path + " -> " + response.status);
  return response.json();
}

async function tick() {
  const state = document.getElementById("poll-state");
  try {
    const campaigns = (await fetchJson("/campaigns")).campaigns;
    const picker = document.getElementById("campaign-select");
    const ids = campaigns.map(c => c.id);
    if (picker.children.length !== ids.length ||
        ids.some((id, i) => picker.children[i].value !== id)) {
      picker.replaceChildren();
      for (const c of campaigns) picker.appendChild(el("option", {value: c.id}, c.id));
      if (selected && ids.includes(selected)) picker.value = selected;
    }
    if (!campaigns.length) {
      state.textContent = "no campaigns";
      return;
    }
    selected = picker.value || ids[0];
    const metrics = await fetchJson("/campaigns/" + selected + "/metrics");
    document.getElementById("campaign-meta").textContent =
      metrics.name + " · backend " + metrics.backend;
    renderProgress(metrics.progress);
    renderHeatmap(metrics.progress);
    renderSeries(metrics.series);
    renderFdp(metrics.fdp);
    renderPressure(metrics.pressure);
    state.textContent = "live · " + new Date().toLocaleTimeString();
    state.className = "sub";
  } catch (error) {
    state.textContent = "poll failed: " + error.message;
    state.className = "sub error";
  }
}

document.getElementById("campaign-select").addEventListener("change",
  event => { selected = event.target.value; tick(); });
tick();
setInterval(tick, POLL_MS);
</script>
</body>
</html>
"""


def render_page() -> str:
    """The complete dashboard document (static; all state arrives via JS polls)."""
    return _PAGE
