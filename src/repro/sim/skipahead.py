"""The skip-ahead event backend (DESIGN.md §11).

:func:`run_event` is a fused alternative to :meth:`System.run`'s event
heap.  Instead of pushing TICK/INTERVAL/REFRESH tuples through the heap
and discarding the superseded ones on pop, it keeps those recurring
events as *scalar* next-fire slots (one per channel for ticks and
refreshes, one global for the accuracy interval) and, each iteration,
advances the clock directly to the earliest timestamp among the heap
front and the scalar slots.  Only the irregular events — core progress,
MSHR retries, DRAM fills — still travel through the heap.

On top of the scalar slots, the hot handlers (core access, prefetch
issue, fill) are forked from :class:`System` with every cross-call
attribute hoisted into closure locals; cold paths (runahead, writebacks,
drops, checker, refresh) delegate to the shared ``System`` methods so
there is exactly one implementation of each rare behavior.

Byte-identity with the heap backends (certified by the golden
equivalence matrix and the differential fuzzer) rests on two rules:

* **Sequence parity** — ties between equal-time events are broken by a
  global sequence counter, so this loop must consume sequence numbers at
  exactly the program points the heap version pushes events, including
  for events that end up superseded (the heap version burns a number on
  the push it later discards).  ``System._schedule_tick_event`` and the
  inline arms below mirror every such point.
* **Discard equivalence** — a superseded heap tick is popped, bumps
  ``_now`` and is dropped without side effects; since a later real event
  always follows while cores are active (the interval event re-arms
  itself), the transient ``_now`` value is never observed, so the scalar
  slots may simply be overwritten.

Cold helpers called from here mutate ``system._seq`` through the shared
``System`` methods, so the closure-local ``seq`` is written back before
— and reloaded after — every such call.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from typing import Optional

from repro.cache.cache import CacheLine
from repro.cache.mshr import MSHREntry
from repro.controller.request import MemRequest
from repro.prefetch.stream import _ALLOCATED, _MONITORING, StreamPrefetcher
from repro.sim.results import SimResult
from repro.sim.system import (
    _CORE,
    _DEMAND_MSHR_RESERVE,
    _FILL,
    _RETRY,
)

_NEVER = 1 << 62


def run_event(
    system, max_accesses_per_core: int, max_cycles: Optional[int]
) -> SimResult:
    """Run ``system`` to completion with the skip-ahead loop."""
    config = system.config
    telemetry = system.telemetry
    telemetry.on_start(system)

    heap = system._heap
    heappush = heapq.heappush
    heappop = heapq.heappop
    cores = system.cores
    caches = system._caches
    mshrs = system._mshrs
    prefetchers = system._prefetchers
    ddpfs = system._ddpf
    fdps = system._fdp
    results = system.results
    engine = system.engine
    tracker = system.tracker
    # One fused scheduling-round closure per channel (per-channel engine
    # state prebound, Channel.service inlined); the heap backends keep
    # the shared engine.tick, which remains the behavioral spec.
    tickers = [engine.make_event_ticker(ch) for ch in range(config.dram.num_channels)]
    note_promotion = engine.note_promotion
    # Engine admission state, prebound for the fused admission path (the
    # forks of build_request + enqueue_* + _admit + earliest_service
    # below; every behavioral line is a direct port of those methods).
    e_queues = engine._queues
    e_index = engine._index
    e_occupancy = engine._occupancy
    e_overflow = engine._overflow
    e_peak = engine.peak_occupancy
    e_drop_check = engine._drop_check
    e_drop_deadline = (
        engine.dropper.drop_deadline if engine.dropper is not None else None
    )
    e_row_refs = engine._row_refs
    e_base_heaps = engine._base_heaps
    e_row_buckets = engine._row_buckets
    e_bank_epoch = engine._bank_epoch
    e_census_d = engine._census_demand
    e_census_p = engine._census_prefetch
    e_stats = engine.stats
    e_policy = engine.policy
    # priority_key / hit_delta are fixed at policy construction (only the
    # epoch moves at interval boundaries), so the keying fork below can
    # bind them once.
    e_priority_key = e_policy.priority_key
    e_hit_delta = e_policy.hit_delta
    e_channels = engine.channels
    buffer_size = engine.config.request_buffer_size
    dec_lines = engine._dec_lines
    dec_channels = engine._dec_channels
    dec_banks = engine._dec_banks
    dec_perm = engine._dec_perm
    dec_bank_mask = engine._dec_bank_mask
    record_sent = tracker.record_sent
    record_used = tracker.record_used
    telemetry_on = system._telemetry_on
    checker = system.checker
    runahead = config.core.runahead
    skipless = config.prefetcher.skipless
    mshr_waiters = system._mshr_waiters
    tick_pending = system._tick_pending
    tick_seq = system._tick_seq
    tick_stale = system._tick_stale
    nch = config.dram.num_channels
    channels = range(nch)
    # Per-core structure tables for the forked cache/MSHR/ROB fast paths.
    sets_by_core = [c._sets for c in caches]
    nsets_by_core = [c.num_sets for c in caches]
    assoc_by_core = [c.assoc for c in caches]
    rob_by_core = [c.config.rob_size for c in cores]
    def make_stream_access(pf):
        # Fork of StreamPrefetcher.on_access with _find inlined (one frame
        # per access instead of two) for the exact base class; subclasses
        # and other prefetchers keep their own on_access below.  The hot
        # call sites always run the default allocate=True policy (only
        # runahead passes allocate=False, and that goes through the shared
        # System path).  Ascending batches come back as a ``range`` — the
        # issue loop only enumerates and len()s them.
        entries = pf.entries
        allocate = pf._allocate

        def stream_access(line_addr, was_hit, pc):
            pf._tick = tick = pf._tick + 1
            found = None
            for entry in entries:
                if entry.lo <= line_addr <= entry.hi:
                    found = entry
                    break
            if found is None:
                if not was_hit:
                    allocate(line_addr)
                return ()
            found.last_use = tick
            if found.state == _ALLOCATED:
                start = found.start
                if line_addr == start:
                    return ()
                found.direction = direction = 1 if line_addr > start else -1
                end = start + pf.distance * direction
                found.mon_start = start
                found.mon_end = end
                found.state = _MONITORING
                if direction > 0:
                    found.lo = start
                    found.hi = end
                else:
                    found.lo = end
                    found.hi = start
                return ()
            direction = found.direction
            edge = found.mon_end
            degree = pf.degree
            shift = degree * direction
            found.mon_end = edge + shift
            found.mon_start += shift
            found.lo += shift
            found.hi += shift
            pf._last_triggered = found
            if direction > 0:
                return range(edge + 1, edge + degree + 1)
            return [
                address
                for address in range(edge - 1, edge - degree - 1, -1)
                if address >= 0
            ]

        return stream_access

    # The fused fork is gated on the exact class AND on ``on_access`` not
    # being shadowed on the instance: tests and telemetry wrap prefetchers
    # by assigning a spy to ``p.on_access``, and the fork would silently
    # bypass it.
    pf_on_access = [
        None
        if p is None
        else (
            make_stream_access(p)
            if type(p) is StreamPrefetcher and "on_access" not in p.__dict__
            else p.on_access
        )
        for p in prefetchers
    ]

    seq = system._seq

    # -- forked hot handlers -------------------------------------------------
    # Byte-for-byte ports of the System methods of the same names; every
    # behavioral line matches — only the attribute loads are hoisted.

    def finish_core(core, now):
        nonlocal active
        if not core.done:
            core.done = True
            core.finish_time = max(now, 1)
            active -= 1
            system._active_cores = active

    def schedule_core_next(core, now):
        nonlocal seq
        if core.accesses_done >= core.target_accesses:
            finish_core(core, now)
            return
        if core.lookahead:
            entry = core.lookahead.popleft()
        else:
            entry = next(core.trace, None)
        if entry is None:
            finish_core(core, now)
            return
        core.pending_entry = entry
        width = core.retire_width
        seq += 1
        heappush(
            heap,
            (now + (entry[0] + width - 1) // width, seq, _CORE, core.core_id),
        )

    def schedule_tick(channel, time):
        # Mirrors System._schedule_tick_event (see its docstring for the
        # sequence-parity and stale-revival rules) over closure locals,
        # folding the arm into the cached scalar minimum: an arm only ever
        # moves a slot *earlier* (later times return at the guard), so a
        # single compare keeps ``sc_*`` equal to the true minimum without
        # rescanning.
        nonlocal seq, sc_time, sc_seq, sc_src, sc_ch
        pending = tick_pending[channel]
        if pending is not None and pending <= time:
            return
        seq += 1
        stale = tick_stale[channel]
        if pending is not None and pending not in stale:
            stale[pending] = tick_seq[channel]
        revived = stale.get(time)
        eff = seq if revived is None else revived
        tick_pending[channel] = time
        tick_seq[channel] = eff
        if time < sc_time or (time == sc_time and eff < sc_seq):
            sc_time = time
            sc_seq = eff
            sc_src = 2
            sc_ch = channel

    def admit(request, channel, bank_idx):
        # Fork of DRAMControllerEngine._admit (non-reference form) with
        # the engine state prebound.
        queue = e_queues[channel][bank_idx]
        request.qpos = len(queue)
        queue.append(request)
        if not request.is_write:
            e_index[channel][request.line_addr] = request
        if e_drop_deadline is not None and request.is_prefetch:
            checks = e_drop_check[channel]
            deadline = e_drop_deadline(request)
            if deadline < checks[bank_idx]:
                checks[bank_idx] = deadline
        if e_row_refs is not None:
            refs = e_row_refs[channel][bank_idx]
            refs[request.row] = refs.get(request.row, 0) + 1
        epoch = e_policy.epoch
        if e_bank_epoch[channel][bank_idx] == epoch:
            # Fork of DRAMControllerEngine._push_keyed.
            key = e_priority_key(request, False)
            request.prio_base = key
            hit_key = key + e_hit_delta
            request.prio_hit = hit_key
            request.prio_stamp = epoch
            heappush(e_base_heaps[channel][bank_idx], (-key, request))
            buckets = e_row_buckets[channel][bank_idx]
            row = request.row
            bucket = buckets.get(row)
            if bucket is None:
                buckets[row] = bucket = []
            heappush(bucket, (-hit_key, request))
        if e_census_d is not None:
            if request.is_prefetch:
                e_census_p[channel][request.core_id] += 1
            else:
                e_census_d[channel][request.core_id] += 1
        occ = e_occupancy[channel] + 1
        e_occupancy[channel] = occ
        if occ > e_peak[channel]:
            e_peak[channel] = occ

    def issue_prefetches(core_id, candidates, pc, now):
        nonlocal seq, sc_time, sc_seq, sc_src, sc_ch
        cache = caches[core_id]
        mshr = mshrs[core_id]
        ddpf = ddpfs[core_id]
        fdp = fdps[core_id]
        stats = results[core_id]
        prefetcher = prefetchers[core_id]
        sets = cache._sets
        num_sets = cache.num_sets
        mshr_entries = mshr._entries
        mshr_cap = mshr.capacity - _DEMAND_MSHR_RESERVE
        rejected_tail = 0
        for index, candidate in enumerate(candidates):
            if candidate in sets[candidate % num_sets] or candidate in mshr_entries:
                continue
            if ddpf is not None and not ddpf.allow(candidate, pc):
                stats.pf_filtered += 1
                continue
            if len(mshr_entries) >= mshr_cap:
                stats.pf_mshr_rejected += len(candidates) - index
                rejected_tail = len(candidates) - index
                break
            # Fused fork of build_request + enqueue_prefetch +
            # earliest_service (decode constants prebound; the engine's
            # admission seq is bumped for rejected prefetches too, as in
            # build_request).
            engine._seq = eseq = engine._seq + 1
            rest = candidate // dec_lines
            channel = rest % dec_channels
            rest //= dec_channels
            bank_idx = rest % dec_banks
            row = rest // dec_banks
            if dec_perm:
                bank_idx = (bank_idx ^ row) & dec_bank_mask
            request = MemRequest(
                candidate, core_id, True, now, channel, bank_idx, row,
                False, False, eseq,
            )
            if e_occupancy[channel] >= buffer_size:
                e_stats.prefetches_rejected_full += 1
                stats.pf_rejected_full += len(candidates) - index
                rejected_tail = len(candidates) - index
                break
            e_stats.enqueued_total += 1
            admit(request, channel, bank_idx)
            # Fork of MSHR.allocate (capacity and duplicate were checked
            # at the top of the iteration; nothing between mutates the
            # file).
            mshr_entries[candidate] = MSHREntry(candidate, request)
            mshr.total_allocated += 1
            if len(mshr_entries) > mshr.peak_occupancy:
                mshr.peak_occupancy = len(mshr_entries)
            record_sent(core_id)
            stats.pf_sent += 1
            if fdp is not None:
                fdp.sent += 1
            # schedule_tick(), inlined.
            busy = e_channels[channel].banks[bank_idx].busy_until
            time = busy if busy > now else now
            pending = tick_pending[channel]
            if pending is None or pending > time:
                seq += 1
                stale = tick_stale[channel]
                if pending is not None and pending not in stale:
                    stale[pending] = tick_seq[channel]
                revived = stale.get(time)
                eff = seq if revived is None else revived
                tick_pending[channel] = time
                tick_seq[channel] = eff
                if time < sc_time or (time == sc_time and eff < sc_seq):
                    sc_time = time
                    sc_seq = eff
                    sc_src = 2
                    sc_ch = channel
        if rejected_tail and prefetcher is not None and skipless:
            prefetcher.rewind(rejected_tail)

    def handle_core(core_id, now, retry):
        nonlocal seq, sc_time, sc_seq, sc_src, sc_ch
        core = cores[core_id]
        if core.done:
            return
        entry = core.pending_entry
        if entry is None:
            return
        if retry:
            core.stall_cycles += now - core.stall_start
            core.stalled = False
            core.waiting_mshr = False
        else:
            core.instructions_issued += entry.gap
            core.loads += 1
            core.accesses_done += 1

        cache = caches[core_id]
        mshr = mshrs[core_id]
        line = entry[1]
        is_write = entry[3]
        # Fork of L2Cache.lookup — the branch bodies consume the line's
        # fields directly, so no LookupResult is ever built.
        cache_set = sets_by_core[core_id][line % nsets_by_core[core_id]]
        line_obj = cache_set.pop(line, None)
        if line_obj is not None:
            cache_set[line] = line_obj  # reinsert at the MRU end
            cache.demand_hits += 1
            if is_write:
                line_obj.dirty = True
            if not retry:
                core.l2_hits += 1
            if line_obj.prefetched and not line_obj.ever_used:
                line_obj.ever_used = True
                line_obj.prefetched = False
                cache.useful_prefetch_hits += 1
                count_useful(line_obj.core_id, line, line_obj.row_hit_fill, False)
            on_access = pf_on_access[core_id]
            if on_access is not None:
                candidates = on_access(line, True, pc=entry[2])
                if candidates:
                    issue_prefetches(core_id, candidates, entry[2], now)
        else:
            cache.demand_misses += 1
            if not retry:
                core.l2_misses += 1
                fdp = fdps[core_id]
                if fdp is not None:
                    fdp.demand_misses += 1
                    if fdp.pollution_filter.check_miss(line):
                        fdp.pollution_misses += 1
            mshr_entries = mshr._entries
            mshr_entry = mshr_entries.get(line)
            if mshr_entry is not None:
                request = mshr_entry.request
                if request.is_prefetch:
                    request.promote()
                    note_promotion(request)
                    mshr_entry.promoted_late = True
                    count_useful(request.core_id, line, None, True)
                if is_write:
                    mshr_entry.dirty_on_fill = True
                mshr_entry.waiters.append(core_id)
                od = core.outstanding_demand
                if line in od:
                    del od[line]
                od[line] = core.instructions_issued
            else:
                if len(mshr_entries) >= mshr.capacity:
                    core.stalled = True
                    core.waiting_mshr = True
                    core.stall_start = now
                    core.mshr_stalls += 1
                    # Wake queues are prebuilt per MSHR file in
                    # System.__init__/run — plain indexing, no setdefault
                    # allocation on the stall path.
                    mshr_waiters[id(mshr)].append(core_id)
                    return
                # Fused fork of build_request + MSHR.allocate +
                # enqueue_demand + earliest_service (decode constants
                # prebound; MSHR capacity and duplicate just checked).
                engine._seq = eseq = engine._seq + 1
                rest = line // dec_lines
                channel = rest % dec_channels
                rest //= dec_channels
                bank_idx = rest % dec_banks
                row = rest // dec_banks
                if dec_perm:
                    bank_idx = (bank_idx ^ row) & dec_bank_mask
                request = MemRequest(
                    line, core_id, False, now, channel, bank_idx, row,
                    False, False, eseq,
                )
                mshr_entry = MSHREntry(line, request)
                mshr_entries[line] = mshr_entry
                mshr.total_allocated += 1
                if len(mshr_entries) > mshr.peak_occupancy:
                    mshr.peak_occupancy = len(mshr_entries)
                mshr_entry.dirty_on_fill = is_write
                mshr_entry.waiters.append(core_id)
                e_stats.enqueued_total += 1
                if e_occupancy[channel] >= buffer_size:
                    e_stats.demand_overflows += 1
                    e_overflow[channel].append(request)
                else:
                    admit(request, channel, bank_idx)
                # schedule_tick(), inlined.
                busy = e_channels[channel].banks[bank_idx].busy_until
                time = busy if busy > now else now
                pending = tick_pending[channel]
                if pending is None or pending > time:
                    seq += 1
                    stale = tick_stale[channel]
                    if pending is not None and pending not in stale:
                        stale[pending] = tick_seq[channel]
                    revived = stale.get(time)
                    eff = seq if revived is None else revived
                    tick_pending[channel] = time
                    tick_seq[channel] = eff
                    if time < sc_time or (time == sc_time and eff < sc_seq):
                        sc_time = time
                        sc_seq = eff
                        sc_src = 2
                        sc_ch = channel
                od = core.outstanding_demand
                if line in od:
                    del od[line]
                od[line] = core.instructions_issued
            on_access = pf_on_access[core_id]
            if on_access is not None:
                candidates = on_access(line, False, pc=entry[2])
                if candidates:
                    issue_prefetches(core_id, candidates, entry[2], now)

        core.pending_entry = None
        # Fork of CoreState.rob_blocked (first outstanding entry is the
        # oldest; see that method's ordering comment).
        od = core.outstanding_demand
        if od and core.instructions_issued - next(iter(od.values())) >= rob_by_core[
            core_id
        ]:
            core.stalled = True
            core.stall_start = now
            if runahead:
                system._seq = seq
                system._run_runahead(core, now)
                seq = system._seq
                # Runahead arms ticks through System._schedule_tick_event,
                # bypassing the incremental min — refresh the cache.
                rescan_scalars()
        else:
            # schedule_core_next(), inlined.
            if core.accesses_done >= core.target_accesses:
                finish_core(core, now)
                return
            if core.lookahead:
                nxt = core.lookahead.popleft()
            else:
                nxt = next(core.trace, None)
            if nxt is None:
                finish_core(core, now)
                return
            core.pending_entry = nxt
            width = core.retire_width
            seq += 1
            heappush(
                heap,
                (now + (nxt[0] + width - 1) // width, seq, _CORE, core_id),
            )

    def handle_fill(request, now):
        nonlocal seq
        core_id = request.core_id
        mshr = mshrs[core_id]
        stats = results[core_id]
        line = request.line_addr
        if request.is_write:
            stats.writeback_fills += 1
            return
        # Fork of MSHR.free.
        mshr_entries = mshr._entries
        mshr_entry = mshr_entries.pop(line, None)
        if mshr_entry is not None:
            mshr.total_freed += 1
        row_hit = bool(request.row_hit_service)

        is_prefetch = request.is_prefetch
        if is_prefetch:
            stats.prefetch_fills += 1
            if row_hit:
                stats.prefetch_row_hits += 1
            if collect_service_times:
                pf_service_pending[core_id][line] = now - request.arrival
        elif request.promoted:
            stats.promoted_fills += 1
            if row_hit:
                stats.promoted_row_hits += 1
        elif request.is_runahead:
            stats.runahead_fills += 1
            if row_hit:
                stats.demand_row_hits += 1
        else:
            stats.demand_fills += 1
            if row_hit:
                stats.demand_row_hits += 1

        # Fork of L2Cache.fill — victim fields are consumed right here, so
        # no EvictionInfo is built.  The new line lands before the victim's
        # side effects run, matching fill-then-handle-eviction order.
        dirty_fill = bool(mshr_entry is not None and mshr_entry.dirty_on_fill)
        cache_set = sets_by_core[core_id][line % nsets_by_core[core_id]]
        resident = cache_set.pop(line, None)
        if resident is not None:
            cache_set[line] = resident  # reinsert at the MRU end
            if dirty_fill:
                resident.dirty = True
        else:
            victim = None
            if len(cache_set) >= assoc_by_core[core_id]:
                victim_addr = next(iter(cache_set))
                victim = cache_set.pop(victim_addr)
            cache_set[line] = CacheLine(is_prefetch, core_id, row_hit, dirty_fill)
            if victim is not None:
                if victim.dirty:
                    system._seq = seq
                    system._issue_writeback(victim.core_id, victim_addr, now)
                    seq = system._seq
                    # Writebacks arm ticks through
                    # System._schedule_tick_event, bypassing the
                    # incremental min — refresh the cache.
                    rescan_scalars()
                if victim.prefetched and not victim.ever_used:
                    results[victim.core_id].pf_evicted_unused += 1
                    system._note_unused_prefetch(victim.core_id, victim_addr)
                elif is_prefetch:
                    fdp = fdps[core_id]
                    if fdp is not None:
                        fdp.pollution_filter.record_eviction(victim_addr)

        if mshr_entry is not None and mshr_entry.waiters:
            waiters_list = mshr_entry.waiters
            if len(waiters_list) == 1:
                # Single waiter (the overwhelmingly common case): skip the
                # order-preserving dedupe dict allocation entirely.
                waiter_ids = waiters_list
            else:
                waiter_ids = dict.fromkeys(waiters_list)
            for waiter_id in waiter_ids:
                waiter = cores[waiter_id]
                od = waiter.outstanding_demand
                od.pop(line, None)
                if waiter.stalled and not waiter.waiting_mshr and not waiter.done:
                    # Fork of CoreState.rob_blocked.
                    if (
                        not od
                        or waiter.instructions_issued - next(iter(od.values()))
                        < rob_by_core[waiter_id]
                    ):
                        waiter.stall_cycles += now - waiter.stall_start
                        waiter.stalled = False
                        schedule_core_next(waiter, now)
        # Fork of System._wake_mshr_waiters (inlined at its only hot call
        # site; the drop path wakes through the shared System method).
        waiters = mshr_waiters.get(id(mshr))
        if waiters and len(mshr_entries) < mshr.capacity:
            seq += 1
            heappush(heap, (now, seq, _RETRY, waiters.popleft()))

    collect_service_times = system.collect_service_times
    pf_service_pending = system._pf_service_pending

    def count_useful(core_id, line, row_hit_fill, late):
        # Fork of System._count_useful.
        record_used(core_id)
        stats = results[core_id]
        stats.pf_used += 1
        if late:
            stats.pf_late += 1
        else:
            stats.prefetch_fills_used += 1
            if row_hit_fill:
                stats.useful_prefetch_row_hits += 1
            if collect_service_times:
                service = pf_service_pending[core_id].pop(line, None)
                if service is not None:
                    stats.useful_service_times.append(service)
        ddpf = ddpfs[core_id]
        if ddpf is not None:
            ddpf.train(line, useful=True)
        fdp = fdps[core_id]
        if fdp is not None:
            fdp.used += 1
            if late:
                fdp.late += 1

    # -- cached scalar minimum ----------------------------------------------
    # ``sc_*`` caches the earliest (time, seq) among the scalar slots
    # (interval, per-channel ticks, per-channel refreshes).  Between
    # rescans a slot only ever moves *earlier* (arms at later times bail
    # at the guard; interval/refresh slots change only inside their own
    # fire branches, which rescan), so ``schedule_tick``'s single compare
    # keeps the cache exact and the common heap-event iteration pays one
    # (time, seq) compare instead of a scan over every slot.
    sc_time = _NEVER
    sc_seq = _NEVER
    sc_src = 1
    sc_ch = 0

    def rescan_scalars():
        nonlocal sc_time, sc_seq, sc_src, sc_ch
        bt = interval_time
        bs = interval_seq
        bk = 1
        bc = 0
        for ch in channels:
            t = tick_pending[ch]
            if t is not None and (t < bt or (t == bt and tick_seq[ch] < bs)):
                bt = t
                bs = tick_seq[ch]
                bk = 2
                bc = ch
            t = refresh_time[ch]
            if t < bt or (t == bt and refresh_seq[ch] < bs):
                bt = t
                bs = refresh_seq[ch]
                bk = 3
                bc = ch
        sc_time = bt
        sc_seq = bs
        sc_src = bk
        sc_ch = bc

    # -- initial events ------------------------------------------------------
    # Same arming (and sequence-consumption) order as System.run: cores,
    # then the interval, then one refresh slot per channel.
    active = system._active_cores
    now = 0
    for core in cores:
        core.target_accesses = max_accesses_per_core
        schedule_core_next(core, 0)
    seq += 1
    interval_time = tracker.interval
    interval_seq = seq
    refresh_time = [_NEVER] * nch
    refresh_seq = [0] * nch
    refreshers = system._refresh
    if config.dram.refresh_enabled:
        for channel_id, scheduler in enumerate(refreshers):
            seq += 1
            refresh_time[channel_id] = scheduler.next_refresh_after(0)
            refresh_seq[channel_id] = seq
    rescan_scalars()

    # -- skip-ahead loop -----------------------------------------------------
    # The loop allocates no reference cycles, so collection is deferred to
    # the end of the run: the generational GC otherwise pauses every few
    # hundred net allocations to scan tuples that refcounting alone
    # already reclaims.
    cycle_cap = _NEVER if max_cycles is None else max_cycles
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        while active > 0:
            # Earliest of: heap front vs the cached scalar minimum,
            # strictly by (time, seq).  The interval slot re-arms itself
            # while cores are active, so there is always a candidate.
            if heap:
                event = heap[0]
                t = event[0]
                if t < sc_time or (t == sc_time and event[1] < sc_seq):
                    if t > cycle_cap:
                        # The heap version pops the over-cap event
                        # (bumping _now) before breaking; _collect clamps
                        # to the cap either way.
                        now = t
                        break
                    now = t
                    heappop(heap)
                    kind = event[2]
                    if kind == _CORE:
                        handle_core(event[3], now, False)
                    elif kind == _FILL:
                        handle_fill(event[3], now)
                    else:
                        handle_core(event[3], now, True)
                    continue
            if sc_time > cycle_cap:
                now = sc_time
                break
            system._now = now = sc_time
            if sc_src == 2:
                best_ch = sc_ch
                tick_pending[best_ch] = None
                stale = tick_stale[best_ch]
                if stale:
                    # Every outstanding tuple at or before the fire time
                    # is dead in the heap version too (popped and
                    # discarded, or the one that just fired); only future
                    # times can revive.
                    for t in [t for t in stale if t <= now]:
                        del stale[t]
                system._seq = seq
                if telemetry_on:
                    telemetry.on_tick(system, best_ch, now)
                # The round may drop prefetches; the _on_drop callback
                # wakes MSHR waiters through system._seq, hence the sync.
                serviced, next_wake = tickers[best_ch](now)
                seq = system._seq
                if serviced:
                    for request in serviced:
                        seq += 1
                        heappush(heap, (request.completion, seq, _FILL, request))
                if next_wake is not None:
                    # schedule_tick(), inlined — minus the sc_* update,
                    # which the rescan below recomputes anyway.
                    time = next_wake if next_wake > now else now + 1
                    pending = tick_pending[best_ch]
                    if pending is None or pending > time:
                        seq += 1
                        stale = tick_stale[best_ch]
                        if pending is not None and pending not in stale:
                            stale[pending] = tick_seq[best_ch]
                        revived = stale.get(time)
                        tick_pending[best_ch] = time
                        tick_seq[best_ch] = seq if revived is None else revived
            elif sc_src == 1:
                system._seq = seq
                if checker is not None:
                    checker.on_interval(now)
                telemetry.on_interval_pre(system, now)
                tracker.end_interval()
                engine.note_interval()
                for fdp in fdps:
                    if fdp is not None:
                        fdp.adjust()
                telemetry.on_interval_post(system, now)
                seq = system._seq
                if active > 0:
                    seq += 1
                    interval_time = now + tracker.interval
                    interval_seq = seq
                else:
                    interval_time = _NEVER
            else:
                best_ch = sc_ch
                scheduler = refreshers[best_ch]
                done = scheduler.apply(engine.channels[best_ch], now)
                schedule_tick(best_ch, done)
                if active > 0:
                    seq += 1
                    refresh_time[best_ch] = scheduler.next_refresh_after(now)
                    refresh_seq[best_ch] = seq
                else:
                    refresh_time[best_ch] = _NEVER
            # rescan_scalars(), inlined at the loop's only hot call site.
            bt = interval_time
            bs = interval_seq
            bk = 1
            bc = 0
            for ch in channels:
                t = tick_pending[ch]
                if t is not None and (t < bt or (t == bt and tick_seq[ch] < bs)):
                    bt = t
                    bs = tick_seq[ch]
                    bk = 2
                    bc = ch
                t = refresh_time[ch]
                if t < bt or (t == bt and refresh_seq[ch] < bs):
                    bt = t
                    bs = refresh_seq[ch]
                    bk = 3
                    bc = ch
            sc_time = bt
            sc_seq = bs
            sc_src = bk
            sc_ch = bc
    finally:
        if gc_was_enabled:
            gc.enable()

    system._now = now
    system._seq = seq
    return system._collect(max_cycles)
