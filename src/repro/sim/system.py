"""Full-system assembly and the discrete-event simulation loop.

The :class:`System` builds the paper's testbed from a
:class:`~repro.params.SystemConfig` and a list of benchmark profiles (one
per core), then runs an event-driven loop with five event kinds:

* ``CORE`` — a core reaches its next L2 access;
* ``RETRY`` — a core retries an access that stalled on a full MSHR file;
* ``FILL`` — a DRAM service completes and fills the L2;
* ``TICK`` — a DRAM channel runs a scheduling round;
* ``INTERVAL`` — the accuracy-sampling interval elapses (PAR update,
  FDP adjustment).

Model notes (see DESIGN.md §5): L2 hit latency is assumed hidden by the
out-of-order window; the core stalls only when the ROB fills behind the
oldest outstanding demand miss.  Prefetches reserve no MSHRs for demands
beyond ``_DEMAND_MSHR_RESERVE`` entries.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Union

from repro.cache.cache import CacheLine, L2Cache
from repro.cache.mshr import MSHR
from repro.controller.accuracy import PrefetchAccuracyTracker
from repro.controller.apd import AdaptivePrefetchDropper
from repro.controller.engine import DRAMControllerEngine
from repro.controller.policies import make_policy
from repro.controller.request import MemRequest
from repro.core.core import CoreState
from repro.dram.refresh import RefreshScheduler
from repro.core.trace import TraceEntry
from repro.params import SystemConfig, backend_from_env, resolve_backend
from repro.prefetch.base import make_prefetcher
from repro.prefetch.ddpf import DDPFFilter
from repro.prefetch.fdp import FDPController
from repro.sim.results import CoreResult, SimResult
from repro.telemetry.collector import NoopCollector, as_collector
from repro.validate.checker import InvariantChecker, check_enabled
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.resolve import resolve_workload
from repro.workloads.synthetic import SyntheticTraceGenerator

_CORE, _RETRY, _FILL, _TICK, _INTERVAL, _REFRESH = range(6)

# MSHR entries that prefetches may never occupy, kept free for demands.
_DEMAND_MSHR_RESERVE = 4

# Cores get disjoint line-address spaces (separate processes).
_CORE_ADDR_SHIFT = 54

# A workload per core: a benchmark name, a ``trace:<name-or-path>`` spec,
# a BenchmarkProfile, or a resolved repro.trace.TraceWorkload.
ProfileLike = Union[str, BenchmarkProfile, object]


class System:
    """One simulated CMP: cores, caches, prefetchers and the controller."""

    def __init__(
        self,
        config: SystemConfig,
        benchmarks: Sequence[ProfileLike],
        seed: int = 0,
        collect_service_times: bool = False,
        check: Optional[bool] = None,
        telemetry: Union[None, bool, NoopCollector] = None,
        scheduler: Optional[str] = None,
        backend: Optional[str] = None,
    ):
        if len(benchmarks) != config.num_cores:
            raise ValueError(
                f"{config.num_cores} cores but {len(benchmarks)} benchmarks"
            )
        self.config = config
        # Synthetic profiles and trace workloads, one per core — every
        # spelling (name, "trace:" spec, profile, TraceWorkload) funnels
        # through the shared resolver.
        self.profiles: List = [resolve_workload(workload) for workload in benchmarks]
        self.seed = seed
        self.collect_service_times = collect_service_times

        padc = config.padc
        self.prefetch_enabled = config.prefetcher.enabled and config.policy != "no-pref"
        self.tracker = PrefetchAccuracyTracker(
            num_cores=config.num_cores,
            interval=padc.accuracy_interval,
            promotion_threshold=padc.promotion_threshold,
            drop_thresholds=padc.drop_thresholds,
        )
        policy = make_policy(
            config.policy,
            tracker=self.tracker,
            use_urgency=padc.use_urgency,
            use_ranking=padc.use_ranking,
            num_cores=config.num_cores,
        )
        dropper = (
            AdaptivePrefetchDropper(self.tracker, padc.age_granularity)
            if config.policy in ("padc", "demand-first-apd")
            else None
        )
        # Simulation backend: the skip-ahead event loop by default, the
        # heap-scheduled optimized loop and the naive reference path on
        # request.  All three produce byte-identical results — the
        # golden-equivalence tests, the differential fuzzer and the bench
        # CLI's verify mode pin this (DESIGN.md §10–11).  Resolution
        # order: explicit ``backend=`` arg > legacy ``scheduler=`` arg >
        # ``config.backend`` > the environment (``$REPRO_BACKEND``, with
        # ``$REPRO_SCHED`` as a deprecated alias) > the package default.
        if backend is None:
            backend = scheduler or config.backend or backend_from_env()
        backend = resolve_backend(backend)
        self.backend = backend
        # Backwards-compatible alias: pre-PR-6 callers read ``scheduler``.
        self.scheduler = backend
        self.engine = DRAMControllerEngine(
            config.dram,
            policy,
            dropper=dropper,
            on_drop=self._on_drop,
            backend="reference" if backend == "reference" else "optimized",
        )

        if config.cache.shared:
            shared_cache = L2Cache(config.cache)
            shared_mshr = MSHR(config.cache.mshr_entries)
            self._caches = [shared_cache] * config.num_cores
            self._mshrs = [shared_mshr] * config.num_cores
        else:
            self._caches = [L2Cache(config.cache) for _ in range(config.num_cores)]
            self._mshrs = [
                MSHR(config.cache.mshr_entries) for _ in range(config.num_cores)
            ]

        self._prefetchers = []
        self._ddpf: List[Optional[DDPFFilter]] = []
        self._fdp: List[Optional[FDPController]] = []
        for core_id in range(config.num_cores):
            if self.prefetch_enabled:
                prefetcher = make_prefetcher(config.prefetcher)
            else:
                prefetcher = None
            self._prefetchers.append(prefetcher)
            filter_kind = config.prefetcher.filter_kind if prefetcher else None
            self._ddpf.append(DDPFFilter() if filter_kind == "ddpf" else None)
            self._fdp.append(
                FDPController(prefetcher) if filter_kind == "fdp" else None
            )

        self.cores: List[CoreState] = []
        self.results: List[CoreResult] = []
        for core_id, workload in enumerate(self.profiles):
            offset = (core_id + 1) << _CORE_ADDR_SHIFT
            if isinstance(workload, BenchmarkProfile):
                trace = SyntheticTraceGenerator(
                    workload, seed=seed + core_id
                ).generate(offset=offset)
            else:
                # TraceWorkload: deterministic file replay — the seed does
                # not perturb it, but the per-core offset contract holds.
                trace = workload.entries(offset=offset)
            self.cores.append(
                CoreState(core_id, config.core, trace, target_accesses=0)
            )
            self.results.append(CoreResult(core_id=core_id, benchmark=workload.name))

        self._heap: List = []
        self._seq = 0
        self._now = 0
        self._active_cores = config.num_cores
        self._tick_pending: List[Optional[int]] = [None] * config.dram.num_channels
        # Sequence stamps for the scalar (non-heap) tick events used by the
        # skip-ahead backend; unused (but kept allocated, for introspection
        # symmetry) under the heap backends.  ``_tick_stale`` remembers the
        # (time -> seq) of superseded arms whose time has not passed yet —
        # see _schedule_tick_event for why they can come back to life.
        self._tick_seq: List[int] = [0] * config.dram.num_channels
        self._tick_stale: List[Dict[int, int]] = [
            {} for _ in range(config.dram.num_channels)
        ]
        if backend == "event":
            # Scalar tick arming: the skip-ahead loop reads the pending
            # time directly instead of pushing TICK tuples through the
            # heap.  Bound as an instance attribute so the cold-path
            # helpers (_issue_writeback, _run_runahead, refresh) shared
            # with the heap backends transparently arm the scalar slot.
            self._schedule_tick = self._schedule_tick_event  # type: ignore[method-assign]
        # One wake queue per distinct MSHR file, prebuilt so the MSHR-full
        # stall path appends to an existing deque instead of paying a
        # setdefault + deque() allocation per stall (DESIGN.md §15).
        self._mshr_waiters: Dict[int, Deque[int]] = {}
        for mshr in self._mshrs:
            self._mshr_waiters.setdefault(id(mshr), deque())
        # Per-core structure tables for the inlined cache/ROB fast paths in
        # _handle_core/_handle_fill (refreshed at run() time in case a test
        # swapped a cache between construction and run).
        self._sets_by_core: List[List[Dict]] = [c._sets for c in self._caches]
        self._nsets_by_core: List[int] = [c.num_sets for c in self._caches]
        self._assoc_by_core: List[int] = [c.assoc for c in self._caches]
        self._rob_by_core: List[int] = [config.core.rob_size] * config.num_cores
        self._pf_service_pending: List[Dict[int, int]] = [
            {} for _ in range(config.num_cores)
        ]
        self._refresh: List[RefreshScheduler] = [
            RefreshScheduler.from_dram_config(config.dram)
            for _ in range(config.dram.num_channels)
        ]
        # Checked mode: audit conservation laws at interval boundaries and
        # end-of-sim.  ``check=None`` defers to the $REPRO_CHECK knob.
        if check is None:
            check = check_enabled()
        self.checker: Optional[InvariantChecker] = (
            InvariantChecker(self) if check else None
        )
        # Interval telemetry (DESIGN.md §9).  The per-tick hook is guarded
        # by ``_telemetry_on`` so the disabled path costs one branch; the
        # interval hooks run unconditionally (they are off the hot path).
        self.telemetry = as_collector(telemetry)
        self._telemetry_on = self.telemetry.enabled
        self._ran = False

    # -- event plumbing ------------------------------------------------------

    def _push(self, time: int, kind: int, arg) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, kind, arg))

    def _schedule_tick(self, channel: int, time: int) -> None:
        pending = self._tick_pending[channel]
        if pending is not None and pending <= time:
            return
        self._tick_pending[channel] = time
        self._push(time, _TICK, channel)

    def _schedule_tick_event(self, channel: int, time: int) -> None:
        """Scalar tick arming for the skip-ahead backend.

        Byte-identity with the heap backends requires two things:

        * consuming one sequence number exactly where the heap version
          would have pushed a TICK tuple (sequence numbers break
          equal-time ties for *every* event, so the counters must
          advance in lock-step), including for arms that end up
          superseded;
        * honoring **revival**: the heap loop discards a popped tick
          tuple by comparing its *time* against the pending slot, so a
          superseded tuple whose time coincides with a later re-arm is
          picked up as the live tick — and fires with its *old* (lower)
          sequence number, ordering ahead of events armed in between.
          ``_tick_stale`` tracks superseded (time -> seq) so the scalar
          slot adopts that older stamp when a re-arm lands on it.
        """
        pending = self._tick_pending[channel]
        if pending is not None and pending <= time:
            return
        self._seq += 1
        stale = self._tick_stale[channel]
        if pending is not None and pending not in stale:
            # The first tuple pushed for a given time has the smallest
            # sequence number, which is the one that fires; keep it.
            stale[pending] = self._tick_seq[channel]
        revived = stale.get(time)
        self._tick_pending[channel] = time
        self._tick_seq[channel] = self._seq if revived is None else revived

    # -- public API ------------------------------------------------------------

    def run(
        self, max_accesses_per_core: int = 20_000, max_cycles: Optional[int] = None
    ) -> SimResult:
        """Run the simulation and return the collected results.

        Each core executes ``max_accesses_per_core`` L2 accesses of its
        trace (the stand-in for the paper's 200M-instruction Pinpoint
        slices); ``max_cycles`` is a safety bound.
        """
        if self._ran:
            raise RuntimeError(
                "System.run() called twice: a System holds run state (event "
                "heap, counters, trace cursors) and cannot be re-run; build "
                "a fresh System, or use repro.api.simulate() which does"
            )
        self._ran = True
        if self.backend == "event":
            from repro.sim.skipahead import run_event

            return run_event(self, max_accesses_per_core, max_cycles)
        self.telemetry.on_start(self)
        for core in self.cores:
            core.target_accesses = max_accesses_per_core
            self._schedule_core_next(core, 0)
        self._push(self.tracker.interval, _INTERVAL, None)
        if self.config.dram.refresh_enabled:
            for channel_id, scheduler in enumerate(self._refresh):
                self._push(scheduler.next_refresh_after(0), _REFRESH, channel_id)

        # Refresh the per-core fast-path tables (a test may have swapped a
        # cache or MSHR object between construction and run).
        self._sets_by_core = [c._sets for c in self._caches]
        self._nsets_by_core = [c.num_sets for c in self._caches]
        self._assoc_by_core = [c.assoc for c in self._caches]
        for mshr in self._mshrs:
            self._mshr_waiters.setdefault(id(mshr), deque())

        # Hot loop: handlers, heap ops and the cycle cap are hoisted into
        # locals (hundreds of thousands of iterations).
        heap = self._heap
        heappop = heapq.heappop
        tick_pending = self._tick_pending
        handle_core = self._handle_core
        handle_fill = self._handle_fill
        handle_tick = self._handle_tick
        cycle_cap = (1 << 62) if max_cycles is None else max_cycles
        # The loop allocates no reference cycles; generational GC passes
        # over the (large, stable) heap/cache graphs are pure overhead, so
        # collection pauses are deferred to the end of the run — the same
        # policy the event backend applies (sim/skipahead.py).
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while heap and self._active_cores > 0:
                time, _seq, kind, arg = heappop(heap)
                self._now = time
                if time > cycle_cap:
                    break
                if kind == _CORE:
                    handle_core(arg, time, False)
                elif kind == _FILL:
                    handle_fill(arg, time)
                elif kind == _TICK:
                    # Only the earliest pending tick per channel is live; a
                    # popped event that no longer matches was superseded by an
                    # earlier tick whose wake chain already covers every
                    # serviceable bank, so handling it would be a no-op scan.
                    if tick_pending[arg] != time:
                        continue
                    tick_pending[arg] = None
                    handle_tick(arg, time)
                elif kind == _RETRY:
                    handle_core(arg, time, True)
                elif kind == _REFRESH:
                    self._handle_refresh(arg, time)
                else:
                    self._handle_interval(time)
        finally:
            if gc_was_enabled:
                gc.enable()
        return self._collect(max_cycles)

    # -- core events ----------------------------------------------------------

    def _schedule_core_next(self, core: CoreState, now: int) -> None:
        if core.accesses_done >= core.target_accesses:
            self._finish_core(core, now)
            return
        # Inlined core.next_entry() and exec_cycles(): one call per trace
        # entry each.
        if core.lookahead:
            entry = core.lookahead.popleft()
        else:
            entry = next(core.trace, None)
        if entry is None:
            self._finish_core(core, now)
            return
        core.pending_entry = entry
        width = core.retire_width
        self._seq += 1
        heapq.heappush(
            self._heap,
            (now + (entry.gap + width - 1) // width, self._seq, _CORE, core.core_id),
        )

    def _finish_core(self, core: CoreState, now: int) -> None:
        if not core.done:
            core.done = True
            core.finish_time = max(now, 1)
            self._active_cores -= 1

    def _handle_core(self, core_id: int, now: int, retry: bool) -> None:
        core = self.cores[core_id]
        if core.done:
            return
        entry = core.pending_entry
        if entry is None:
            return
        if retry:
            core.stall_cycles += now - core.stall_start
            core.stalled = False
            core.waiting_mshr = False
        else:
            core.instructions_issued += entry.gap
            core.loads += 1
            core.accesses_done += 1

        cache = self._caches[core_id]
        mshr = self._mshrs[core_id]
        line = entry.line_addr
        is_write = entry.is_write
        # Inlined fork of L2Cache.lookup (DESIGN.md §15) — the branch
        # bodies consume the line's fields directly, so no LookupResult is
        # ever built on the per-access path.
        cache_set = self._sets_by_core[core_id][line % self._nsets_by_core[core_id]]
        line_obj = cache_set.pop(line, None)
        if line_obj is not None:
            cache_set[line] = line_obj  # reinsert at the MRU end
            cache.demand_hits += 1
            if is_write:
                line_obj.dirty = True
            if not retry:
                core.l2_hits += 1
            if line_obj.prefetched and not line_obj.ever_used:
                line_obj.ever_used = True
                line_obj.prefetched = False
                cache.useful_prefetch_hits += 1
                self._count_useful(
                    line_obj.core_id,
                    line,
                    row_hit_fill=line_obj.row_hit_fill,
                    late=False,
                )
            prefetcher = self._prefetchers[core_id]
            if prefetcher is not None:
                candidates = prefetcher.on_access(line, True, pc=entry.pc)
                if candidates:
                    self._issue_prefetches(core_id, candidates, entry.pc, now)
        else:
            cache.demand_misses += 1
            if not retry:
                # FDP feedback counts architectural misses, so it shares the
                # retry guard: an access that stalled on a full MSHR file and
                # came back is still *one* miss, not two (and the pollution
                # filter probe is consuming, so it must not run twice either).
                core.l2_misses += 1
                fdp = self._fdp[core_id]
                if fdp is not None:
                    fdp.demand_misses += 1
                    if fdp.pollution_filter.check_miss(line):
                        fdp.pollution_misses += 1
            mshr_entries = mshr._entries
            mshr_entry = mshr_entries.get(line)
            if mshr_entry is not None:
                request = mshr_entry.request
                if request.is_prefetch:
                    request.promote()
                    # Re-key the request in the scheduler's selection heap
                    # (no-op if it already left the request buffer).
                    self.engine.note_promotion(request)
                    mshr_entry.promoted_late = True
                    self._count_useful(
                        request.core_id, line, row_hit_fill=None, late=True
                    )
                if is_write:
                    mshr_entry.dirty_on_fill = True
                mshr_entry.waiters.append(core_id)
                # Delete-then-set keeps the dict ordered by send time, the
                # invariant CoreState.rob_blocked()'s O(1) oldest read needs.
                od = core.outstanding_demand
                if line in od:
                    del od[line]
                od[line] = core.instructions_issued
            else:
                if len(mshr_entries) >= mshr.capacity:
                    core.stalled = True
                    core.waiting_mshr = True
                    core.stall_start = now
                    core.mshr_stalls += 1
                    self._mshr_waiters[id(mshr)].append(core_id)
                    return
                request = self.engine.build_request(line, core_id, False, now)
                mshr_entry = mshr.allocate(line, request)
                mshr_entry.dirty_on_fill = is_write
                mshr_entry.waiters.append(core_id)
                self.engine.enqueue_demand(request)
                self._schedule_tick(
                    request.channel, self.engine.earliest_service(request, now)
                )
                od = core.outstanding_demand
                if line in od:
                    del od[line]
                od[line] = core.instructions_issued
            prefetcher = self._prefetchers[core_id]
            if prefetcher is not None:
                candidates = prefetcher.on_access(line, False, pc=entry.pc)
                if candidates:
                    self._issue_prefetches(core_id, candidates, entry.pc, now)

        core.pending_entry = None
        # Inlined fork of CoreState.rob_blocked (first outstanding entry is
        # the oldest; see that method's ordering comment).
        od = core.outstanding_demand
        if od and core.instructions_issued - next(iter(od.values())) >= (
            self._rob_by_core[core_id]
        ):
            core.stalled = True
            core.stall_start = now
            if self.config.core.runahead:
                self._run_runahead(core, now)
        else:
            # Inlined _schedule_core_next (one call per access otherwise).
            if core.accesses_done >= core.target_accesses:
                self._finish_core(core, now)
                return
            if core.lookahead:
                nxt = core.lookahead.popleft()
            else:
                nxt = next(core.trace, None)
            if nxt is None:
                self._finish_core(core, now)
                return
            core.pending_entry = nxt
            width = core.retire_width
            self._seq += 1
            heapq.heappush(
                self._heap,
                (now + (nxt.gap + width - 1) // width, self._seq, _CORE, core_id),
            )

    # -- prefetch issue ---------------------------------------------------------

    def _issue_prefetches(
        self, core_id: int, candidates, pc: int, now: int
    ) -> None:
        cache = self._caches[core_id]
        mshr = self._mshrs[core_id]
        ddpf = self._ddpf[core_id]
        fdp = self._fdp[core_id]
        stats = self.results[core_id]
        prefetcher = self._prefetchers[core_id]
        engine = self.engine
        # Direct membership probes (cache.touch_for_prefetcher and
        # mshr.contains are pure presence checks) and bound-method hoists:
        # this loop runs for every candidate of every trigger.
        sets = cache._sets
        num_sets = cache.num_sets
        mshr_entries = mshr._entries
        mshr_cap = mshr.capacity - _DEMAND_MSHR_RESERVE
        build_request = engine.build_request
        enqueue_prefetch = engine.enqueue_prefetch
        earliest_service = engine.earliest_service
        schedule_tick = self._schedule_tick
        record_sent = self.tracker.record_sent
        rejected_tail = 0
        for index, candidate in enumerate(candidates):
            if candidate in sets[candidate % num_sets] or candidate in mshr_entries:
                continue
            if ddpf is not None and not ddpf.allow(candidate, pc):
                stats.pf_filtered += 1
                continue
            if len(mshr_entries) >= mshr_cap:
                stats.pf_mshr_rejected += len(candidates) - index
                rejected_tail = len(candidates) - index
                break
            request = build_request(candidate, core_id, True, now)
            if enqueue_prefetch(request):
                mshr.allocate(candidate, request)
                record_sent(core_id)
                stats.pf_sent += 1
                if fdp is not None:
                    fdp.sent += 1
                schedule_tick(request.channel, earliest_service(request, now))
            else:
                stats.pf_rejected_full += len(candidates) - index
                rejected_tail = len(candidates) - index
                break
        if (
            rejected_tail
            and prefetcher is not None
            and self.config.prefetcher.skipless
        ):
            # Optional skip-less mode: stream prefetchers re-attempt the
            # rejected lines on the next trigger instead of dropping them
            # (the paper's prefetcher drops them, losing coverage).
            prefetcher.rewind(rejected_tail)

    def _count_useful(
        self, core_id: int, line: int, row_hit_fill: Optional[bool], late: bool
    ) -> None:
        """A prefetch from ``core_id`` proved useful (PUC += 1)."""
        self.tracker.record_used(core_id)
        stats = self.results[core_id]
        stats.pf_used += 1
        if late:
            stats.pf_late += 1
        else:
            stats.prefetch_fills_used += 1
            if row_hit_fill:
                stats.useful_prefetch_row_hits += 1
            if self.collect_service_times:
                pending = self._pf_service_pending[core_id]
                service = pending.pop(line, None)
                if service is not None:
                    stats.useful_service_times.append(service)
        ddpf = self._ddpf[core_id]
        if ddpf is not None:
            ddpf.train(line, useful=True)
        fdp = self._fdp[core_id]
        if fdp is not None:
            fdp.used += 1
            if late:
                fdp.late += 1

    # -- runahead execution (paper §6.14) ------------------------------------------

    def _run_runahead(self, core: CoreState, now: int) -> None:
        """Issue future accesses as runahead requests during a stall."""
        cache = self._caches[core.core_id]
        mshr = self._mshrs[core.core_id]
        prefetcher = self._prefetchers[core.core_id]
        entries = core.peek_ahead(self.config.core.runahead_max_depth)
        for entry in entries:
            line = entry.line_addr
            if cache.touch_for_prefetcher(line) or mshr.contains(line):
                continue
            if mshr.occupancy >= mshr.capacity - _DEMAND_MSHR_RESERVE:
                break
            request = self.engine.build_request(
                line, core.core_id, False, now, is_runahead=True
            )
            mshr.allocate(line, request)
            self.engine.enqueue_demand(request)
            self._schedule_tick(
                request.channel, self.engine.earliest_service(request, now)
            )
            core.runahead_issued += 1
            if prefetcher is not None:
                # Only-train policy: existing streams keep training, no new
                # allocations (paper §6.14, [18]).
                candidates = prefetcher.on_access(
                    line, was_hit=False, pc=entry.pc, allocate=False
                )
                if candidates:
                    self._issue_prefetches(core.core_id, candidates, entry.pc, now)

    # -- DRAM events --------------------------------------------------------------

    def _handle_tick(self, channel: int, now: int) -> None:
        if self._telemetry_on:
            self.telemetry.on_tick(self, channel, now)
        serviced, next_wake = self.engine.tick(channel, now)
        if serviced:
            heap = self._heap
            seq = self._seq
            for request in serviced:
                seq += 1
                heapq.heappush(heap, (request.completion, seq, _FILL, request))
            self._seq = seq
        if next_wake is not None:
            self._schedule_tick(channel, max(next_wake, now + 1))

    def _handle_fill(self, request: MemRequest, now: int) -> None:
        core_id = request.core_id
        mshr = self._mshrs[core_id]
        stats = self.results[core_id]
        line = request.line_addr
        if request.is_write:
            # Writeback completion: the data left the chip; nothing fills.
            stats.writeback_fills += 1
            return
        # Inlined fork of MSHR.free.
        mshr_entries = mshr._entries
        mshr_entry = mshr_entries.pop(line, None)
        if mshr_entry is not None:
            mshr.total_freed += 1
        row_hit = bool(request.row_hit_service)

        is_prefetch = request.is_prefetch
        if is_prefetch:
            stats.prefetch_fills += 1
            if row_hit:
                stats.prefetch_row_hits += 1
            if self.collect_service_times:
                self._pf_service_pending[core_id][line] = now - request.arrival
        elif request.promoted:
            stats.promoted_fills += 1
            if row_hit:
                stats.promoted_row_hits += 1
        elif request.is_runahead:
            stats.runahead_fills += 1
            if row_hit:
                stats.demand_row_hits += 1
        else:
            stats.demand_fills += 1
            if row_hit:
                stats.demand_row_hits += 1

        # Inlined fork of L2Cache.fill (DESIGN.md §15) — victim fields are
        # consumed right here, so no EvictionInfo is built.  The new line
        # lands before the victim's side effects run, matching
        # fill-then-handle-eviction order.
        dirty_fill = bool(mshr_entry is not None and mshr_entry.dirty_on_fill)
        cache_set = self._sets_by_core[core_id][line % self._nsets_by_core[core_id]]
        resident = cache_set.pop(line, None)
        if resident is not None:
            cache_set[line] = resident  # reinsert at the MRU end
            if dirty_fill:
                resident.dirty = True
        else:
            victim = None
            if len(cache_set) >= self._assoc_by_core[core_id]:
                victim_addr = next(iter(cache_set))
                victim = cache_set.pop(victim_addr)
            cache_set[line] = CacheLine(is_prefetch, core_id, row_hit, dirty_fill)
            if victim is not None:
                if victim.dirty:
                    self._issue_writeback(victim.core_id, victim_addr, now)
                if victim.prefetched and not victim.ever_used:
                    self.results[victim.core_id].pf_evicted_unused += 1
                    self._note_unused_prefetch(victim.core_id, victim_addr)
                elif is_prefetch:
                    fdp = self._fdp[core_id]
                    if fdp is not None:
                        fdp.pollution_filter.record_eviction(victim_addr)

        if mshr_entry is not None and mshr_entry.waiters:
            waiters = mshr_entry.waiters
            if len(waiters) == 1:
                # Single waiter (the overwhelmingly common case): skip the
                # order-preserving dedupe dict allocation entirely.
                waiter = self.cores[waiters[0]]
                waiter.outstanding_demand.pop(line, None)
                self._maybe_resume(waiter, now)
            else:
                # Order-preserving dedupe: a core can appear twice (demand
                # then retry), and wake order must not depend on hash order.
                for waiter_id in dict.fromkeys(waiters):
                    waiter = self.cores[waiter_id]
                    waiter.outstanding_demand.pop(line, None)
                    self._maybe_resume(waiter, now)
        # Inlined fork of _wake_mshr_waiters (the drop path wakes through
        # the shared method).
        mshr_waiters = self._mshr_waiters.get(id(mshr))
        if mshr_waiters and len(mshr_entries) < mshr.capacity:
            self._push(now, _RETRY, mshr_waiters.popleft())

    def _issue_writeback(self, core_id: int, line: int, now: int) -> None:
        """Send a dirty evicted line back to DRAM.

        Writebacks travel through an (unbounded) write buffer rather than
        the MSHR file, schedule as demands, and wake nobody on completion.
        """
        request = self.engine.build_request(
            line, core_id, False, now, is_write=True
        )
        self.engine.enqueue_demand(request)
        self._schedule_tick(
            request.channel, self.engine.earliest_service(request, now)
        )

    def _note_unused_prefetch(self, core_id: int, line: int) -> None:
        """A prefetched line left the cache (or was dropped) unused."""
        ddpf = self._ddpf[core_id]
        if ddpf is not None:
            ddpf.train(line, useful=False)
        if self.collect_service_times:
            pending = self._pf_service_pending[core_id]
            service = pending.pop(line, None)
            if service is not None:
                self.results[core_id].useless_service_times.append(service)

    def _maybe_resume(self, core: CoreState, now: int) -> None:
        if (
            core.stalled
            and not core.waiting_mshr
            and not core.done
            and not core.rob_blocked()
        ):
            core.stall_cycles += now - core.stall_start
            core.stalled = False
            self._schedule_core_next(core, now)

    def _wake_mshr_waiters(self, mshr: MSHR, now: int) -> None:
        waiters = self._mshr_waiters.get(id(mshr))
        if not waiters or mshr.full:
            return
        core_id = waiters.popleft()
        self._push(now, _RETRY, core_id)

    def _on_drop(self, request: MemRequest) -> None:
        """APD dropped a prefetch: invalidate its MSHR entry (paper §4.4)."""
        core_id = request.core_id
        self._mshrs[core_id].free(request.line_addr)
        self.results[core_id].pf_dropped += 1
        self._note_unused_prefetch(core_id, request.line_addr)
        self._wake_mshr_waiters(self._mshrs[core_id], self._now)

    def _handle_refresh(self, channel_id: int, now: int) -> None:
        scheduler = self._refresh[channel_id]
        done = scheduler.apply(self.engine.channels[channel_id], now)
        self._schedule_tick(channel_id, done)
        if self._active_cores > 0:
            self._push(scheduler.next_refresh_after(now), _REFRESH, channel_id)

    # -- interval events -------------------------------------------------------------

    def _handle_interval(self, now: int) -> None:
        if self.checker is not None:
            # Audit before end_interval resets PSC/PUC: the checker compares
            # the live interval counters against the per-core stat deltas.
            self.checker.on_interval(now)
        # Telemetry brackets the PAR recomputation: the pre-hook reads the
        # interval's live PSC/PUC, the post-hook the derived PAR state.
        self.telemetry.on_interval_pre(self, now)
        self.tracker.end_interval()
        # New PAR/threshold values: invalidate cached priority keys and
        # force the APD drop deadlines to be re-derived.
        self.engine.note_interval()
        for fdp in self._fdp:
            if fdp is not None:
                fdp.adjust()
        self.telemetry.on_interval_post(self, now)
        if self._active_cores > 0:
            self._push(now + self.tracker.interval, _INTERVAL, None)

    # -- results --------------------------------------------------------------------

    def _collect(self, max_cycles: Optional[int]) -> SimResult:
        end_time = self._now if max_cycles is None else min(self._now, max_cycles)
        for core, stats in zip(self.cores, self.results):
            if not core.done:
                # Charge an unfinished stall up to the end of simulation.
                if core.stalled:
                    core.stall_cycles += max(0, end_time - core.stall_start)
                core.finish_time = max(end_time, 1)
            stats.instructions = core.instructions_retired
            stats.cycles = core.finish_time
            stats.loads = core.loads
            stats.stall_cycles = core.stall_cycles
            stats.l2_hits = core.l2_hits
            stats.l2_misses = core.l2_misses
            stats.mshr_stalls = core.mshr_stalls
        engine_stats = self.engine.stats
        total_row_hits = sum(
            bank.hits for channel in self.engine.channels for bank in channel.banks
        )
        total_accesses = sum(
            bank.total_accesses
            for channel in self.engine.channels
            for bank in channel.banks
        )
        if self.checker is not None:
            self.checker.on_end(end_time)
        trace = self.telemetry.finalize(self, end_time)
        return SimResult(
            policy=self.config.policy,
            cores=self.results,
            total_cycles=max((core.finish_time for core in self.cores), default=0),
            bus_traffic_lines=self.engine.total_lines_transferred(),
            row_buffer_hit_rate=(
                total_row_hits / total_accesses if total_accesses else 0.0
            ),
            dropped_prefetches=engine_stats.dropped_prefetches,
            prefetches_rejected_full=engine_stats.prefetches_rejected_full,
            demand_overflows=engine_stats.demand_overflows,
            accuracy_history=[list(h) for h in self.tracker.history],
            trace=trace,
        )


def simulate(
    config: SystemConfig,
    benchmarks: Sequence[ProfileLike],
    max_accesses_per_core: int = 20_000,
    *,
    seed: int = 0,
    max_cycles: Optional[int] = None,
    collect_service_times: bool = False,
    check: Optional[bool] = None,
    telemetry: Union[None, bool, NoopCollector] = None,
    scheduler: Optional[str] = None,
    backend: Optional[str] = None,
) -> SimResult:
    """Build a :class:`System` and run it — the one-call entry point.

    The tuning knobs are keyword-only.  ``check=True`` (or
    ``$REPRO_CHECK=1`` with ``check=None``) runs the simulation under the
    :mod:`repro.validate` invariant auditor; ``telemetry=True`` (or a
    collector instance) attaches an interval-sampled
    :class:`~repro.telemetry.trace.SimTrace` to the result.
    ``backend`` selects the simulation loop (``"event"``, ``"optimized"``
    or ``"reference"``; the legacy ``scheduler`` spelling is honored for
    the latter two) — all backends produce byte-identical results.
    """
    system = System(
        config,
        benchmarks,
        seed=seed,
        collect_service_times=collect_service_times,
        check=check,
        telemetry=telemetry,
        scheduler=scheduler,
        backend=backend,
    )
    return system.run(max_accesses_per_core, max_cycles=max_cycles)
