"""Result containers produced by a simulation run.

``CoreResult`` carries everything the paper's metrics need per core;
``SimResult`` aggregates the system view (bus traffic, row-buffer hit
rate, controller counters).  The metric formulas themselves (WS/HS/UF,
ACC/COV, RBHU, SPL) live in :mod:`repro.metrics`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.telemetry.trace import SimTrace

# Version of the CoreResult/SimResult serialized form.  Bump whenever a
# field is added, removed or reinterpreted (and bump CACHE_VERSION in
# repro.runtime.store alongside, so stale cached payloads are ignored
# rather than misread).  History: 1 = pre-telemetry; 2 = adds
# schema_version itself plus SimResult.trace.
RESULT_SCHEMA_VERSION = 2


@dataclass
class CoreResult:
    """Per-core outcome of one simulation run."""

    core_id: int
    benchmark: str
    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stall_cycles: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    # Prefetch accounting (paper §4.1 and §5.2).
    pf_sent: int = 0
    pf_used: int = 0
    pf_late: int = 0
    pf_dropped: int = 0
    pf_rejected_full: int = 0
    pf_filtered: int = 0
    pf_mshr_rejected: int = 0
    # Prefetched lines evicted from the L2 without ever being used; with
    # the in-flight and still-resident populations this closes the
    # pf_sent conservation law audited by repro.validate.
    pf_evicted_unused: int = 0
    # Accesses that found the MSHR file full and had to stall/retry.
    mshr_stalls: int = 0
    # Bus traffic in cache lines, by category (paper Figure 8).
    demand_fills: int = 0
    promoted_fills: int = 0
    prefetch_fills: int = 0
    prefetch_fills_used: int = 0
    runahead_fills: int = 0
    writeback_fills: int = 0
    # Row-hit components for RBHU (paper §6.1.1).
    demand_row_hits: int = 0
    promoted_row_hits: int = 0
    useful_prefetch_row_hits: int = 0
    prefetch_row_hits: int = 0
    # Optional service-time samples for Figure 4(a).
    useful_service_times: List[int] = field(default_factory=list)
    useless_service_times: List[int] = field(default_factory=list)
    schema_version: int = RESULT_SCHEMA_VERSION

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def spl(self) -> float:
        """Stall cycles per load instruction."""
        return self.stall_cycles / self.loads if self.loads else 0.0

    @property
    def mpki(self) -> float:
        """L2 misses per 1000 instructions."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l2_misses / self.instructions

    @property
    def accuracy(self) -> float:
        """ACC = useful prefetches / prefetches sent (paper §5.2)."""
        return self.pf_used / self.pf_sent if self.pf_sent else 0.0

    @property
    def coverage(self) -> float:
        """COV = useful / (demand requests + useful) (paper §5.2)."""
        denominator = self.demand_fills + self.pf_used
        return self.pf_used / denominator if denominator else 0.0

    @property
    def useful_prefetch_traffic(self) -> int:
        """Lines transferred for prefetches that proved useful."""
        return self.promoted_fills + self.prefetch_fills_used

    @property
    def useless_prefetch_traffic(self) -> int:
        """Lines transferred for prefetches never used."""
        return self.prefetch_fills - self.prefetch_fills_used

    @property
    def total_traffic(self) -> int:
        return (
            self.demand_fills
            + self.promoted_fills
            + self.prefetch_fills
            + self.runahead_fills
            + self.writeback_fills
        )

    @property
    def rbhu(self) -> float:
        """Row-buffer hit rate over useful requests (paper §6.1.1)."""
        useful_requests = self.demand_fills + self.runahead_fills + self.promoted_fills + self.prefetch_fills_used
        if not useful_requests:
            return 0.0
        useful_hits = (
            self.demand_row_hits
            + self.promoted_row_hits
            + self.useful_prefetch_row_hits
        )
        return useful_hits / useful_requests

    def to_dict(self) -> Dict:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "CoreResult":
        return cls(**payload)


@dataclass
class SimResult:
    """System-level outcome of one simulation run."""

    policy: str
    cores: List[CoreResult]
    total_cycles: int = 0
    bus_traffic_lines: int = 0
    row_buffer_hit_rate: float = 0.0
    dropped_prefetches: int = 0
    prefetches_rejected_full: int = 0
    demand_overflows: int = 0
    accuracy_history: Optional[List[List[float]]] = None
    # Interval telemetry (present only when the run was traced).
    trace: Optional[SimTrace] = None
    schema_version: int = RESULT_SCHEMA_VERSION

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def ipc(self, core_id: int = 0) -> float:
        return self.cores[core_id].ipc

    def ipcs(self) -> List[float]:
        return [core.ipc for core in self.cores]

    @property
    def total_traffic(self) -> int:
        return sum(core.total_traffic for core in self.cores)

    def traffic_breakdown(self) -> Dict[str, int]:
        """Bus traffic split the way Figure 8 plots it."""
        return {
            "demand": sum(
                c.demand_fills + c.runahead_fills + c.writeback_fills
                for c in self.cores
            ),
            "pref-useful": sum(c.useful_prefetch_traffic for c in self.cores),
            "pref-useless": sum(c.useless_prefetch_traffic for c in self.cores),
        }

    def to_dict(self) -> Dict:
        """JSON-serializable form; inverse of :meth:`from_dict`.

        The round-trip is exact — ints stay ints and floats survive via
        shortest-repr JSON — so a cached result is interchangeable with
        a live one (asserted in tests/test_result_cache.py).
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "SimResult":
        rest = {
            key: value
            for key, value in payload.items()
            if key not in ("cores", "trace")
        }
        cores = [CoreResult.from_dict(core) for core in payload["cores"]]
        trace_payload = payload.get("trace")
        trace = SimTrace.from_dict(trace_payload) if trace_payload else None
        return cls(cores=cores, trace=trace, **rest)

    def summary(self) -> Dict[str, float]:
        """Compact scalar summary for tables and benchmarks."""
        return {
            "policy": self.policy,
            "cycles": self.total_cycles,
            "ipc_sum": sum(self.ipcs()),
            "traffic": self.total_traffic,
            "rbh": self.row_buffer_hit_rate,
            "dropped": self.dropped_prefetches,
        }
