"""System assembly and the event-driven simulator.

:class:`~repro.sim.system.System` wires cores, caches, MSHRs, prefetchers,
filters, the accuracy tracker and the DRAM controller engine together and
runs the discrete-event loop.  :func:`~repro.sim.system.simulate` is the
one-call entry point used by examples and experiments.
"""

from repro.sim.results import CoreResult, SimResult
from repro.sim.system import System, simulate

__all__ = ["System", "simulate", "SimResult", "CoreResult"]
