"""CLI for sweep campaigns.

Usage::

    python -m repro.campaign run --name smoke                 # preset
    python -m repro.campaign run --spec my_sweep.json -j 8    # custom grid
    python -m repro.campaign status <campaign-dir>
    python -m repro.campaign resume <campaign-dir> -j 8
    python -m repro.campaign export <campaign-dir> --format csv -o out.csv

``run`` prints the campaign directory it used; ``status``/``resume``/
``export`` take that directory.  A ``run`` over a directory that already
has ledger entries refuses to proceed unless you pass ``--resume``
(continue unfinished work) or ``--fresh`` (discard the ledger and drive
every job again — results still cached in the store stay warm).

Exit codes: 0 on success, 1 if any job is failed/unfinished, 2 on usage
or spec errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.campaign.executor import (
    Campaign,
    CampaignError,
    CampaignRunner,
    default_directory,
)
from repro.campaign.ledger import LEDGER_NAME
from repro.campaign.report import export, status_summary
from repro.campaign.spec import CampaignSpec, SpecError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Declarative sweep campaigns with a persistent run ledger.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="expand a spec and run its jobs")
    source = run.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--name", help="predefined campaign (see repro.campaign.presets)"
    )
    source.add_argument("--spec", help="path to a campaign spec JSON file")
    run.add_argument("--dir", help="campaign directory (default: derived from the spec)")
    run.add_argument(
        "--resume",
        action="store_true",
        help="continue an existing campaign: re-run only unfinished jobs",
    )
    run.add_argument(
        "--fresh",
        action="store_true",
        help="discard the existing ledger and drive every job again",
    )
    run.add_argument(
        "--limit",
        type=int,
        default=None,
        help="run at most N jobs then stop (smoke/testing hook; the rest stay pending)",
    )
    _add_execution_flags(run)

    status = sub.add_parser("status", help="progress/failure report from the ledger")
    status.add_argument("directory", help="campaign directory")

    resume = sub.add_parser("resume", help="re-run only pending/failed jobs")
    resume.add_argument("directory", help="campaign directory")
    resume.add_argument("--limit", type=int, default=None, help=argparse.SUPPRESS)
    _add_execution_flags(resume)

    exp = sub.add_parser("export", help="export ledger + metrics rows")
    exp.add_argument("directory", help="campaign directory")
    exp.add_argument("--format", choices=("csv", "json"), default="csv")
    exp.add_argument("--output", "-o", help="output file (default: stdout)")
    exp.add_argument(
        "--cache-dir", default=None, help="result store the campaign ran against"
    )
    return parser


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes (0 = one per CPU core; default $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result store location (default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts per failing job before its failure is final",
    )


def _runtime(args):
    from repro import runtime

    if getattr(args, "jobs", None) is not None or getattr(args, "cache_dir", None):
        return runtime.configure(jobs=args.jobs, cache_dir=args.cache_dir)
    return runtime.get_runtime()


def _load_spec(args) -> CampaignSpec:
    if args.name:
        from repro.campaign import presets

        return presets.build(args.name)
    path = Path(args.spec)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SpecError(f"cannot read spec file {path}: {exc}") from exc
    # Accept both a bare spec and a campaign.json-style snapshot.
    return CampaignSpec.from_dict(payload.get("spec", payload))


def _finish_run(campaign: Campaign, run) -> int:
    print(status_summary(campaign))
    print(f"campaign directory: {campaign.directory}")
    return 1 if run.incomplete() else 0


def _cmd_run(args) -> int:
    runtime = _runtime(args)
    spec = _load_spec(args)
    directory = Path(args.dir) if args.dir else default_directory(spec, runtime.store.root)
    campaign = Campaign.create(spec, directory)
    if campaign.ledger.exists() and campaign.ledger.records():
        if args.fresh:
            campaign.ledger.path.unlink()
        elif not args.resume:
            print(
                f"error: {directory} already has a run ledger ({LEDGER_NAME}); "
                "pass --resume to continue it or --fresh to start over",
                file=sys.stderr,
            )
            return 2
    run = CampaignRunner(campaign, runtime=runtime, retries=args.retries).run(
        resume=True, limit=args.limit
    )
    return _finish_run(campaign, run)


def _cmd_status(args) -> int:
    campaign = Campaign.open(args.directory)
    print(status_summary(campaign))
    counts = campaign.status_counts()
    return 1 if counts.get("failed", 0) else 0


def _cmd_resume(args) -> int:
    runtime = _runtime(args)
    campaign = Campaign.open(args.directory)
    run = CampaignRunner(campaign, runtime=runtime, retries=args.retries).run(
        resume=True, limit=args.limit
    )
    return _finish_run(campaign, run)


def _cmd_export(args) -> int:
    from repro import runtime

    campaign = Campaign.open(args.directory)
    store = (
        runtime.Runtime(cache_dir=args.cache_dir).store
        if args.cache_dir
        else runtime.get_runtime().store
    )
    text = export(campaign, store, fmt=args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "status": _cmd_status,
    "resume": _cmd_resume,
    "export": _cmd_export,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (SpecError, CampaignError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
