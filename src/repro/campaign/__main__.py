"""CLI for sweep campaigns.

Usage::

    python -m repro.campaign run --name smoke                 # preset
    python -m repro.campaign run --spec my_sweep.json -j 8    # custom grid
    python -m repro.campaign status <campaign-dir>
    python -m repro.campaign resume <campaign-dir> -j 8
    python -m repro.campaign export <campaign-dir> --format csv -o out.csv

Multi-worker execution (shared SQLite job store with lease-based crash
reclaim)::

    python -m repro.campaign create --name paper --backend sqlite
    python -m repro.campaign worker <campaign-dir> &   # as many as you like,
    python -m repro.campaign worker <campaign-dir>     # on any machine
    python -m repro.campaign serve --port 8642         # JSON API + dashboard

Pass ``--stream`` to ``worker`` (or to a serial ``run``/``resume``) to
stream per-interval telemetry into the campaign store while jobs run;
``serve`` then renders it live at ``/dashboard`` (DESIGN.md §14).
Streaming never changes results, cache keys or exports.

``run`` prints the campaign directory it used; ``status``/``resume``/
``export`` take that directory.  A ``run`` over a directory that already
has ledger entries refuses to proceed unless you pass ``--resume``
(continue unfinished work) or ``--fresh`` (discard the ledger and drive
every job again — results still cached in the store stay warm).

``--backend jsonl|sqlite`` (or ``$REPRO_CAMPAIGN_BACKEND``) picks the
status journal; jsonl stays the default, and directories that already
hold a ``jobs.sqlite`` reopen on the sqlite backend automatically.
``worker`` requires sqlite: claims need a transactional store.  Workers
drain gracefully on SIGTERM (current job finishes and is journaled) and
lose nothing on SIGKILL (the lease expires; the job is reclaimed).

Exit codes: 0 on success, 1 if any job is failed/unfinished, 2 on usage
or spec errors.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from pathlib import Path
from typing import List, Optional

from repro.campaign.executor import (
    Campaign,
    CampaignError,
    CampaignRunner,
    default_directory,
)
from repro.campaign.jobstore import BACKENDS, DEFAULT_LEASE, JobStoreError
from repro.campaign.report import status_summary
from repro.campaign.spec import CampaignSpec, SpecError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Declarative sweep campaigns with a persistent run ledger.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="expand a spec and run its jobs")
    _add_spec_source(run)
    run.add_argument("--dir", help="campaign directory (default: derived from the spec)")
    _add_backend_flag(run)
    run.add_argument(
        "--resume",
        action="store_true",
        help="continue an existing campaign: re-run only unfinished jobs",
    )
    run.add_argument(
        "--fresh",
        action="store_true",
        help="discard the existing ledger and drive every job again",
    )
    run.add_argument(
        "--limit",
        type=int,
        default=None,
        help="run at most N jobs then stop (smoke/testing hook; the rest stay pending)",
    )
    _add_execution_flags(run)

    create = sub.add_parser(
        "create",
        help="snapshot a spec and enqueue its jobs without executing "
        "(workers do the executing)",
    )
    _add_spec_source(create)
    create.add_argument(
        "--dir", help="campaign directory (default: derived from the spec)"
    )
    _add_backend_flag(create)

    status = sub.add_parser("status", help="progress/failure report from the ledger")
    status.add_argument("directory", help="campaign directory")

    resume = sub.add_parser("resume", help="re-run only pending/failed jobs")
    resume.add_argument("directory", help="campaign directory")
    resume.add_argument("--limit", type=int, default=None, help=argparse.SUPPRESS)
    _add_execution_flags(resume)

    worker = sub.add_parser(
        "worker",
        help="claim and execute jobs from a shared sqlite job store until "
        "the campaign is drained",
    )
    worker.add_argument("directory", help="campaign directory (sqlite backend)")
    worker.add_argument(
        "--worker-id",
        default=None,
        help="stable identity for leases (default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--lease",
        type=float,
        default=DEFAULT_LEASE,
        help="claim lease in seconds; a dead worker's job is reclaimed "
        "this long after its last heartbeat (default: %(default)s)",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="seconds to sleep when no job is claimable (default: %(default)s)",
    )
    worker.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after claiming N jobs (testing hook)",
    )
    worker.add_argument(
        "--throttle",
        type=float,
        default=0.0,
        help="sleep N seconds after each claim before executing "
        "(rate-limiting / lease-reclaim smoke hook)",
    )
    worker.add_argument(
        "--stream",
        action="store_true",
        help="stream per-interval telemetry samples into the job store "
        "while jobs run (feeds the serve dashboard; results unchanged)",
    )
    worker.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts per failing job before its failure is final",
    )
    worker.add_argument(
        "--cache-dir",
        default=None,
        help="result store location (default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )

    serve = sub.add_parser(
        "serve", help="JSON-over-HTTP front-end: POST specs, GET status/export"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None, help="default 8642")
    serve.add_argument(
        "--root",
        default=None,
        help="campaigns root served (default $REPRO_CAMPAIGN_DIR or "
        "<cache-dir>/campaigns)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="result store exports read from (default $REPRO_CACHE_DIR)",
    )

    exp = sub.add_parser("export", help="export ledger + metrics rows")
    exp.add_argument("directory", help="campaign directory")
    exp.add_argument("--format", choices=("csv", "json"), default="csv")
    exp.add_argument("--output", "-o", help="output file (default: stdout)")
    exp.add_argument(
        "--cache-dir", default=None, help="result store the campaign ran against"
    )
    return parser


def _add_spec_source(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--name", help="predefined campaign (see repro.campaign.presets)"
    )
    source.add_argument("--spec", help="path to a campaign spec JSON file")


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="status journal backend (default $REPRO_CAMPAIGN_BACKEND or jsonl; "
        "multi-worker execution needs sqlite)",
    )


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes (0 = one per CPU core; default $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result store location (default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts per failing job before its failure is final",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="stream per-interval telemetry samples into the campaign "
        "store while jobs run (serial only; results unchanged)",
    )


def _runtime(args):
    from repro import runtime

    if getattr(args, "jobs", None) is not None or getattr(args, "cache_dir", None):
        return runtime.configure(jobs=getattr(args, "jobs", None), cache_dir=args.cache_dir)
    return runtime.get_runtime()


def _load_spec(args) -> CampaignSpec:
    if args.name:
        from repro.campaign import presets

        return presets.build(args.name)
    path = Path(args.spec)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SpecError(f"cannot read spec file {path}: {exc}") from exc
    # Accept both a bare spec and a campaign.json-style snapshot.
    return CampaignSpec.from_dict(payload.get("spec", payload))


def _finish_run(campaign: Campaign, run) -> int:
    print(status_summary(campaign))
    print(f"campaign directory: {campaign.directory}")
    return 1 if run.incomplete() else 0


def _cmd_run(args) -> int:
    runtime = _runtime(args)
    spec = _load_spec(args)
    directory = Path(args.dir) if args.dir else default_directory(spec, runtime.store.root)
    campaign = Campaign.create(spec, directory, backend=args.backend)
    ledger = campaign.ledger
    if ledger.exists() and ledger.records():
        if args.fresh:
            ledger.clear()
        elif not args.resume:
            print(
                f"error: {directory} already has a run ledger; "
                "pass --resume to continue it or --fresh to start over",
                file=sys.stderr,
            )
            return 2
    run = CampaignRunner(
        campaign, runtime=runtime, retries=args.retries, stream=args.stream
    ).run(resume=True, limit=args.limit)
    return _finish_run(campaign, run)


def _cmd_create(args) -> int:
    from repro import api

    spec = _load_spec(args)
    directory = Path(args.dir) if args.dir else None
    handle = api.Campaign.create(spec, directory=directory, backend=args.backend)
    print(
        f"campaign {handle.name!r}: {len(handle.unique_jobs())} job(s) "
        f"on the {handle.backend} backend"
    )
    print(f"campaign directory: {handle.directory}")
    return 0


def _cmd_status(args) -> int:
    from repro import api

    status = api.campaign_open(args.directory).status()
    print(status["text"])
    return 1 if status["counts"].get("failed", 0) else 0


def _cmd_resume(args) -> int:
    runtime = _runtime(args)
    campaign = Campaign.open(args.directory)
    run = CampaignRunner(
        campaign, runtime=runtime, retries=args.retries, stream=args.stream
    ).run(resume=True, limit=args.limit)
    return _finish_run(campaign, run)


def _cmd_worker(args) -> int:
    from repro.campaign.worker import default_worker_id, run_worker

    runtime = _runtime(args)
    campaign = Campaign.open(args.directory)
    worker_id = args.worker_id or default_worker_id()
    stop = threading.Event()

    def _drain(signum, frame):
        print(f"[{worker_id}] SIGTERM: draining after the current job", file=sys.stderr)
        stop.set()

    # Signal handlers only work in the main thread; the worker CLI owns it.
    previous = signal.signal(signal.SIGTERM, _drain)
    try:
        stats = run_worker(
            campaign,
            runtime=runtime,
            worker_id=worker_id,
            lease=args.lease,
            poll=args.poll,
            retries=args.retries,
            max_jobs=args.max_jobs,
            throttle=args.throttle,
            stream=args.stream,
            should_stop=stop.is_set,
            log=(lambda message: None) if args.quiet else print,
        )
    finally:
        signal.signal(signal.SIGTERM, previous)
    if stats.drained or args.max_jobs is not None:
        return 0
    counts = campaign.status_counts()
    total = len(campaign.unique_jobs())
    return 0 if counts.get("done", 0) == total else 1


def _cmd_serve(args) -> int:
    from repro.campaign.service import DEFAULT_PORT, serve

    runtime = _runtime(args) if args.cache_dir else None
    serve(
        host=args.host,
        port=args.port if args.port is not None else DEFAULT_PORT,
        root=args.root,
        runtime=runtime,
    )
    return 0


def _cmd_export(args) -> int:
    from repro import api, runtime

    explicit = runtime.Runtime(cache_dir=args.cache_dir) if args.cache_dir else None
    handle = api.campaign_open(args.directory, runtime=explicit)
    text = handle.export(fmt=args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "create": _cmd_create,
    "status": _cmd_status,
    "resume": _cmd_resume,
    "worker": _cmd_worker,
    "serve": _cmd_serve,
    "export": _cmd_export,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (SpecError, CampaignError, JobStoreError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
