"""Status summaries and metric export for campaigns.

``status_summary`` renders the ledger's view of a campaign — the
progress histogram, cumulative simulation time, and the identity + error
of every failed job — for ``python -m repro.campaign status``.

``export_rows`` joins the ledger with the result store into one flat row
per unique job: grid coordinates, status, and headline metrics
(cycles, traffic, IPCs, and WS/HS/UF for grid jobs whose workload has
alone coverage).  Rows deliberately contain **no run history** — no
timestamps, worker ids, or attempt counts (a job reclaimed from a
crashed worker legitimately takes more attempts than a clean run) — so
an interrupted-then-resumed campaign exports bit-for-bit the same bytes
as an uninterrupted one, on either ledger backend.  The CI smoke jobs
(``campaign-smoke``, ``distributed-smoke``) assert exactly that with
``cmp``.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional

from repro.campaign.executor import Campaign
from repro.metrics import harmonic_speedup, unfairness, weighted_speedup

# Fixed column order for CSV export (every row carries every column).
EXPORT_COLUMNS = (
    "campaign",
    "kind",
    "workload_index",
    "benchmarks",
    "policy",
    "variant",
    "seed",
    "accesses",
    "status",
    "key",
    "total_cycles",
    "total_traffic",
    "row_buffer_hit_rate",
    "ipcs",
    "ws",
    "hs",
    "uf",
    # Interval-telemetry series (filled only for traced jobs, i.e. runs
    # submitted with ``telemetry=True`` in the spec's sim kwargs).
    # Intervals are "|"-separated; per-core values within an interval
    # are "/"-separated.  All values are deterministic — no timestamps —
    # preserving the byte-for-byte resumed-export guarantee.
    "telemetry_intervals",
    "telemetry_par",
    "telemetry_row_hits",
    "telemetry_drops",
    "telemetry_buffer_occupancy",
)


def _telemetry_columns(trace) -> Dict[str, str]:
    """Flatten the headline trace series into deterministic CSV cells."""
    return {
        "telemetry_intervals": "|".join(str(cycle) for cycle in trace.intervals),
        "telemetry_par": "|".join(
            "/".join(f"{core[i]:.4f}" for core in trace.core("par"))
            for i in range(trace.num_intervals)
        ),
        "telemetry_row_hits": "|".join(
            str(int(value)) for value in trace.system("row_hits")
        ),
        "telemetry_drops": "|".join(
            str(int(value)) for value in trace.system("drops")
        ),
        "telemetry_buffer_occupancy": "|".join(
            f"{mean:.2f}/{int(peak)}"
            for mean, peak in zip(
                trace.system("buffer_occupancy_mean"),
                trace.system("buffer_occupancy_max"),
            )
        ),
    }


def status_summary(campaign: Campaign) -> str:
    """Human-readable progress report for one campaign."""
    jobs = campaign.unique_jobs()
    states = campaign.states()
    counts = campaign.status_counts()
    total = len(jobs)
    done = counts.get("done", 0)
    lines = [
        f"campaign {campaign.spec.name!r} at {campaign.directory}",
        f"  jobs: {total} total — "
        + ", ".join(f"{count} {status}" for status, count in counts.items() if count),
    ]
    elapsed = sum(
        state.elapsed or 0.0 for state in states.values() if state.status == "done"
    )
    cached = sum(1 for state in states.values() if state.status == "done" and state.cached)
    if done:
        lines.append(
            f"  finished: {done}/{total} ({cached} served from cache, "
            f"{elapsed:.1f}s simulated)"
        )
    failures = [job for job in jobs if states[job.key].status == "failed"]
    for job in failures:
        state = states[job.key]
        error = (state.error or "").strip().splitlines()
        last_line = error[-1] if error else "(no error text)"
        lines.append(
            f"  FAILED after {state.attempts} attempt(s): {job.describe()}\n"
            f"    {last_line}"
        )
    if counts.get("pending") or counts.get("interrupted") or failures:
        lines.append(
            f"  resume with: python -m repro.campaign resume {campaign.directory}"
        )
    return "\n".join(lines)


def _alone_ipc_table(campaign: Campaign, store) -> Dict:
    """(workload_index, seed_offset) → list of per-slot alone IPCs (or None)."""
    table: Dict = {}
    for job in campaign.jobs():
        if job.kind != "alone":
            continue
        slot = table.setdefault((job.workload_index, job.seed_offset), {})
        if job.position in slot:
            continue
        result = store.get(job.key)
        slot[job.position] = result.cores[0].ipc if result is not None else None
    return table


def export_rows(campaign: Campaign, store) -> List[Dict]:
    """One flat, deterministic row per unique job, in expansion order."""
    states = campaign.states()
    alone_table = _alone_ipc_table(campaign, store) if campaign.spec.include_alone else {}
    rows = []
    for job in campaign.unique_jobs():
        state = states[job.key]
        row = {column: "" for column in EXPORT_COLUMNS}
        row.update(
            campaign=campaign.spec.name,
            kind=job.kind,
            workload_index=job.workload_index,
            benchmarks="+".join(job.benchmarks),
            policy=job.policy,
            variant=job.variant,
            seed=job.seed,
            accesses=campaign.spec.accesses,
            status=state.status,
            key=job.key,
        )
        result = store.get(job.key) if state.status == "done" else None
        if result is not None:
            row.update(
                total_cycles=result.total_cycles,
                total_traffic=result.total_traffic,
                row_buffer_hit_rate=round(result.row_buffer_hit_rate, 6),
                ipcs="/".join(f"{ipc:.6f}" for ipc in result.ipcs()),
            )
            if result.trace is not None:
                row.update(_telemetry_columns(result.trace))
            if job.kind == "grid":
                slots = alone_table.get((job.workload_index, job.seed_offset), {})
                alone = [slots.get(i) for i in range(len(job.benchmarks))]
                if alone and all(ipc is not None for ipc in alone):
                    together = result.ipcs()
                    row.update(
                        ws=round(weighted_speedup(together, alone), 6),
                        hs=round(harmonic_speedup(together, alone), 6),
                        uf=round(unfairness(together, alone), 6),
                    )
        rows.append(row)
    return rows


def render_csv(rows: List[Dict]) -> str:
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(EXPORT_COLUMNS), lineterminator="\n")
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def render_json(rows: List[Dict]) -> str:
    return json.dumps(rows, indent=2, sort_keys=True) + "\n"


def export(campaign: Campaign, store, fmt: str = "csv") -> str:
    rows = export_rows(campaign, store)
    if fmt == "csv":
        return render_csv(rows)
    if fmt == "json":
        return render_json(rows)
    raise ValueError(f"unknown export format {fmt!r}; use 'csv' or 'json'")
