"""Predefined campaigns runnable by name from the CLI.

* ``smoke`` — a deliberately tiny two-policy campaign (two 2-core mixes,
  short runs) for CI and local sanity checks: it finishes in seconds and
  still exercises the full grid/alone/ledger/resume machinery.
* ``paper`` — the headline multiprogrammed evaluation: the 2/4/8-core
  mix grids of Figures 9, 16 and 17 under all five scheduling policies,
  with the single-core alone runs the speedup metrics need.  Workload
  seeds restart at 0 within each core-count group, so every job is
  content-identical to the one the corresponding figure script submits —
  running the campaign warms the figures and vice versa.

Both presets size themselves from ``$REPRO_SCALE`` unless given an
explicit :class:`~repro.experiments.runner.Scale`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.campaign.spec import CampaignSpec, Workload
from repro.experiments.runner import DEFAULT_POLICIES, Scale
from repro.workloads import workload_mixes


def smoke_campaign(scale: Optional[Scale] = None) -> CampaignSpec:
    """Tiny 2-policy campaign: 2 workloads × 2 policies + 4 alone runs."""
    return CampaignSpec.build(
        name="smoke",
        workloads=[["swim", "milc"], ["art", "libquantum"]],
        policies=["demand-first", "padc"],
        accesses=600,
    )


def paper_campaign(scale: Optional[Scale] = None) -> CampaignSpec:
    """The headline 2/4/8-core sweep behind Figures 9, 16 and 17."""
    scale = scale or Scale.from_env()
    workloads = []
    groups = (
        (2, scale.mixes_2core),
        (4, scale.mixes_4core),
        (8, scale.mixes_8core),
    )
    for num_cores, num_mixes in groups:
        for index, mix in enumerate(workload_mixes(num_cores, num_mixes, seed=100)):
            workloads.append(
                Workload.make([profile.name for profile in mix], seed=index)
            )
    return CampaignSpec.build(
        name="paper",
        workloads=workloads,
        policies=list(DEFAULT_POLICIES),
        accesses=scale.accesses,
    )


PRESETS: Dict[str, Callable[[Optional[Scale]], CampaignSpec]] = {
    "smoke": smoke_campaign,
    "paper": paper_campaign,
}


def build(name: str, scale: Optional[Scale] = None) -> CampaignSpec:
    """Build a preset campaign by name, or raise with the known names."""
    try:
        builder = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign preset {name!r}; known presets: {', '.join(sorted(PRESETS))}"
        ) from None
    return builder(scale)
