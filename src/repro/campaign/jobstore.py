"""SQLite-backed job store: the ledger contract plus worker leases.

The JSONL :class:`~repro.campaign.ledger.Ledger` is a journal — perfect
for one executor appending history, useless for N workers racing to
*claim* work.  This module keeps the journal (an append-only ``records``
table folded by the exact same :func:`~repro.campaign.ledger.fold_records`
logic) and adds the coordination the ROADMAP's multi-worker campaign
execution needs, PyExperimenter-style: jobs are rows in one shared
WAL-mode SQLite database (``jobs.sqlite`` in the campaign directory),
and any number of worker processes — on any machine that can reach the
file — pull open jobs from it.

The claim protocol:

* :meth:`SqliteJobStore.claim` atomically (``BEGIN IMMEDIATE``) picks
  the first claimable job in enqueue order — ``pending``, ``running``
  with an **expired lease**, or ``failed`` with attempts to spare —
  stamps it ``(worker_id, lease_expires)`` and journals the ``running``
  record.  Two workers can never claim the same job at once.
* While simulating, the worker renews its lease via
  :meth:`SqliteJobStore.heartbeat`.  A worker that is SIGKILL'd simply
  stops heartbeating; once its lease expires the job is claimable again
  and the campaign loses nothing.
* :meth:`SqliteJobStore.append` journals ``done``/``failed`` (releasing
  the lease) and keeps the per-job current-state row in step, so the
  store also works as a drop-in ledger backend for the single-process
  :class:`~repro.campaign.executor.CampaignRunner`.

Backend selection (``jsonl`` stays the default) is a knob: the
``--backend`` CLI flag, then ``$REPRO_CAMPAIGN_BACKEND``, then
auto-detection — a campaign directory that already holds ``jobs.sqlite``
reopens on the sqlite backend, so ``status``/``export`` need no flag.

Determinism contract: fold semantics, job keys and the result store are
identical across backends, so an interrupted-then-resumed multi-worker
sqlite campaign exports byte-for-byte what a single-process JSONL run
exports (CI's ``distributed-smoke`` job asserts this with ``cmp``).
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import closing
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.ledger import (
    LEDGER_NAME,
    JobState,
    Ledger,
    fold_records,
)

DB_NAME = "jobs.sqlite"

BACKENDS = ("jsonl", "sqlite")

# Lease granted to a claim (seconds) unless the claimer says otherwise.
# Workers heartbeat at a fraction of this, so only a dead worker ever
# lets it lapse.
DEFAULT_LEASE = 60.0

_SCHEMA = (
    """
    CREATE TABLE IF NOT EXISTS records (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        record TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS jobs (
        seq INTEGER PRIMARY KEY AUTOINCREMENT,
        key TEXT NOT NULL UNIQUE,
        state TEXT NOT NULL DEFAULT 'pending',
        attempts INTEGER NOT NULL DEFAULT 0,
        worker TEXT,
        lease_expires REAL,
        meta TEXT
    )
    """,
    # Streamed per-interval telemetry samples (DESIGN.md §14): one row
    # per stream record, landing in batched transactions *while the job
    # runs*.  ``id`` is the global landing order (the stream cursor);
    # ``idx`` is the record's position within its job's stream.
    """
    CREATE TABLE IF NOT EXISTS samples (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        key TEXT NOT NULL,
        idx INTEGER NOT NULL,
        record TEXT NOT NULL
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS samples_by_key ON samples (key, idx)
    """,
)


class JobStoreError(RuntimeError):
    """A job-store-level failure (bad backend name, claim misuse, ...)."""


def resolve_backend(backend: Optional[str] = None, directory=None) -> str:
    """Pick the campaign backend: explicit > env > detection > jsonl.

    Detection means: a directory that already holds ``jobs.sqlite``
    reopens as sqlite, so read-only commands (status/export) follow the
    backend the campaign actually ran on without needing a flag.
    """
    if backend is None:
        backend = os.environ.get("REPRO_CAMPAIGN_BACKEND") or None
    if backend is None and directory is not None:
        if (Path(directory) / DB_NAME).is_file():
            backend = "sqlite"
    backend = backend or "jsonl"
    if backend not in BACKENDS:
        raise JobStoreError(
            f"unknown campaign backend {backend!r}; "
            f"known backends: {', '.join(BACKENDS)}"
        )
    return backend


def make_store(directory, backend: Optional[str] = None):
    """The ledger/job-store for a campaign directory on a given backend."""
    directory = Path(directory)
    backend = resolve_backend(backend, directory)
    if backend == "sqlite":
        return SqliteJobStore(directory / DB_NAME)
    return Ledger(directory / LEDGER_NAME)


@dataclass(frozen=True)
class Claim:
    """One successful claim: the job, which attempt this is, its lease."""

    key: str
    attempt: int
    lease_expires: float
    meta: Dict


class SqliteJobStore:
    """Shared WAL-mode job store implementing the ledger contract + leases.

    Every public method opens a short-lived connection, so one store
    object is safe to use from any thread (the heartbeat thread included)
    and any number of processes share the database through SQLite's own
    locking.  ``lease`` is the default lease duration granted to claims
    and to ``running`` records appended by non-claiming executors.
    """

    def __init__(self, path, lease: float = DEFAULT_LEASE):
        self.path = Path(path)
        self.lease = float(lease)

    # -- connection plumbing --------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        conn.isolation_level = None  # explicit transactions only
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        for statement in _SCHEMA:
            conn.execute(statement)
        return conn

    # -- ledger contract ------------------------------------------------------

    def exists(self) -> bool:
        return self.path.is_file()

    def initialize(self) -> None:
        """Create the database and schema (so backend detection sticks)."""
        with closing(self._connect()):
            pass

    def clear(self) -> None:
        """Discard the store, including WAL sidecar files (``--fresh``)."""
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(f"{self.path}{suffix}")
            except FileNotFoundError:
                pass

    def append(self, record: Dict) -> None:
        """Journal one state transition and update the job's current row.

        Same record shape as :meth:`Ledger.append` takes, so the
        executor drives either backend through one code path.
        """
        record = dict(record)
        record.setdefault("ts", time.time())
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                self._journal(conn, record)
                self._apply(conn, record)
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise

    def records(self) -> List[Dict]:
        """All journal records, in append order."""
        if not self.exists():
            return []
        with closing(self._connect()) as conn:
            rows = conn.execute("SELECT record FROM records ORDER BY id").fetchall()
        records = []
        for (text,) in rows:
            try:
                record = json.loads(text)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "key" in record and "status" in record:
                records.append(record)
        return records

    def fold(self) -> Dict[str, JobState]:
        """Journal fold (ledger semantics) overlaid with live lease info.

        A job whose last record is ``running`` folds to ``interrupted``
        in the journal; if its lease is still live some worker is
        actually on it, so the fold reports it ``running`` instead.
        Once the lease expires it goes back to ``interrupted`` (treated
        like ``pending`` by resume/claim), which is exactly the
        crash-reclaim promise.
        """
        states = fold_records(self.records())
        now = time.time()
        if not self.exists():
            return states
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT key, lease_expires FROM jobs WHERE state = 'running'"
            ).fetchall()
        for key, lease_expires in rows:
            state = states.get(key)
            if (
                state is not None
                and state.status == "interrupted"
                and lease_expires is not None
                and lease_expires > now
            ):
                state.status = "running"
        return states

    # -- journal/row helpers --------------------------------------------------

    def _journal(self, conn: sqlite3.Connection, record: Dict) -> None:
        conn.execute(
            "INSERT INTO records (record) VALUES (?)",
            (json.dumps(record, sort_keys=True),),
        )

    def _apply(self, conn: sqlite3.Connection, record: Dict) -> None:
        key = record["key"]
        status = record["status"]
        meta = json.dumps(record["job"], sort_keys=True) if record.get("job") else None
        conn.execute(
            "INSERT OR IGNORE INTO jobs (key, state, meta) VALUES (?, 'pending', ?)",
            (key, meta),
        )
        if status == "running":
            conn.execute(
                "UPDATE jobs SET state = 'running', attempts = attempts + 1, "
                "worker = ?, lease_expires = ?, meta = COALESCE(?, meta) "
                "WHERE key = ?",
                (record.get("worker"), time.time() + self.lease, meta, key),
            )
        elif status in ("done", "failed"):
            conn.execute(
                "UPDATE jobs SET state = ?, lease_expires = NULL, "
                "meta = COALESCE(?, meta) WHERE key = ?",
                (status, meta, key),
            )

    # -- the worker-facing surface --------------------------------------------

    def ensure_jobs(self, jobs: Sequence[Tuple[str, Optional[Dict]]]) -> int:
        """Idempotently enqueue ``(key, meta)`` pairs in expansion order.

        Returns how many rows were newly inserted.  Keys already present
        (enqueued by another worker, or already journaled) are left
        untouched, so every worker can enqueue the full expansion on
        startup without perturbing in-flight state.
        """
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                inserted = 0
                for key, meta in jobs:
                    cursor = conn.execute(
                        "INSERT OR IGNORE INTO jobs (key, state, meta) "
                        "VALUES (?, 'pending', ?)",
                        (key, json.dumps(meta, sort_keys=True) if meta else None),
                    )
                    inserted += cursor.rowcount
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            return inserted

    def claim(
        self,
        worker_id: str,
        lease: Optional[float] = None,
        max_attempts: int = 1,
    ) -> Optional[Claim]:
        """Atomically claim the next open job, or None if nothing is open.

        Open means ``pending``, ``running`` with an expired lease (a
        dead worker's job, reclaimed), or ``failed`` with fewer than
        ``max_attempts`` attempts so far.  The claim bumps the attempt
        count, stamps ``(worker_id, lease_expires)`` and journals the
        ``running`` record in the same transaction.
        """
        lease = self.lease if lease is None else float(lease)
        now = time.time()
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT key, attempts, meta FROM jobs WHERE "
                    "state = 'pending' "
                    "OR (state = 'running' AND lease_expires IS NOT NULL "
                    "    AND lease_expires < ?) "
                    "OR (state = 'failed' AND attempts < ?) "
                    "ORDER BY seq LIMIT 1",
                    (now, int(max_attempts)),
                ).fetchone()
                if row is None:
                    conn.execute("COMMIT")
                    return None
                key, attempts, meta_text = row
                attempt = attempts + 1
                expires = now + lease
                conn.execute(
                    "UPDATE jobs SET state = 'running', attempts = ?, "
                    "worker = ?, lease_expires = ? WHERE key = ?",
                    (attempt, worker_id, expires, key),
                )
                # A re-claim (expired lease, failed retry) restarts the
                # job's sample stream from scratch: drop whatever the
                # previous attempt streamed, in the same transaction, so
                # a reader never sees a dead worker's torn stream.
                conn.execute("DELETE FROM samples WHERE key = ?", (key,))
                meta = json.loads(meta_text) if meta_text else {}
                record = {
                    "ts": now,
                    "key": key,
                    "status": "running",
                    "attempt": attempt,
                    "worker": worker_id,
                }
                if meta:
                    record["job"] = meta
                self._journal(conn, record)
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            return Claim(key=key, attempt=attempt, lease_expires=expires, meta=meta)

    def heartbeat(
        self, key: str, worker_id: str, lease: Optional[float] = None
    ) -> bool:
        """Renew a held lease; False if the job is no longer this worker's.

        A False return means the lease already expired and someone else
        reclaimed the job (or it finished) — the caller should treat its
        own work as a duplicate (harmless: simulations are deterministic
        and results content-addressed) and move on.
        """
        lease = self.lease if lease is None else float(lease)
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE jobs SET lease_expires = ? "
                "WHERE key = ? AND worker = ? AND state = 'running'",
                (time.time() + lease, key, worker_id),
            )
            return cursor.rowcount == 1

    def unfinished(self, max_attempts: int = 1) -> int:
        """Jobs that are not yet terminal: pending, in flight, or retryable.

        Workers exit when this reaches zero — a ``failed`` job whose
        attempts are exhausted is terminal and keeps nobody waiting.
        """
        if not self.exists():
            return 0
        with closing(self._connect()) as conn:
            (count,) = conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE "
                "state = 'pending' OR state = 'running' "
                "OR (state = 'failed' AND attempts < ?)",
                (int(max_attempts),),
            ).fetchone()
        return count

    def job_rows(self) -> List[Dict]:
        """Current per-job rows (state, attempts, worker, lease), in order."""
        if not self.exists():
            return []
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT key, state, attempts, worker, lease_expires "
                "FROM jobs ORDER BY seq"
            ).fetchall()
        return [
            {
                "key": key,
                "state": state,
                "attempts": attempts,
                "worker": worker,
                "lease_expires": lease_expires,
            }
            for key, state, attempts, worker, lease_expires in rows
        ]

    # -- streamed telemetry samples -------------------------------------------

    def append_samples(self, key: str, records: Sequence[Dict]) -> None:
        """Land one batch of stream records for ``key`` atomically.

        Positions (``idx``) continue from the key's current tail.  One
        transaction per batch means a SIGKILL mid-batch loses the whole
        batch, never half of it — readers only ever see whole records in
        stream order.
        """
        records = list(records)
        if not records:
            return
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                (base,) = conn.execute(
                    "SELECT COALESCE(MAX(idx) + 1, 0) FROM samples WHERE key = ?",
                    (key,),
                ).fetchone()
                conn.executemany(
                    "INSERT INTO samples (key, idx, record) VALUES (?, ?, ?)",
                    [
                        (key, base + offset, json.dumps(record, sort_keys=True))
                        for offset, record in enumerate(records)
                    ],
                )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise

    def samples(self, key: str) -> List[Dict]:
        """All of ``key``'s streamed records so far, in stream order."""
        if not self.exists():
            return []
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT record FROM samples WHERE key = ? ORDER BY idx", (key,)
            ).fetchall()
        return [json.loads(text) for (text,) in rows]

    def samples_since(
        self, cursor: int = 0, key: Optional[str] = None
    ) -> Tuple[List[Dict], int]:
        """Rows landed after ``cursor`` (a prior call's return), in order.

        Returns ``(rows, new_cursor)``; each row is ``{id, key, idx,
        record}``.  This is the incremental-poll surface the dashboard
        and ``api.Campaign.stream()`` consume.
        """
        if not self.exists():
            return [], cursor
        query = "SELECT id, key, idx, record FROM samples WHERE id > ?"
        params: List = [int(cursor)]
        if key is not None:
            query += " AND key = ?"
            params.append(key)
        query += " ORDER BY id"
        with closing(self._connect()) as conn:
            rows = conn.execute(query, params).fetchall()
        out = [
            {"id": row_id, "key": row_key, "idx": idx, "record": json.loads(text)}
            for row_id, row_key, idx, text in rows
        ]
        if rows:
            cursor = max(row[0] for row in rows)
        return out, cursor

    def sample_counts(self) -> Dict[str, int]:
        """Streamed records per job key (keys with none are absent)."""
        if not self.exists():
            return {}
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT key, COUNT(*) FROM samples GROUP BY key"
            ).fetchall()
        return dict(rows)

    def clear_samples(self, key: str) -> None:
        """Drop ``key``'s stream (a fresh attempt restarts it)."""
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.execute("DELETE FROM samples WHERE key = ?", (key,))
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
