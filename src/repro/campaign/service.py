"""Minimal JSON-over-HTTP front-end for campaign submission and status.

``python -m repro.campaign serve`` exposes the campaign layer as a
stdlib-only service (``http.server`` — no third-party dependency), the
submit/poll/export half of the ROADMAP's simulation-as-a-service item;
workers (``python -m repro.campaign worker``) do the actual simulating.

Endpoints (all JSON unless noted):

* ``GET  /`` and ``GET /dashboard`` — the live fleet dashboard
  (dependency-free static HTML + inline JS polling the JSON below).
* ``GET  /healthz`` — liveness probe.
* ``GET  /campaigns`` — every campaign under the service root with its
  backend and status histogram.
* ``POST /campaigns`` — body is a :class:`CampaignSpec` dict (or
  ``{"spec": {...}, "backend": "sqlite"}``); creates the campaign
  directory (sqlite backend by default — the service exists for
  multi-worker execution), enqueues the expansion, and returns its id.
  Re-POSTing an identical spec is idempotent; a different spec for the
  same directory is a 409.
* ``GET  /campaigns/<id>/status`` — status counts + human summary.
* ``GET  /campaigns/<id>/export?format=csv|json`` — the deterministic
  export (``text/csv`` or ``application/json``).
* ``GET  /campaigns/<id>/metrics`` — the full dashboard payload
  (progress + live series + FDP histogram + queue pressure), computed
  from the streamed ``samples`` table (DESIGN.md §14).
* ``GET  /campaigns/<id>/progress|series|fdp|pressure`` (``series``
  accepts ``?step=N`` for server-side downsampling) — the same
  aggregates individually.
* ``GET  /campaigns/<id>/samples?after=N`` — raw streamed sample rows
  past cursor ``N`` plus the next cursor, for incremental tailing.

Campaign ids are directory basenames under the service root
(``--root``, default the shared campaigns root); requests cannot escape
it.  All campaign logic is routed through the :class:`repro.api
.Campaign` handle (``api.Campaign.create`` / ``api.campaign_open``), so
the HTTP surface stays a thin shim over the same public API library
users call.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.campaign.executor import SPEC_FILE, CampaignError, campaigns_root
from repro.campaign.jobstore import JobStoreError
from repro.campaign.spec import SpecError

DEFAULT_PORT = 8642

# Maximum accepted request body; a CampaignSpec is a few KB of JSON,
# anything bigger is a mistake or abuse.
MAX_BODY_BYTES = 4 * 1024 * 1024


class ServiceError(Exception):
    """An HTTP-mappable service failure."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _campaign_id(raw: str) -> str:
    """Validate a campaign id: a plain directory basename, no traversal."""
    if not raw or raw in (".", "..") or "/" in raw or "\\" in raw:
        raise ServiceError(400, f"invalid campaign id {raw!r}")
    return raw


class CampaignService:
    """The service's request-independent state: root directory + runtime."""

    def __init__(self, root=None, runtime=None):
        self.root = Path(root) if root is not None else campaigns_root()
        self.runtime = runtime

    # -- handlers (plain data in, plain data out) -----------------------------

    def health(self) -> Dict:
        return {"ok": True, "root": str(self.root)}

    def _open(self, campaign_id: str):
        from repro import api

        directory = self.root / _campaign_id(campaign_id)
        try:
            return api.campaign_open(directory, runtime=self.runtime)
        except CampaignError as error:
            raise ServiceError(404, str(error)) from error

    def dashboard(self) -> str:
        from repro.dashboard import render_page

        return render_page()

    def list_campaigns(self) -> Dict:
        from repro import api

        campaigns = []
        if self.root.is_dir():
            for entry in sorted(self.root.iterdir()):
                if not (entry / SPEC_FILE).is_file():
                    continue
                try:
                    campaigns.append(api.campaign_open(entry).status())
                except CampaignError:
                    continue  # unreadable snapshot: not served, not fatal
        return {"campaigns": campaigns}

    def create_campaign(self, payload: Dict) -> Dict:
        from repro import api

        if not isinstance(payload, dict):
            raise ServiceError(400, "request body must be a JSON object")
        spec = payload.get("spec", payload)
        backend = payload.get("backend", "sqlite")
        directory = None
        if isinstance(payload.get("directory"), str):
            directory = self.root / _campaign_id(payload["directory"])
        try:
            campaign = api.Campaign.create(
                spec, directory=directory, backend=backend, root=self.root
            )
        except (SpecError, JobStoreError, KeyError) as error:
            raise ServiceError(400, str(error)) from error
        except CampaignError as error:
            raise ServiceError(409, str(error)) from error
        return {
            "id": campaign.directory.name,
            "directory": str(campaign.directory),
            "name": campaign.name,
            "fingerprint": campaign.spec.fingerprint(),
            "backend": campaign.backend,
            "jobs": len(campaign.unique_jobs()),
        }

    def status(self, campaign_id: str) -> Dict:
        return self._open(campaign_id).status()

    def export(self, campaign_id: str, fmt: str) -> Tuple[str, str]:
        if fmt not in ("csv", "json"):
            raise ServiceError(400, f"unknown export format {fmt!r}; use csv or json")
        text = self._open(campaign_id).export(fmt=fmt)
        content_type = "text/csv" if fmt == "csv" else "application/json"
        return text, content_type

    # -- live telemetry aggregates (DESIGN.md §14) ----------------------------

    def metrics(self, campaign_id: str) -> Dict:
        return self._open(campaign_id).metrics()

    def progress(self, campaign_id: str) -> Dict:
        return self._open(campaign_id).progress()

    def series(self, campaign_id: str, step: int = 1) -> Dict:
        from repro.dashboard.aggregate import series

        if step < 1:
            raise ServiceError(400, f"'step' must be >= 1, got {step}")
        return series(self._open(campaign_id).inner, step=step)

    def fdp(self, campaign_id: str) -> Dict:
        from repro.dashboard.aggregate import fdp_histogram

        return fdp_histogram(self._open(campaign_id).inner)

    def pressure(self, campaign_id: str) -> Dict:
        from repro.dashboard.aggregate import queue_pressure

        return queue_pressure(self._open(campaign_id).inner)

    def samples(self, campaign_id: str, after: int) -> Dict:
        store = self._open(campaign_id).inner.ledger
        if not hasattr(store, "samples_since"):
            raise ServiceError(
                404, f"campaign {campaign_id!r} has no sample stream"
            )
        rows, cursor = store.samples_since(after)
        return {"rows": rows, "cursor": cursor}


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs+paths onto the CampaignService handlers."""

    service: CampaignService  # installed by make_server
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # quiet by default; the CLI announces the address once

    def _send(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_json(self, status: int, payload: Dict) -> None:
        self._send(status, json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   "application/json")

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServiceError(400, "request body required")
        if length > MAX_BODY_BYTES:
            raise ServiceError(413, "request body too large")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(400, f"request body is not valid JSON: {error}")

    def _route(self, method: str) -> None:
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        try:
            if method == "GET" and parts in ([], ["dashboard"]):
                return self._send(200, self.service.dashboard(), "text/html")
            if method == "GET" and parts == ["healthz"]:
                return self._send_json(200, self.service.health())
            if method == "GET" and parts == ["campaigns"]:
                return self._send_json(200, self.service.list_campaigns())
            if method == "POST" and parts == ["campaigns"]:
                return self._send_json(201, self.service.create_campaign(self._read_body()))
            if method == "GET" and len(parts) == 3 and parts[0] == "campaigns":
                if parts[2] == "status":
                    return self._send_json(200, self.service.status(parts[1]))
                if parts[2] == "export":
                    query = parse_qs(parsed.query)
                    fmt = (query.get("format") or ["csv"])[0]
                    text, content_type = self.service.export(parts[1], fmt)
                    return self._send(200, text, content_type)
                if parts[2] == "metrics":
                    return self._send_json(200, self.service.metrics(parts[1]))
                if parts[2] == "progress":
                    return self._send_json(200, self.service.progress(parts[1]))
                if parts[2] == "series":
                    query = parse_qs(parsed.query)
                    raw = (query.get("step") or ["1"])[0]
                    try:
                        step = int(raw)
                    except ValueError:
                        raise ServiceError(
                            400,
                            f"'step' must be a positive integer, got {raw!r}",
                        ) from None
                    return self._send_json(
                        200, self.service.series(parts[1], step=step)
                    )
                if parts[2] == "fdp":
                    return self._send_json(200, self.service.fdp(parts[1]))
                if parts[2] == "pressure":
                    return self._send_json(200, self.service.pressure(parts[1]))
                if parts[2] == "samples":
                    query = parse_qs(parsed.query)
                    raw = (query.get("after") or ["0"])[0]
                    try:
                        after = int(raw)
                    except ValueError:
                        raise ServiceError(
                            400, f"'after' must be an integer cursor, got {raw!r}"
                        ) from None
                    return self._send_json(200, self.service.samples(parts[1], after))
            raise ServiceError(404, f"no such endpoint: {method} {parsed.path}")
        except ServiceError as error:
            self._send_json(error.status, {"error": str(error)})

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")


def make_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    root=None,
    runtime=None,
) -> ThreadingHTTPServer:
    """Build (but do not start) the campaign HTTP server."""
    service = CampaignService(root=root, runtime=runtime)
    handler = type("CampaignHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    root=None,
    runtime=None,
    announce=print,
) -> None:
    """Run the campaign service until interrupted."""
    server = make_server(host=host, port=port, root=root, runtime=runtime)
    bound_host, bound_port = server.server_address[:2]
    announce(
        f"campaign service on http://{bound_host}:{bound_port} "
        f"(root: {CampaignService(root=root).root}); "
        f"live dashboard at http://{bound_host}:{bound_port}/dashboard"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
