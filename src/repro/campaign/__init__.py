"""Sweep-orchestration subsystem: validated specs, a persistent run
ledger, and resumable fault-tolerant execution — single-process or
multi-worker.

Layered on :mod:`repro.runtime`, in seven parts:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec`, the typed and
  upfront-validated contract declaring a grid of workloads × policies ×
  config overrides × seeds, expanded deterministically into content-hash
  keyed jobs;
* :mod:`repro.campaign.ledger` — the append-only JSONL status journal
  (``pending``/``running``/``done``/``failed`` with timings and errors)
  living next to the spec snapshot in each campaign directory;
* :mod:`repro.campaign.jobstore` — the sqlite backend: the same journal
  contract in one shared WAL-mode database, plus atomic job claims with
  worker leases and heartbeat renewal so a SIGKILL'd worker's jobs are
  reclaimed (``--backend jsonl|sqlite`` / ``$REPRO_CAMPAIGN_BACKEND``;
  jsonl stays the default);
* :mod:`repro.campaign.executor` — :class:`CampaignRunner` and
  :func:`submit`: fault-isolated execution with bounded retries where a
  crashing job records its traceback and its siblings finish, plus
  resume that re-runs only unfinished work;
* :mod:`repro.campaign.worker` — the pull-based worker loop
  (claim → execute → persist → mark done) any number of processes or
  machines run concurrently against one sqlite job store;
* :mod:`repro.campaign.service` — a stdlib JSON-over-HTTP front-end
  (POST a spec, GET status/export) routed through :mod:`repro.api`;
* :mod:`repro.campaign.report` — status summaries and deterministic
  CSV/JSON export of the ledger joined with the result store, identical
  bytes on either backend, interrupted or not.

``python -m repro.campaign`` (also ``python -m repro campaign``) drives
it: ``run``, ``create``, ``status``, ``resume``, ``worker``, ``serve``,
``export``.  The figure scripts' multiprogrammed sweeps submit through
:func:`submit`, making them thin views over the campaign ledger.

(Presets live in :mod:`repro.campaign.presets`; it is imported lazily
because it pulls in :mod:`repro.experiments`, which itself imports this
package.)
"""

from repro.campaign.ledger import JobState, Ledger, fold_records, status_counts
from repro.campaign.jobstore import (
    BACKENDS,
    Claim,
    JobStoreError,
    SqliteJobStore,
    make_store,
    resolve_backend,
)
from repro.campaign.spec import (
    CampaignJob,
    CampaignSpec,
    PolicyVariant,
    SpecError,
    Workload,
    expand,
    unique_jobs,
)
from repro.campaign.executor import (
    Campaign,
    CampaignError,
    CampaignRun,
    CampaignRunner,
    campaigns_root,
    default_directory,
    submit,
)

from repro.campaign.worker import WorkerStats, run_worker

__all__ = [
    "BACKENDS",
    "Campaign",
    "CampaignError",
    "CampaignJob",
    "CampaignRun",
    "CampaignRunner",
    "CampaignSpec",
    "Claim",
    "JobState",
    "JobStoreError",
    "Ledger",
    "PolicyVariant",
    "SpecError",
    "SqliteJobStore",
    "Workload",
    "WorkerStats",
    "campaigns_root",
    "default_directory",
    "expand",
    "fold_records",
    "make_store",
    "resolve_backend",
    "run_worker",
    "status_counts",
    "submit",
    "unique_jobs",
]
