"""Sweep-orchestration subsystem: validated specs, a persistent run
ledger, and resumable fault-tolerant execution.

Layered on :mod:`repro.runtime`, in four parts:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec`, the typed and
  upfront-validated contract declaring a grid of workloads × policies ×
  config overrides × seeds, expanded deterministically into content-hash
  keyed jobs;
* :mod:`repro.campaign.ledger` — the append-only JSONL status journal
  (``pending``/``running``/``done``/``failed`` with timings and errors)
  living next to the spec snapshot in each campaign directory;
* :mod:`repro.campaign.executor` — :class:`CampaignRunner` and
  :func:`submit`: fault-isolated execution with bounded retries where a
  crashing job records its traceback and its siblings finish, plus
  resume that re-runs only unfinished work;
* :mod:`repro.campaign.report` — status summaries and deterministic
  CSV/JSON export of the ledger joined with the result store.

``python -m repro.campaign`` (also ``python -m repro campaign``) drives
it: ``run``, ``status``, ``resume``, ``export``.  The figure scripts'
multiprogrammed sweeps submit through :func:`submit`, making them thin
views over the campaign ledger.

(Presets live in :mod:`repro.campaign.presets`; it is imported lazily
because it pulls in :mod:`repro.experiments`, which itself imports this
package.)
"""

from repro.campaign.ledger import JobState, Ledger, status_counts
from repro.campaign.spec import (
    CampaignJob,
    CampaignSpec,
    PolicyVariant,
    SpecError,
    Workload,
    expand,
    unique_jobs,
)
from repro.campaign.executor import (
    Campaign,
    CampaignError,
    CampaignRun,
    CampaignRunner,
    campaigns_root,
    default_directory,
    submit,
)

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignJob",
    "CampaignRun",
    "CampaignRunner",
    "CampaignSpec",
    "JobState",
    "Ledger",
    "PolicyVariant",
    "SpecError",
    "Workload",
    "campaigns_root",
    "default_directory",
    "expand",
    "status_counts",
    "submit",
    "unique_jobs",
]
