"""Declarative, validated sweep specifications.

A :class:`CampaignSpec` is the single self-contained contract for one
experiment sweep: a grid of workloads × policy variants × config-override
variants × seeds at one access count.  Following the validation-first
philosophy of the FastSim/PyExperimenter exemplars, every spec is checked
upfront — unknown benchmarks, policies, or ``baseline_config`` overrides
are rejected at construction time with actionable errors (including
did-you-mean suggestions), so the executor only ever sees runnable jobs.

:func:`expand` turns a spec into a deterministic, ordered list of
:class:`CampaignJob` values.  Each wraps one :class:`~repro.runtime.SimJob`
plus the grid coordinates it came from; the job's content hash
(``CampaignJob.key``) is the identity used by the ledger, the result
store, and the resume logic.  Two expansions of equal specs produce the
same jobs in the same order, which is what makes resumed and
uninterrupted campaigns bit-for-bit comparable.
"""

from __future__ import annotations

import difflib
import inspect
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.params import PolicyError, baseline_config, resolve_policy
from repro.runtime import SimJob, content_hash
from repro.workloads.profiles import ALL_BENCHMARKS

SPEC_VERSION = 1

# JSON-primitive types allowed as override / sim-kwarg values (anything
# else could not round-trip through the campaign.json snapshot).
_PRIMITIVES = (str, int, float, bool, type(None))


class SpecError(ValueError):
    """A campaign spec failed validation; the message says how to fix it."""


def _known_benchmark_names() -> List[str]:
    names = {profile.name for profile in ALL_BENCHMARKS}
    names.update(profile.name.rsplit("_", 1)[0] for profile in ALL_BENCHMARKS)
    return sorted(names)


def _suggest(name: str, known: Sequence[str]) -> str:
    close = difflib.get_close_matches(name, known, n=3)
    return f" (did you mean {', '.join(close)}?)" if close else ""


def _config_override_names() -> List[str]:
    parameters = inspect.signature(baseline_config).parameters
    return sorted(set(parameters) - {"num_cores", "policy"})


def _check_overrides(overrides: Tuple[Tuple[str, object], ...], where: str) -> None:
    known = _config_override_names()
    for key, value in overrides:
        if key not in known:
            raise SpecError(
                f"{where}: unknown baseline_config override {key!r}"
                f"{_suggest(str(key), known)}; known overrides: {', '.join(known)}"
            )
        if not isinstance(value, _PRIMITIVES):
            raise SpecError(
                f"{where}: override {key!r} has non-JSON value "
                f"{value!r} ({type(value).__name__}); use str/int/float/bool/None"
            )


def _as_override_tuple(overrides) -> Tuple[Tuple[str, object], ...]:
    if isinstance(overrides, Mapping):
        return tuple(sorted(overrides.items()))
    return tuple((str(key), value) for key, value in overrides)


@dataclass(frozen=True)
class Workload:
    """One multiprogrammed mix: benchmark names plus its base seed."""

    benchmarks: Tuple[str, ...]
    seed: int = 0

    @classmethod
    def make(cls, benchmarks: Sequence[str], seed: int = 0) -> "Workload":
        return cls(tuple(str(name) for name in benchmarks), int(seed))


@dataclass(frozen=True)
class PolicyVariant:
    """One point on the policy axis.

    ``label`` is the display/ledger name; ``policy`` is the scheduler
    policy handed to :func:`~repro.params.baseline_config`; ``overrides``
    are extra ``baseline_config`` keyword arguments — e.g. the paper's
    "padc-rank" is ``PolicyVariant("padc-rank", "padc", use_ranking=True)``.
    """

    label: str
    policy: str
    overrides: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, label: str, policy: Optional[str] = None, **overrides) -> "PolicyVariant":
        return cls(str(label), str(policy or label), _as_override_tuple(overrides))


PolicyLike = Union[str, PolicyVariant]


@dataclass(frozen=True)
class CampaignSpec:
    """The validated contract for one sweep campaign.

    The grid is ``workloads × policies × variants × seeds``; every grid
    cell becomes one multiprogrammed simulation whose seed is
    ``workload.seed + seed_offset``.  With ``include_alone`` each
    workload additionally contributes one single-core ``alone_policy``
    run per benchmark (seed ``workload.seed + seed_offset + position``),
    exactly mirroring how :func:`repro.experiments.runner.alone_ipcs`
    seeds the paper's IPC_alone baselines — so campaign jobs and
    figure-script jobs share cache entries by construction.
    """

    name: str
    workloads: Tuple[Workload, ...]
    policies: Tuple[PolicyVariant, ...]
    accesses: int
    variants: Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...] = (("base", ()),)
    seeds: Tuple[int, ...] = (0,)
    include_alone: bool = True
    alone_policy: str = "demand-first"
    sim_kwargs: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        self.validate()

    # -- construction helpers -------------------------------------------------

    @classmethod
    def build(
        cls,
        name: str,
        workloads: Sequence,
        policies: Sequence[PolicyLike],
        accesses: int,
        variants: Optional[Mapping[str, Mapping[str, object]]] = None,
        seeds: Sequence[int] = (0,),
        include_alone: bool = True,
        alone_policy: str = "demand-first",
        **sim_kwargs,
    ) -> "CampaignSpec":
        """Normalizing constructor.

        ``workloads`` entries may be :class:`Workload` values or plain
        benchmark-name sequences; plain sequences get ``seed = position``
        (matching the per-mix seeding of the figure scripts).
        ``policies`` entries may be :class:`PolicyVariant` values or bare
        policy names.  ``variants`` maps variant label → baseline_config
        overrides applied to every policy (insertion order preserved).
        """
        normalized_workloads = tuple(
            entry
            if isinstance(entry, Workload)
            else Workload.make(entry, seed=index)
            for index, entry in enumerate(workloads)
        )
        normalized_policies = tuple(
            entry if isinstance(entry, PolicyVariant) else PolicyVariant.make(entry)
            for entry in policies
        )
        if variants is None:
            variants = {"base": {}}
        normalized_variants = tuple(
            (str(label), _as_override_tuple(overrides))
            for label, overrides in variants.items()
        )
        return cls(
            name=str(name),
            workloads=normalized_workloads,
            policies=normalized_policies,
            accesses=int(accesses),
            variants=normalized_variants,
            seeds=tuple(int(seed) for seed in seeds),
            include_alone=bool(include_alone),
            alone_policy=str(alone_policy),
            sim_kwargs=tuple(sorted(sim_kwargs.items())),
        )

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Reject any inconsistency upfront, with an actionable message."""
        if not self.name or not all(c.isalnum() or c in "._-" for c in self.name):
            raise SpecError(
                f"campaign name {self.name!r} must be non-empty and use only "
                "letters, digits, '.', '_' or '-' (it names the campaign directory)"
            )
        if not isinstance(self.accesses, int) or self.accesses <= 0:
            raise SpecError(
                f"accesses must be a positive int, got {self.accesses!r}"
            )
        if not self.workloads:
            raise SpecError("a campaign needs at least one workload")
        known_benchmarks = _known_benchmark_names()
        for index, workload in enumerate(self.workloads):
            if not workload.benchmarks:
                raise SpecError(f"workload {index} is empty")
            for name in workload.benchmarks:
                if name.startswith("trace:"):
                    # Trace workloads validate through the trace resolver:
                    # spec-knob typos and unknown trace names fail here —
                    # with the resolver's own did-you-mean suggestions —
                    # before a single job runs.  Lazy import: specs
                    # without traces never load the trace subsystem.
                    from repro.trace import (
                        TraceFormatError,
                        TraceLookupError,
                        validate_trace_spec,
                    )

                    try:
                        validate_trace_spec(name)
                    except (TraceLookupError, TraceFormatError, OSError) as error:
                        raise SpecError(
                            f"workload {index}: {error}"
                        ) from None
                elif name not in known_benchmarks:
                    raise SpecError(
                        f"workload {index}: unknown benchmark {name!r}"
                        f"{_suggest(name, known_benchmarks)}; "
                        f"{len(known_benchmarks)} known names include "
                        f"{', '.join(known_benchmarks[:6])}, ..."
                    )
        if not self.policies:
            raise SpecError("a campaign needs at least one policy")
        labels = [variant.label for variant in self.policies]
        if len(set(labels)) != len(labels):
            raise SpecError(f"duplicate policy labels: {labels}")
        for variant in self.policies:
            # Route through the shared policy table so unknown spellings
            # fail with the exact same did-you-mean error that
            # SystemConfig.with_policy and baseline_config raise.
            try:
                resolve_policy(variant.policy)
            except PolicyError as error:
                raise SpecError(f"policy {variant.label!r}: {error}") from None
            _check_overrides(variant.overrides, f"policy {variant.label!r}")
        if not self.variants:
            raise SpecError("a campaign needs at least one config variant")
        variant_labels = [label for label, _ in self.variants]
        if len(set(variant_labels)) != len(variant_labels):
            raise SpecError(f"duplicate variant labels: {variant_labels}")
        for label, overrides in self.variants:
            _check_overrides(overrides, f"variant {label!r}")
        if not self.seeds:
            raise SpecError("a campaign needs at least one seed offset")
        if len(set(self.seeds)) != len(self.seeds):
            raise SpecError(f"duplicate seed offsets: {list(self.seeds)}")
        try:
            resolve_policy(self.alone_policy)
        except PolicyError as error:
            raise SpecError(f"alone_policy: {error}") from None
        for key, value in self.sim_kwargs:
            if not isinstance(value, _PRIMITIVES):
                raise SpecError(
                    f"sim_kwargs[{key!r}] has non-JSON value {value!r}; "
                    "use str/int/float/bool/None"
                )

    # -- identity & serialization ---------------------------------------------

    def fingerprint(self) -> str:
        """Content hash over the whole spec (every field, every level)."""
        return content_hash({"spec_version": SPEC_VERSION, "spec": self})

    def to_dict(self) -> Dict:
        return {
            "spec_version": SPEC_VERSION,
            "name": self.name,
            "accesses": self.accesses,
            "workloads": [
                {"benchmarks": list(w.benchmarks), "seed": w.seed}
                for w in self.workloads
            ],
            "policies": [
                {
                    "label": p.label,
                    "policy": p.policy,
                    "overrides": dict(p.overrides),
                }
                for p in self.policies
            ],
            "variants": [
                {"label": label, "overrides": dict(overrides)}
                for label, overrides in self.variants
            ],
            "seeds": list(self.seeds),
            "include_alone": self.include_alone,
            "alone_policy": self.alone_policy,
            "sim_kwargs": dict(self.sim_kwargs),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`; also accepts the hand-written
        shorthand (plain benchmark lists, bare policy names)."""
        try:
            version = int(payload.get("spec_version", SPEC_VERSION))
            if version != SPEC_VERSION:
                raise SpecError(
                    f"unsupported spec_version {version}; this build reads "
                    f"version {SPEC_VERSION}"
                )
            workloads = []
            for index, entry in enumerate(payload["workloads"]):
                if isinstance(entry, Mapping):
                    workloads.append(
                        Workload.make(entry["benchmarks"], seed=entry.get("seed", index))
                    )
                else:
                    workloads.append(Workload.make(entry, seed=index))
            policies = []
            for entry in payload["policies"]:
                if isinstance(entry, Mapping):
                    policies.append(
                        PolicyVariant.make(
                            entry["label"],
                            entry.get("policy"),
                            **entry.get("overrides", {}),
                        )
                    )
                else:
                    policies.append(PolicyVariant.make(entry))
            raw_variants = payload.get("variants", [{"label": "base", "overrides": {}}])
            if isinstance(raw_variants, Mapping):
                variants = {str(k): v for k, v in raw_variants.items()}
            else:
                variants = {
                    str(entry["label"]): entry.get("overrides", {})
                    for entry in raw_variants
                }
            return cls.build(
                name=payload["name"],
                workloads=workloads,
                policies=policies,
                accesses=payload["accesses"],
                variants=variants,
                seeds=payload.get("seeds", (0,)),
                include_alone=payload.get("include_alone", True),
                alone_policy=payload.get("alone_policy", "demand-first"),
                **payload.get("sim_kwargs", {}),
            )
        except KeyError as missing:
            raise SpecError(
                f"spec payload is missing required field {missing}; required: "
                "name, accesses, workloads, policies"
            ) from None


# -- expansion ----------------------------------------------------------------


@dataclass(frozen=True)
class CampaignJob:
    """One grid cell of a campaign: a SimJob plus its coordinates."""

    kind: str  # "grid" | "alone"
    workload_index: int
    benchmarks: Tuple[str, ...]
    policy: str  # the policy *label*
    variant: str
    seed: int  # the actual simulation seed
    seed_offset: int
    position: int  # benchmark slot for alone jobs, -1 for grid jobs
    job: SimJob = field(compare=False)

    @property
    def key(self) -> str:
        return self.job.key()

    def describe(self) -> str:
        names = "+".join(self.benchmarks)
        return f"{self.kind}:{names} policy={self.policy} variant={self.variant} seed={self.seed}"


def expand(spec: CampaignSpec) -> List[CampaignJob]:
    """Deterministically expand a spec into its full job list.

    The order is fixed (workload → seed → variant → policy, then the
    workload's alone runs), so two expansions of equal specs agree on
    both membership and sequence.  Duplicate simulations (e.g. the same
    alone run reached from two grid cells) keep every instance here;
    :func:`unique_jobs` collapses them to first occurrence by content key.
    """
    sim_kwargs = dict(spec.sim_kwargs)
    jobs: List[CampaignJob] = []
    for workload_index, workload in enumerate(spec.workloads):
        cores = len(workload.benchmarks)
        for seed_offset in spec.seeds:
            run_seed = workload.seed + seed_offset
            for variant_label, variant_overrides in spec.variants:
                for policy in spec.policies:
                    overrides = dict(variant_overrides)
                    overrides.update(dict(policy.overrides))
                    config = baseline_config(cores, policy=policy.policy, **overrides)
                    jobs.append(
                        CampaignJob(
                            kind="grid",
                            workload_index=workload_index,
                            benchmarks=workload.benchmarks,
                            policy=policy.label,
                            variant=variant_label,
                            seed=run_seed,
                            seed_offset=seed_offset,
                            position=-1,
                            job=SimJob.make(
                                config,
                                workload.benchmarks,
                                spec.accesses,
                                seed=run_seed,
                                **sim_kwargs,
                            ),
                        )
                    )
            if spec.include_alone:
                alone_config = baseline_config(1, policy=spec.alone_policy)
                for position, benchmark in enumerate(workload.benchmarks):
                    jobs.append(
                        CampaignJob(
                            kind="alone",
                            workload_index=workload_index,
                            benchmarks=(benchmark,),
                            policy=spec.alone_policy,
                            variant="base",
                            seed=run_seed + position,
                            seed_offset=seed_offset,
                            position=position,
                            job=SimJob.make(
                                alone_config,
                                (benchmark,),
                                spec.accesses,
                                seed=run_seed + position,
                            ),
                        )
                    )
    return jobs


def unique_jobs(jobs: Sequence[CampaignJob]) -> List[CampaignJob]:
    """First instance per content key, preserving expansion order."""
    seen = set()
    unique: List[CampaignJob] = []
    for job in jobs:
        key = job.key
        if key not in seen:
            seen.add(key)
            unique.append(job)
    return unique
