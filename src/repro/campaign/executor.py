"""Resumable, fault-isolated execution of campaign jobs.

The executor is layered on :mod:`repro.runtime`: it reuses the runtime's
worker count and on-disk :class:`~repro.runtime.store.ResultStore`, so a
campaign job and the identical figure-script job share one cache entry.
What it adds over ``Runtime.run_many`` is the campaign contract:

* **fault isolation** — one crashing job appends a ``failed`` ledger
  record carrying its traceback, content key, and config fingerprint,
  and every sibling job still runs to completion (``run_many``'s bare
  ``pool.map`` would have aborted the whole batch);
* **bounded retries** — each job gets ``retries`` extra attempts within
  a run before its failure is final;
* **resume** — a rerun consults the ledger and re-executes only jobs
  that are not ``done``; finished jobs are served straight from the
  result store, so an interrupted-then-resumed campaign performs no
  duplicate simulation work and exports bit-for-bit the same results.

Campaign results are always persisted to the store, even under
``--no-cache``/``$REPRO_CACHE=0`` — a campaign *is* its on-disk record;
point ``--cache-dir`` somewhere fresh for a cold run.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.ledger import JobState, status_counts
from repro.campaign.jobstore import make_store, resolve_backend
from repro.campaign.spec import CampaignJob, CampaignSpec, expand, unique_jobs
from repro.runtime import JobExecutionError, config_fingerprint, execute_job, get_runtime
from repro.sim.results import SimResult

SPEC_FILE = "campaign.json"


class CampaignError(RuntimeError):
    """A campaign-level failure (bad directory, incomplete run, ...)."""


def campaigns_root(store_root=None) -> Path:
    """Directory holding campaign dirs: $REPRO_CAMPAIGN_DIR, else
    ``<result-cache>/campaigns``."""
    env = os.environ.get("REPRO_CAMPAIGN_DIR")
    if env:
        return Path(env).expanduser()
    if store_root is None:
        store_root = get_runtime().store.root
    return Path(store_root) / "campaigns"


def default_directory(spec: CampaignSpec, store_root=None) -> Path:
    """Canonical directory for a spec: ``<root>/<name>-<fingerprint12>``.

    The fingerprint suffix means the same campaign name at a different
    scale/grid gets its own ledger instead of clashing.
    """
    return campaigns_root(store_root) / f"{spec.name}-{spec.fingerprint()[:12]}"


def _write_json_exclusive(path: Path, payload: Dict) -> None:
    """Atomically create ``path`` with ``payload``, failing if it exists.

    The content is staged in a temp file and **linked** into place:
    ``os.link`` is both atomic (readers never see a partial file) and
    exclusive (it raises :class:`FileExistsError` if the target already
    exists), which closes the check-then-write race two concurrent
    creators would otherwise hit.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.link(tmp_name, path)
    finally:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass


class Campaign:
    """A spec bound to its on-disk directory (snapshot + ledger/job store).

    ``backend`` picks the status journal: ``"jsonl"`` (the default
    append-only :class:`~repro.campaign.ledger.Ledger`) or ``"sqlite"``
    (the multi-worker :class:`~repro.campaign.jobstore.SqliteJobStore`
    with lease-based claims).  Resolution order: explicit argument,
    ``$REPRO_CAMPAIGN_BACKEND``, auto-detection of an existing
    ``jobs.sqlite``, then jsonl.
    """

    def __init__(self, directory, spec: CampaignSpec, backend: Optional[str] = None):
        self.directory = Path(directory)
        self.spec = spec
        self.backend = resolve_backend(backend, self.directory)
        self._jobs: Optional[List[CampaignJob]] = None

    # -- open/create ----------------------------------------------------------

    @classmethod
    def create(cls, spec: CampaignSpec, directory=None, backend=None) -> "Campaign":
        """Bind ``spec`` to ``directory``, writing the snapshot on first use.

        Reopening an existing directory with a *different* spec is an
        error — the ledger would silently describe the wrong grid.  The
        snapshot is created exclusively (hard-link rename), so when two
        creators race, exactly one writes it; the loser re-validates the
        winner's fingerprint and either adopts the directory or fails.
        """
        directory = Path(directory) if directory is not None else default_directory(spec)
        spec_path = directory / SPEC_FILE
        try:
            _write_json_exclusive(
                spec_path,
                {"fingerprint": spec.fingerprint(), "spec": spec.to_dict()},
            )
        except FileExistsError:
            existing = cls.open(directory, backend=backend)
            if existing.spec.fingerprint() != spec.fingerprint():
                raise CampaignError(
                    f"campaign directory {directory} already holds campaign "
                    f"{existing.spec.name!r} with a different spec "
                    f"(fingerprint {existing.spec.fingerprint()[:12]} != "
                    f"{spec.fingerprint()[:12]}); pick another --dir or delete it"
                ) from None
            return existing
        campaign = cls(directory, spec, backend=backend)
        # Materialize the store now so later open() calls auto-detect
        # the same backend this campaign was created on.
        campaign.ledger.initialize()
        return campaign

    @classmethod
    def open(cls, directory, backend=None) -> "Campaign":
        directory = Path(directory)
        spec_path = directory / SPEC_FILE
        try:
            with open(spec_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise CampaignError(
                f"{directory} is not a campaign directory (no {SPEC_FILE}); "
                "create one with 'python -m repro.campaign run'"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(f"unreadable campaign snapshot {spec_path}: {exc}") from exc
        return cls(directory, CampaignSpec.from_dict(payload["spec"]), backend=backend)

    # -- derived views --------------------------------------------------------

    @property
    def ledger(self):
        """The status journal on this campaign's backend (Ledger-compatible)."""
        return make_store(self.directory, self.backend)

    def jobs(self) -> List[CampaignJob]:
        """Full deterministic expansion (duplicates included)."""
        if self._jobs is None:
            self._jobs = expand(self.spec)
        return self._jobs

    def unique_jobs(self) -> List[CampaignJob]:
        return unique_jobs(self.jobs())

    def states(self) -> Dict[str, JobState]:
        """Ledger fold extended with implicit ``pending`` entries."""
        states = self.ledger.fold()
        for job in self.unique_jobs():
            states.setdefault(job.key, JobState(job.key))
        return states

    def status_counts(self) -> Dict[str, int]:
        jobs = self.unique_jobs()
        states = self.states()
        return status_counts(states[job.key] for job in jobs)


class CampaignRun:
    """Outcome of one executor pass: results plus per-job states."""

    def __init__(self, campaign: Campaign, results: Dict[str, SimResult]):
        self.campaign = campaign
        self.results = results
        self.states = campaign.states()
        self._grid_index: Dict[Tuple, str] = {}
        self._alone_index: Dict[Tuple, str] = {}
        for job in campaign.jobs():
            if job.kind == "grid":
                self._grid_index.setdefault(
                    (job.workload_index, job.policy, job.variant, job.seed_offset),
                    job.key,
                )
            else:
                self._alone_index.setdefault(
                    (job.workload_index, job.seed_offset, job.position), job.key
                )

    def failed(self) -> List[CampaignJob]:
        return [
            job
            for job in self.campaign.unique_jobs()
            if self.states[job.key].status == "failed"
        ]

    def incomplete(self) -> List[CampaignJob]:
        return [
            job
            for job in self.campaign.unique_jobs()
            if self.states[job.key].status != "done"
        ]

    def require_complete(self) -> "CampaignRun":
        incomplete = self.incomplete()
        if incomplete:
            lines = []
            for job in incomplete[:8]:
                state = self.states[job.key]
                error = (state.error or "").strip().splitlines()
                detail = f": {error[-1]}" if error else ""
                lines.append(f"  [{state.status}] {job.describe()}{detail}")
            if len(incomplete) > 8:
                lines.append(f"  ... and {len(incomplete) - 8} more")
            raise CampaignError(
                f"campaign {self.campaign.spec.name!r} has "
                f"{len(incomplete)} unfinished job(s):\n" + "\n".join(lines) + "\n"
                f"resume with: python -m repro.campaign resume {self.campaign.directory}"
            )
        return self

    # -- result lookup by grid coordinates ------------------------------------

    def grid(
        self,
        workload_index: int,
        policy_label: str,
        variant: str = "base",
        seed_offset: Optional[int] = None,
    ) -> SimResult:
        if seed_offset is None:
            seed_offset = self.campaign.spec.seeds[0]
        key = self._grid_index.get((workload_index, policy_label, variant, seed_offset))
        if key is None or key not in self.results:
            raise CampaignError(
                f"no result for grid cell workload={workload_index} "
                f"policy={policy_label!r} variant={variant!r} seed_offset={seed_offset}"
            )
        return self.results[key]

    def alone_ipcs(
        self, workload_index: int, seed_offset: Optional[int] = None
    ) -> List[float]:
        """IPC_alone per benchmark slot of one workload, in slot order."""
        if seed_offset is None:
            seed_offset = self.campaign.spec.seeds[0]
        workload = self.campaign.spec.workloads[workload_index]
        ipcs = []
        for position in range(len(workload.benchmarks)):
            key = self._alone_index.get((workload_index, seed_offset, position))
            if key is None or key not in self.results:
                raise CampaignError(
                    f"no alone result for workload={workload_index} "
                    f"slot={position} seed_offset={seed_offset} "
                    "(was the spec built with include_alone=True?)"
                )
            ipcs.append(self.results[key].cores[0].ipc)
        return ipcs


def _worker_execute(job) -> Tuple[int, SimResult]:
    """Worker-side entry point: result plus the pid that computed it."""
    return os.getpid(), execute_job(job)


def _error_text(error: BaseException) -> str:
    if isinstance(error, JobExecutionError):
        return str(error)
    return f"{type(error).__name__}: {error}"


class CampaignRunner:
    """Drives a campaign to completion on top of the process-wide runtime.

    ``stream=True`` streams per-interval telemetry samples into the
    campaign's store while each job runs (the jsonl backend lands them
    in the ``samples.jsonl`` sidecar, sqlite in its ``samples`` table).
    Streaming is serial-only here — the collector cannot cross the
    process-pool boundary; multi-process streaming is the job of
    ``python -m repro.campaign worker --stream``.
    """

    def __init__(
        self, campaign: Campaign, runtime=None, retries: int = 1, stream: bool = False
    ):
        self.campaign = campaign
        self.runtime = runtime or get_runtime()
        self.retries = max(0, int(retries))
        self.stream = bool(stream)

    # -- ledger plumbing ------------------------------------------------------

    def _record(self, job: CampaignJob, status: str, attempt: int, **extra) -> None:
        self.campaign.ledger.append(
            {
                "key": job.key,
                "status": status,
                "attempt": attempt,
                "job": {
                    "kind": job.kind,
                    "benchmarks": list(job.benchmarks),
                    "policy": job.policy,
                    "variant": job.variant,
                    "seed": job.seed,
                    "workload_index": job.workload_index,
                    "config_fingerprint": config_fingerprint(job.job.config),
                },
                **extra,
            }
        )

    # -- execution ------------------------------------------------------------

    def run(self, resume: bool = True, limit: Optional[int] = None) -> CampaignRun:
        """Execute the campaign; returns the (possibly partial) run.

        ``resume=True`` (the default) skips jobs whose ledger state is
        ``done`` and whose result is present in the store.  ``limit``
        executes at most that many jobs and leaves the rest pending —
        the hook the CI smoke job uses to emulate a mid-run kill.
        """
        store = self.runtime.store
        jobs = self.campaign.unique_jobs()
        states = self.campaign.ledger.fold() if resume else {}
        results: Dict[str, SimResult] = {}
        todo: List[CampaignJob] = []
        for job in jobs:
            state = states.get(job.key)
            if state is not None and state.status == "done":
                hit = store.get(job.key)
                if hit is not None:
                    results[job.key] = hit
                    continue
                # A done record whose result was evicted: run it again.
            todo.append(job)
        run_list = todo if limit is None else todo[: max(0, int(limit))]
        if run_list:
            workers = min(self.runtime.jobs, len(run_list))
            if workers > 1:
                if self.stream:
                    raise CampaignError(
                        "telemetry streaming needs a serial runner (--jobs 1) "
                        "or the multi-worker path (python -m repro.campaign "
                        "worker --stream): a live collector cannot cross the "
                        "process-pool boundary"
                    )
                self._run_parallel(run_list, results, store, workers)
            else:
                self._run_serial(run_list, results, store)
        return CampaignRun(self.campaign, results)

    def _finish(self, job, attempt, result, store, started, cached, worker) -> SimResult:
        store.put(job.key, result)
        self._record(
            job,
            "done",
            attempt,
            elapsed=round(time.perf_counter() - started, 6),
            cached=cached,
            worker=worker,
        )
        return result

    def _fail(self, job, attempt, error, started, worker) -> None:
        self._record(
            job,
            "failed",
            attempt,
            elapsed=round(time.perf_counter() - started, 6),
            error=_error_text(error),
            worker=worker,
        )

    def _run_serial(self, run_list, results, store) -> None:
        ledger = self.campaign.ledger
        for job in run_list:
            for attempt in range(1, self.retries + 2):
                self._record(job, "running", attempt, worker=os.getpid())
                started = time.perf_counter()
                hit = store.get(job.key)
                if hit is not None:
                    if self.stream and hit.trace is not None:
                        from repro.telemetry.stream import records_from_trace

                        ledger.clear_samples(job.key)
                        ledger.append_samples(
                            job.key, records_from_trace(hit.trace)
                        )
                    results[job.key] = self._finish(
                        job, attempt, hit, store, started, True, os.getpid()
                    )
                    break
                try:
                    if self.stream:
                        from repro.telemetry.stream import streamed_execute

                        if attempt > 1:
                            ledger.clear_samples(job.key)
                        result = streamed_execute(job.job, ledger, job.key)
                    else:
                        _, result = _worker_execute(job.job)
                except Exception as error:  # noqa: BLE001 - isolation is the point
                    self._fail(job, attempt, error, started, os.getpid())
                else:
                    results[job.key] = self._finish(
                        job, attempt, result, store, started, False, os.getpid()
                    )
                    break

    def _run_parallel(self, run_list, results, store, workers) -> None:
        attempts = {job.key: 0 for job in run_list}
        by_key = {job.key: job for job in run_list}
        started_at: Dict[str, float] = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            def submit(job: CampaignJob):
                attempts[job.key] += 1
                self._record(job, "running", attempts[job.key], worker=None)
                started_at[job.key] = time.perf_counter()
                hit = store.get(job.key)
                if hit is not None:
                    results[job.key] = self._finish(
                        job,
                        attempts[job.key],
                        hit,
                        store,
                        started_at[job.key],
                        True,
                        None,
                    )
                    return None
                return pool.submit(_worker_execute, job.job)

            pending = {}
            for job in run_list:
                future = submit(job)
                if future is not None:
                    pending[future] = job.key
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    key = pending.pop(future)
                    job = by_key[key]
                    try:
                        worker_pid, result = future.result()
                    except Exception as error:  # noqa: BLE001
                        self._fail(job, attempts[key], error, started_at[key], None)
                        if attempts[key] <= self.retries:
                            retry = submit(job)
                            if retry is not None:
                                pending[retry] = key
                    else:
                        results[key] = self._finish(
                            job,
                            attempts[key],
                            result,
                            store,
                            started_at[key],
                            False,
                            worker_pid,
                        )


def submit(
    spec: CampaignSpec,
    directory=None,
    runtime=None,
    retries: int = 1,
) -> CampaignRun:
    """Run a spec to completion through its persistent campaign.

    This is the library entry point the figure scripts use: it binds the
    spec to its canonical campaign directory (resume-aware, so a warm
    rerun touches no simulation), executes whatever is not ``done``, and
    raises :class:`CampaignError` listing the casualties if anything
    failed.  The returned :class:`CampaignRun` resolves grid cells to
    :class:`~repro.sim.results.SimResult` values.
    """
    runtime = runtime or get_runtime()
    campaign = Campaign.create(spec, directory or default_directory(spec, runtime.store.root))
    run = CampaignRunner(campaign, runtime=runtime, retries=retries).run(resume=True)
    return run.require_complete()
