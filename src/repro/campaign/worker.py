"""The pull-based campaign worker: claim → execute → persist → mark done.

``python -m repro.campaign worker <dir>`` runs this loop against a
campaign on the sqlite backend.  Any number of workers — separate
processes, separate machines sharing the campaign directory and result
store — drain one campaign concurrently:

* on startup the worker idempotently enqueues the campaign's full job
  expansion (``INSERT OR IGNORE``), so the first worker to arrive seeds
  the queue and latecomers change nothing;
* each iteration atomically claims the next open job under a lease,
  heartbeats while simulating, persists the result to the shared
  :class:`~repro.runtime.store.ResultStore`, and journals ``done`` /
  ``failed``;
* a worker that dies silently (SIGKILL, OOM, power) stops heartbeating;
  its lease expires and the job is claimed by the next worker — the
  campaign loses nothing;
* SIGTERM drains gracefully: the current job runs to completion and is
  journaled before the worker exits (the CLI installs the handler).

Workers exit on their own once every job is terminal (``done``, or
``failed`` with attempts exhausted), waiting out siblings' live leases
so the last worker standing reports the campaign's final state.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Callable, Dict, Optional

from repro.campaign.executor import Campaign, CampaignError
from repro.campaign.jobstore import Claim, SqliteJobStore
from repro.campaign.spec import CampaignJob
from repro.runtime import config_fingerprint, execute_job, get_runtime

# How much of the lease may elapse between heartbeats.  Three beats per
# lease means two may be lost (scheduling hiccups, a busy store) before
# the job is reclaimable out from under a live worker.
HEARTBEAT_FRACTION = 3.0


def default_worker_id() -> str:
    """host-pid identity, unique across the machines sharing a store."""
    return f"{socket.gethostname()}-{os.getpid()}"


def job_meta(job: CampaignJob) -> Dict:
    """The ledger ``job`` payload: same shape CampaignRunner records."""
    return {
        "kind": job.kind,
        "benchmarks": list(job.benchmarks),
        "policy": job.policy,
        "variant": job.variant,
        "seed": job.seed,
        "workload_index": job.workload_index,
        "config_fingerprint": config_fingerprint(job.job.config),
    }


class _Heartbeat:
    """Daemon thread renewing one claim's lease while the job runs."""

    def __init__(self, store: SqliteJobStore, key: str, worker_id: str, lease: float):
        self._store = store
        self._key = key
        self._worker_id = worker_id
        self._lease = lease
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{key[:8]}", daemon=True
        )

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        interval = max(self._lease / HEARTBEAT_FRACTION, 0.05)
        while not self._stop.wait(interval):
            self._store.heartbeat(self._key, self._worker_id, self._lease)


class WorkerStats:
    """What one worker did: claims, completions, failures, cache hits."""

    def __init__(self) -> None:
        self.claimed = 0
        self.done = 0
        self.failed = 0
        self.cache_hits = 0
        self.drained = False

    def describe(self) -> str:
        tail = " (drained on request)" if self.drained else ""
        return (
            f"{self.claimed} claimed, {self.done} done "
            f"({self.cache_hits} from cache), {self.failed} failed{tail}"
        )


def _error_text(error: BaseException) -> str:
    from repro.runtime import JobExecutionError

    if isinstance(error, JobExecutionError):
        return str(error)
    return f"{type(error).__name__}: {error}"


def run_worker(
    campaign: Campaign,
    runtime=None,
    *,
    worker_id: Optional[str] = None,
    lease: Optional[float] = None,
    poll: float = 0.5,
    retries: int = 1,
    max_jobs: Optional[int] = None,
    throttle: float = 0.0,
    stream: bool = False,
    should_stop: Optional[Callable[[], bool]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> WorkerStats:
    """Drain one campaign's job store from this process.

    ``lease`` is the claim lease in seconds (heartbeat-renewed while a
    job runs); ``poll`` how long to sleep when nothing is claimable but
    siblings still hold live leases; ``retries`` how many *extra*
    attempts a failed job gets before it is terminal; ``max_jobs`` stops
    after that many claims (testing hook); ``throttle`` sleeps that many
    seconds after each claim before executing (rate-limiting / smoke
    hook); ``should_stop`` is polled between jobs for a graceful drain.

    ``stream=True`` turns on live telemetry streaming (DESIGN.md §14):
    each job runs under a :class:`~repro.telemetry.collector
    .TelemetryCollector` whose per-interval samples land in the job
    store's ``samples`` table in batched transactions *while the job is
    running*; cache-hit jobs with a stored trace synthesize their stream
    at claim time.  Streaming never perturbs results, cache keys or
    exports — it is read-only over the run.
    """
    runtime = runtime or get_runtime()
    store = campaign.ledger
    if not isinstance(store, SqliteJobStore):
        raise CampaignError(
            f"worker needs the sqlite backend (campaign {campaign.directory} "
            f"is on {campaign.backend!r}); create the campaign with "
            "--backend sqlite or set $REPRO_CAMPAIGN_BACKEND=sqlite"
        )
    if lease is not None:
        store.lease = float(lease)
    lease = store.lease
    worker_id = worker_id or default_worker_id()
    should_stop = should_stop or (lambda: False)
    log = log or (lambda message: None)
    max_attempts = max(0, int(retries)) + 1

    by_key = {job.key: job for job in campaign.unique_jobs()}
    seeded = store.ensure_jobs([(key, job_meta(job)) for key, job in by_key.items()])
    if seeded:
        log(f"[{worker_id}] enqueued {seeded} job(s)")
    result_store = runtime.store
    stats = WorkerStats()

    while True:
        if should_stop():
            stats.drained = True
            break
        if max_jobs is not None and stats.claimed >= max_jobs:
            break
        claim = store.claim(worker_id, lease=lease, max_attempts=max_attempts)
        if claim is None:
            if store.unfinished(max_attempts) == 0:
                break
            time.sleep(poll)
            continue
        stats.claimed += 1
        _execute_claim(
            campaign, store, result_store, by_key, claim, worker_id, lease,
            throttle, stream, stats, log,
        )
    log(f"[{worker_id}] exiting: {stats.describe()}")
    return stats


def _execute_claim(
    campaign: Campaign,
    store: SqliteJobStore,
    result_store,
    by_key: Dict[str, CampaignJob],
    claim: Claim,
    worker_id: str,
    lease: float,
    throttle: float,
    stream: bool,
    stats: WorkerStats,
    log: Callable[[str], None],
) -> None:
    job = by_key.get(claim.key)
    started = time.perf_counter()
    if job is None:
        # A key this worker's expansion does not know — the store was
        # seeded by a different spec revision.  Journal the mismatch so
        # the campaign surfaces it instead of spinning on the job.
        stats.failed += 1
        store.append(
            {
                "key": claim.key,
                "status": "failed",
                "attempt": claim.attempt,
                "worker": worker_id,
                "elapsed": 0.0,
                "error": (
                    "job key not in this worker's spec expansion; "
                    "was the campaign directory reused for a different spec?"
                ),
            }
        )
        return
    with _Heartbeat(store, claim.key, worker_id, lease):
        try:
            if throttle > 0:
                time.sleep(throttle)
            hit = result_store.get(claim.key)
            if hit is not None:
                result, cached = hit, True
                if stream and hit.trace is not None:
                    # The run is not repeated, but the live view still
                    # gets the rows a cold run would have streamed.
                    from repro.telemetry.stream import records_from_trace

                    store.append_samples(claim.key, records_from_trace(hit.trace))
            elif stream:
                from repro.telemetry.stream import streamed_execute

                result, cached = streamed_execute(job.job, store, claim.key), False
            else:
                result, cached = execute_job(job.job), False
            result_store.put(claim.key, result)
        except Exception as error:  # noqa: BLE001 - isolation is the point
            stats.failed += 1
            log(f"[{worker_id}] FAILED {job.describe()}")
            store.append(
                {
                    "key": claim.key,
                    "status": "failed",
                    "attempt": claim.attempt,
                    "worker": worker_id,
                    "elapsed": round(time.perf_counter() - started, 6),
                    "error": _error_text(error),
                    "job": job_meta(job),
                }
            )
        else:
            stats.done += 1
            if cached:
                stats.cache_hits += 1
            log(f"[{worker_id}] done {job.describe()}")
            store.append(
                {
                    "key": claim.key,
                    "status": "done",
                    "attempt": claim.attempt,
                    "worker": worker_id,
                    "elapsed": round(time.perf_counter() - started, 6),
                    "cached": cached,
                    "job": job_meta(job),
                }
            )
