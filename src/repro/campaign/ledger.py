"""The persistent, append-only run ledger of a campaign.

One JSONL file (``ledger.jsonl`` inside the campaign directory) records
every state transition of every job: ``running`` when an attempt starts,
then ``done`` (with elapsed time, worker pid and whether it was a cache
hit) or ``failed`` (with the error text and the job's config
fingerprint).  Records are only ever appended — never rewritten — so the
file doubles as a complete execution history; the *current* state of a
job is the fold of its records, last status wins (:meth:`Ledger.fold`).

Jobs are keyed by their :class:`~repro.runtime.SimJob` content hash, the
same key the result store uses, which is what lets ``resume`` trust a
``done`` record: the result it promises is addressable in the store.

Crash behaviour: a process killed mid-job leaves that job's last record
at ``running``.  The fold reports such jobs as ``interrupted`` and the
executor treats them exactly like ``pending`` — they re-run on resume.
Truncated/corrupt trailing lines (a crash mid-append) are skipped.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional

LEDGER_NAME = "ledger.jsonl"

# Every state a job can be in.  "pending" and "interrupted" are derived
# (no record / last record is "running"); only the others are written.
STATUSES = ("pending", "running", "interrupted", "done", "failed")


@dataclass
class JobState:
    """Folded view of one job's ledger records."""

    key: str
    status: str = "pending"
    attempts: int = 0
    error: Optional[str] = None
    elapsed: Optional[float] = None
    worker: Optional[int] = None
    cached: bool = False
    meta: Dict = field(default_factory=dict)


class Ledger:
    """Append-only JSONL status journal, single-writer per campaign run."""

    def __init__(self, path):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.is_file()

    def append(self, record: Dict) -> None:
        record = dict(record)
        record.setdefault("ts", time.time())
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    def records(self) -> List[Dict]:
        """All parseable records, in append order."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return []
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a crash mid-append
            if isinstance(record, dict) and "key" in record and "status" in record:
                records.append(record)
        return records

    def fold(self) -> Dict[str, JobState]:
        """Current state per job key: replay records, last status wins."""
        states: Dict[str, JobState] = {}
        for record in self.records():
            key = record["key"]
            state = states.setdefault(key, JobState(key))
            status = record["status"]
            if status == "running":
                state.status = "interrupted"  # until a done/failed follows
                state.attempts += 1
                state.worker = record.get("worker")
                state.error = None
            elif status in ("done", "failed"):
                state.status = status
                state.error = record.get("error")
                state.elapsed = record.get("elapsed")
                state.worker = record.get("worker", state.worker)
                state.cached = bool(record.get("cached", False))
            if record.get("job"):
                state.meta = record["job"]
        return states


def status_counts(states: Iterable[JobState]) -> Dict[str, int]:
    """Histogram of job statuses in canonical order."""
    counts = {status: 0 for status in STATUSES}
    for state in states:
        counts[state.status] = counts.get(state.status, 0) + 1
    return counts
