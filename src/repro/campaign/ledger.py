"""The persistent, append-only run ledger of a campaign.

One JSONL file (``ledger.jsonl`` inside the campaign directory) records
every state transition of every job: ``running`` when an attempt starts,
then ``done`` (with elapsed time, worker pid and whether it was a cache
hit) or ``failed`` (with the error text and the job's config
fingerprint).  Records are only ever appended — never rewritten — so the
file doubles as a complete execution history; the *current* state of a
job is the fold of its records, last status wins (:meth:`Ledger.fold`).

Jobs are keyed by their :class:`~repro.runtime.SimJob` content hash, the
same key the result store uses, which is what lets ``resume`` trust a
``done`` record: the result it promises is addressable in the store.

Concurrency: every record is written with a **single** ``write(2)`` on
an ``O_APPEND`` descriptor, so concurrent appends from multiple worker
processes sharing one ledger file land whole — POSIX serializes the
offset update and the data for append-mode writes, and a record is never
interleaved mid-line with another writer's.  Records are also prefixed
with a newline once the file is non-empty, so a torn trailing line from
a crashed writer can never glue itself onto the next record (blank lines
are skipped on read).  ``$REPRO_LEDGER_FSYNC=1`` (or ``fsync=True``)
additionally fsyncs each append for power-loss durability.

Crash behaviour: a process killed mid-job leaves that job's last record
at ``running``.  The fold reports such jobs as ``interrupted`` and the
executor treats them exactly like ``pending`` — they re-run on resume.
Truncated/corrupt trailing lines (a crash mid-append) are skipped.

The fold logic is shared with the SQLite job store
(:mod:`repro.campaign.jobstore`) via :func:`fold_records`, so both
backends agree on what a record history *means* by construction.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional

LEDGER_NAME = "ledger.jsonl"

# Sidecar JSONL file holding streamed telemetry samples on the jsonl
# backend (the sqlite backend keeps them in its ``samples`` table).
SAMPLES_NAME = "samples.jsonl"

# Every state a job can be in.  "pending" and "interrupted" are derived
# (no record / last record is "running"); only the others are written.
STATUSES = ("pending", "running", "interrupted", "done", "failed")


@dataclass
class JobState:
    """Folded view of one job's ledger records."""

    key: str
    status: str = "pending"
    attempts: int = 0
    error: Optional[str] = None
    elapsed: Optional[float] = None
    worker: Optional[int] = None
    cached: bool = False
    meta: Dict = field(default_factory=dict)


def fold_records(records: Iterable[Dict]) -> Dict[str, JobState]:
    """Current state per job key: replay records, last status wins.

    Shared by the JSONL ledger and the SQLite job store so both
    backends fold identical histories to identical states.
    """
    states: Dict[str, JobState] = {}
    for record in records:
        key = record["key"]
        state = states.setdefault(key, JobState(key))
        status = record["status"]
        if status == "running":
            state.status = "interrupted"  # until a done/failed follows
            state.attempts += 1
            state.worker = record.get("worker")
            state.error = None
        elif status in ("done", "failed"):
            state.status = status
            state.error = record.get("error")
            state.elapsed = record.get("elapsed")
            state.worker = record.get("worker", state.worker)
            state.cached = bool(record.get("cached", False))
        if record.get("job"):
            state.meta = record["job"]
    return states


def parse_record(line: str) -> Optional[Dict]:
    """One ledger line → record dict, or None for blank/torn/foreign lines."""
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None  # torn write from a crash mid-append
    if isinstance(record, dict) and "key" in record and "status" in record:
        return record
    return None


def _resolve_fsync(fsync: Optional[bool]) -> bool:
    if fsync is not None:
        return bool(fsync)
    return os.environ.get("REPRO_LEDGER_FSYNC", "0").strip().lower() in {
        "1",
        "on",
        "true",
        "yes",
    }


class SampleLog:
    """JSONL sidecar for streamed telemetry samples (jsonl-backend fallback).

    Mirrors the sqlite job store's samples surface —
    ``append_samples`` / ``samples`` / ``samples_since`` /
    ``sample_counts`` / ``clear_samples`` — over one append-only file:
    each line is ``{"key", "idx", "record"}``, a whole batch written as
    one ``O_APPEND`` write (same torn-line defense as the ledger).
    Clearing a key appends a ``{"key", "reset": true}`` marker rather
    than rewriting history; readers fold resets out.
    """

    def __init__(self, path, fsync: Optional[bool] = None):
        self.path = Path(path)
        self.fsync = _resolve_fsync(fsync)
        self._next_idx: Dict[str, int] = {}

    def _lines(self) -> List[Dict]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = handle.readlines()
        except FileNotFoundError:
            return []
        lines = []
        for line in raw:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a crash mid-append
            if isinstance(entry, dict) and "key" in entry:
                lines.append(entry)
        return lines

    def append_samples(self, key: str, records) -> None:
        records = list(records)
        if not records:
            return
        if key not in self._next_idx:
            tail = -1
            for entry in self._lines():
                if entry["key"] != key:
                    continue
                tail = -1 if entry.get("reset") else entry.get("idx", tail)
            self._next_idx[key] = tail + 1
        base = self._next_idx[key]
        payload = b"".join(
            json.dumps(
                {"key": key, "idx": base + offset, "record": record},
                sort_keys=True,
            ).encode("utf-8")
            + b"\n"
            for offset, record in enumerate(records)
        )
        self._next_idx[key] = base + len(records)
        self._append_bytes(payload)

    def clear_samples(self, key: str) -> None:
        self._next_idx[key] = 0
        self._append_bytes(
            json.dumps({"key": key, "reset": True}, sort_keys=True).encode("utf-8")
            + b"\n"
        )

    def _append_bytes(self, data: bytes) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        descriptor = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            if os.fstat(descriptor).st_size > 0:
                data = b"\n" + data
            os.write(descriptor, data)
            if self.fsync:
                os.fsync(descriptor)
        finally:
            os.close(descriptor)

    def _folded(self) -> List[Dict]:
        """Live rows (resets applied), each ``{id, key, idx, record}``."""
        rows: Dict[str, List[Dict]] = {}
        for position, entry in enumerate(self._lines(), start=1):
            if entry.get("reset"):
                rows.pop(entry["key"], None)
                continue
            if "record" not in entry:
                continue
            rows.setdefault(entry["key"], []).append(
                {
                    "id": position,
                    "key": entry["key"],
                    "idx": entry.get("idx", 0),
                    "record": entry["record"],
                }
            )
        flat = [row for per_key in rows.values() for row in per_key]
        flat.sort(key=lambda row: row["id"])
        return flat

    def samples(self, key: str) -> List[Dict]:
        return [row["record"] for row in self._folded() if row["key"] == key]

    def samples_since(self, cursor: int = 0, key: Optional[str] = None):
        rows = [
            row
            for row in self._folded()
            if row["id"] > cursor and (key is None or row["key"] == key)
        ]
        if rows:
            cursor = max(row["id"] for row in rows)
        return rows, cursor

    def sample_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for row in self._folded():
            counts[row["key"]] = counts.get(row["key"], 0) + 1
        return counts


class Ledger:
    """Append-only JSONL status journal; multi-writer safe appends."""

    def __init__(self, path, fsync: Optional[bool] = None):
        self.path = Path(path)
        self.fsync = _resolve_fsync(fsync)
        # Streamed-sample sidecar (same directory); built lazily so a
        # ledger that never streams never touches it.
        self._sample_log: Optional[SampleLog] = None

    @property
    def sample_log(self) -> SampleLog:
        if self._sample_log is None:
            self._sample_log = SampleLog(
                self.path.parent / SAMPLES_NAME, fsync=self.fsync
            )
        return self._sample_log

    # Samples surface, mirroring SqliteJobStore so the streaming and
    # dashboard layers drive either backend through one duck type.

    def append_samples(self, key: str, records) -> None:
        self.sample_log.append_samples(key, records)

    def clear_samples(self, key: str) -> None:
        self.sample_log.clear_samples(key)

    def samples(self, key: str) -> List[Dict]:
        return self.sample_log.samples(key)

    def samples_since(self, cursor: int = 0, key: Optional[str] = None):
        return self.sample_log.samples_since(cursor, key)

    def sample_counts(self) -> Dict[str, int]:
        return self.sample_log.sample_counts()

    def exists(self) -> bool:
        return self.path.is_file()

    def initialize(self) -> None:
        """Nothing to pre-create for JSONL; the first append makes the file."""

    def clear(self) -> None:
        """Discard the journal and the samples sidecar (``run --fresh``)."""
        for path in (self.path, self.path.parent / SAMPLES_NAME):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def append(self, record: Dict) -> None:
        """Append one record as a single ``O_APPEND`` write syscall.

        One write per record is what makes a shared ledger safe for
        concurrent worker processes: append-mode writes are atomic with
        respect to the file offset, so records never interleave
        mid-line.  A leading newline (once the file is non-empty) keeps
        a torn trailing line from a crashed writer from corrupting this
        record too — readers skip blank lines.
        """
        record = dict(record)
        record.setdefault("ts", time.time())
        data = json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        descriptor = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            if os.fstat(descriptor).st_size > 0:
                data = b"\n" + data
            os.write(descriptor, data)
            if self.fsync:
                os.fsync(descriptor)
        finally:
            os.close(descriptor)

    def records(self) -> List[Dict]:
        """All parseable records, in append order."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return []
        records = []
        for line in lines:
            record = parse_record(line)
            if record is not None:
                records.append(record)
        return records

    def fold(self) -> Dict[str, JobState]:
        """Current state per job key: replay records, last status wins."""
        return fold_records(self.records())


def status_counts(states: Iterable[JobState]) -> Dict[str, int]:
    """Histogram of job statuses in canonical order."""
    counts = {status: 0 for status in STATUSES}
    for state in states:
        counts[state.status] = counts.get(state.status, 0) + 1
    return counts
