"""The persistent, append-only run ledger of a campaign.

One JSONL file (``ledger.jsonl`` inside the campaign directory) records
every state transition of every job: ``running`` when an attempt starts,
then ``done`` (with elapsed time, worker pid and whether it was a cache
hit) or ``failed`` (with the error text and the job's config
fingerprint).  Records are only ever appended — never rewritten — so the
file doubles as a complete execution history; the *current* state of a
job is the fold of its records, last status wins (:meth:`Ledger.fold`).

Jobs are keyed by their :class:`~repro.runtime.SimJob` content hash, the
same key the result store uses, which is what lets ``resume`` trust a
``done`` record: the result it promises is addressable in the store.

Concurrency: every record is written with a **single** ``write(2)`` on
an ``O_APPEND`` descriptor, so concurrent appends from multiple worker
processes sharing one ledger file land whole — POSIX serializes the
offset update and the data for append-mode writes, and a record is never
interleaved mid-line with another writer's.  Records are also prefixed
with a newline once the file is non-empty, so a torn trailing line from
a crashed writer can never glue itself onto the next record (blank lines
are skipped on read).  ``$REPRO_LEDGER_FSYNC=1`` (or ``fsync=True``)
additionally fsyncs each append for power-loss durability.

Crash behaviour: a process killed mid-job leaves that job's last record
at ``running``.  The fold reports such jobs as ``interrupted`` and the
executor treats them exactly like ``pending`` — they re-run on resume.
Truncated/corrupt trailing lines (a crash mid-append) are skipped.

The fold logic is shared with the SQLite job store
(:mod:`repro.campaign.jobstore`) via :func:`fold_records`, so both
backends agree on what a record history *means* by construction.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional

LEDGER_NAME = "ledger.jsonl"

# Every state a job can be in.  "pending" and "interrupted" are derived
# (no record / last record is "running"); only the others are written.
STATUSES = ("pending", "running", "interrupted", "done", "failed")


@dataclass
class JobState:
    """Folded view of one job's ledger records."""

    key: str
    status: str = "pending"
    attempts: int = 0
    error: Optional[str] = None
    elapsed: Optional[float] = None
    worker: Optional[int] = None
    cached: bool = False
    meta: Dict = field(default_factory=dict)


def fold_records(records: Iterable[Dict]) -> Dict[str, JobState]:
    """Current state per job key: replay records, last status wins.

    Shared by the JSONL ledger and the SQLite job store so both
    backends fold identical histories to identical states.
    """
    states: Dict[str, JobState] = {}
    for record in records:
        key = record["key"]
        state = states.setdefault(key, JobState(key))
        status = record["status"]
        if status == "running":
            state.status = "interrupted"  # until a done/failed follows
            state.attempts += 1
            state.worker = record.get("worker")
            state.error = None
        elif status in ("done", "failed"):
            state.status = status
            state.error = record.get("error")
            state.elapsed = record.get("elapsed")
            state.worker = record.get("worker", state.worker)
            state.cached = bool(record.get("cached", False))
        if record.get("job"):
            state.meta = record["job"]
    return states


def parse_record(line: str) -> Optional[Dict]:
    """One ledger line → record dict, or None for blank/torn/foreign lines."""
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None  # torn write from a crash mid-append
    if isinstance(record, dict) and "key" in record and "status" in record:
        return record
    return None


def _resolve_fsync(fsync: Optional[bool]) -> bool:
    if fsync is not None:
        return bool(fsync)
    return os.environ.get("REPRO_LEDGER_FSYNC", "0").strip().lower() in {
        "1",
        "on",
        "true",
        "yes",
    }


class Ledger:
    """Append-only JSONL status journal; multi-writer safe appends."""

    def __init__(self, path, fsync: Optional[bool] = None):
        self.path = Path(path)
        self.fsync = _resolve_fsync(fsync)

    def exists(self) -> bool:
        return self.path.is_file()

    def initialize(self) -> None:
        """Nothing to pre-create for JSONL; the first append makes the file."""

    def clear(self) -> None:
        """Discard the journal (``run --fresh``)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def append(self, record: Dict) -> None:
        """Append one record as a single ``O_APPEND`` write syscall.

        One write per record is what makes a shared ledger safe for
        concurrent worker processes: append-mode writes are atomic with
        respect to the file offset, so records never interleave
        mid-line.  A leading newline (once the file is non-empty) keeps
        a torn trailing line from a crashed writer from corrupting this
        record too — readers skip blank lines.
        """
        record = dict(record)
        record.setdefault("ts", time.time())
        data = json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        descriptor = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            if os.fstat(descriptor).st_size > 0:
                data = b"\n" + data
            os.write(descriptor, data)
            if self.fsync:
                os.fsync(descriptor)
        finally:
            os.close(descriptor)

    def records(self) -> List[Dict]:
        """All parseable records, in append order."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return []
        records = []
        for line in lines:
            record = parse_record(line)
            if record is not None:
                records.append(record)
        return records

    def fold(self) -> Dict[str, JobState]:
        """Current state per job key: replay records, last status wins."""
        return fold_records(self.records())


def status_counts(states: Iterable[JobState]) -> Dict[str, int]:
    """Histogram of job statuses in canonical order."""
    counts = {status: 0 for status in STATUSES}
    for state in states:
        counts[state.status] = counts.get(state.status, 0) + 1
    return counts
