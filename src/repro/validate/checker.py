"""The checked-mode invariant auditor.

:class:`InvariantChecker` attaches to a :class:`~repro.sim.system.System`
and re-derives, from first principles, the conservation laws the
simulator's counters must satisfy.  The system calls :meth:`on_interval`
at every accuracy-interval boundary (before the tracker resets PSC/PUC)
and :meth:`on_end` once the final per-core stats are collected; each call
runs every audit and raises :class:`InvariantViolation` listing *all*
failures at once.

The audited laws (see DESIGN.md §7 for the why):

* **Request lifecycle** — every request admitted to the controller is
  serviced, dropped, or still queued (bank queues + overflow FIFO),
  exactly once; one line crosses the bus per service.
* **Buffer reconciliation** — per-channel occupancy equals the sum of
  the bank-queue lengths, never exceeds the buffer size, and the
  line-address index is a bijection onto the queued non-writeback
  requests (the promotion path cannot lie).
* **MSHR** — occupancy equals lifetime allocations minus frees, never
  exceeds capacity, and every queued read/prefetch has a live MSHR entry
  pointing back at that exact request.
* **Per-core stats** — every access is exactly one of an L2 hit or an L2
  miss; stall time fits inside wall-clock time.
* **Prefetch conservation** — every sent prefetch is dropped, promoted
  (late use), filled, or still in flight; every filled prefetch is used,
  evicted unused, or still resident with its P bit set.
* **PSC/PUC** — the tracker's interval counters move in lockstep with
  the per-core stats, and cumulative PUC never exceeds cumulative PSC.
  (Within a *single* interval PUC may exceed PSC: a prefetch sent late
  in interval N is legitimately used in interval N+1.)
"""

from __future__ import annotations

import os
from typing import Dict, List


class InvariantViolation(AssertionError):
    """One or more simulator invariants failed an audit."""


def check_enabled(default: bool = False) -> bool:
    """Resolve the ``REPRO_CHECK`` environment knob."""
    value = os.environ.get("REPRO_CHECK")
    if value is None:
        return default
    return value.strip().lower() in {"1", "on", "true", "yes"}


class InvariantChecker:
    """Audits a live ``System`` at interval boundaries and end-of-sim."""

    def __init__(self, system):
        self.system = system
        self.audits = 0
        num_cores = system.config.num_cores
        # Cumulative pf_sent/pf_used at the last PSC/PUC reset, and the
        # running totals across completed intervals.
        self._pf_sent_base = [0] * num_cores
        self._pf_used_base = [0] * num_cores
        self._cum_sent = [0] * num_cores
        self._cum_used = [0] * num_cores

    # -- hooks called by System ---------------------------------------------

    def on_interval(self, now: int) -> None:
        """Audit at an interval boundary, *before* the PSC/PUC reset."""
        self.audit("interval", now)
        tracker = self.system.tracker
        for core in range(self.system.config.num_cores):
            self._cum_sent[core] += tracker.psc[core]
            self._cum_used[core] += tracker.puc[core]
            self._pf_sent_base[core] = self.system.results[core].pf_sent
            self._pf_used_base[core] = self.system.results[core].pf_used

    def on_end(self, now: int) -> None:
        """Audit after ``_collect`` populated the final per-core stats."""
        self.audit("end", now)

    # -- the audit ----------------------------------------------------------

    def audit(self, phase: str, now: int) -> None:
        violations: List[str] = []
        violations += self._check_buffers()
        violations += self._check_lifecycle()
        violations += self._check_mshr()
        violations += self._check_core_counters(phase, now)
        violations += self._check_prefetch_conservation()
        violations += self._check_drop_accounting()
        violations += self._check_tracker()
        self.audits += 1
        if violations:
            details = "\n  - ".join(violations)
            raise InvariantViolation(
                f"invariant audit #{self.audits} failed "
                f"(phase={phase}, cycle={now}, {len(violations)} violation(s)):"
                f"\n  - {details}"
            )

    # -- individual laws -----------------------------------------------------

    def _check_buffers(self) -> List[str]:
        engine = self.system.engine
        buffer_size = engine.config.request_buffer_size
        out: List[str] = []
        for channel_id in range(engine.config.num_channels):
            queues = engine.bank_queues(channel_id)
            queued = [request for queue in queues for request in queue]
            occupancy = engine.occupancy(channel_id)
            if occupancy != len(queued):
                out.append(
                    f"ch{channel_id}: occupancy counter {occupancy} != "
                    f"{len(queued)} requests in bank queues"
                )
            if occupancy > buffer_size:
                out.append(
                    f"ch{channel_id}: occupancy {occupancy} exceeds "
                    f"request buffer size {buffer_size}"
                )
            for bank_idx, queue in enumerate(queues):
                for request in queue:
                    if request.channel != channel_id or request.bank != bank_idx:
                        out.append(
                            f"ch{channel_id}/bank{bank_idx}: misfiled {request!r}"
                        )
                    if request.completion is not None or request.dropped:
                        out.append(
                            f"ch{channel_id}: already-resolved request still "
                            f"queued: {request!r}"
                        )
            index = engine.indexed_requests(channel_id)
            non_writes = [request for request in queued if not request.is_write]
            for request in non_writes:
                if index.get(request.line_addr) is not request:
                    out.append(
                        f"ch{channel_id}: queued {request!r} missing from or "
                        f"shadowed in the line-address index"
                    )
            if len(index) != len(non_writes):
                out.append(
                    f"ch{channel_id}: index holds {len(index)} entries but "
                    f"{len(non_writes)} non-writeback requests are queued"
                )
            overflow = engine.overflow_requests(channel_id)
            for request in overflow:
                if request.is_prefetch:
                    out.append(
                        f"ch{channel_id}: prefetch in the overflow FIFO: "
                        f"{request!r} (prefetches must be rejected, not queued)"
                    )
                if request.completion is not None or request.dropped:
                    out.append(
                        f"ch{channel_id}: already-resolved request in "
                        f"overflow: {request!r}"
                    )
            if overflow and occupancy < buffer_size:
                out.append(
                    f"ch{channel_id}: overflow FIFO holds {len(overflow)} "
                    f"requests while the buffer has free entries "
                    f"({occupancy}/{buffer_size})"
                )
        return out

    def _check_lifecycle(self) -> List[str]:
        engine = self.system.engine
        stats = engine.stats
        queued = sum(
            len(queue)
            for channel_id in range(engine.config.num_channels)
            for queue in engine.bank_queues(channel_id)
        )
        overflowed = sum(
            len(engine.overflow_requests(channel_id))
            for channel_id in range(engine.config.num_channels)
        )
        accounted = (
            stats.serviced_total + stats.dropped_prefetches + queued + overflowed
        )
        out: List[str] = []
        if stats.enqueued_total != accounted:
            out.append(
                f"request lifecycle leak: enqueued {stats.enqueued_total} != "
                f"serviced {stats.serviced_total} + dropped "
                f"{stats.dropped_prefetches} + queued {queued} + overflow "
                f"{overflowed}"
            )
        transferred = engine.total_lines_transferred()
        if transferred != stats.serviced_total:
            out.append(
                f"bus accounting: {transferred} lines transferred != "
                f"{stats.serviced_total} requests serviced"
            )
        return out

    def _distinct_mshrs(self):
        seen: Dict[int, object] = {}
        for mshr in self.system._mshrs:
            seen.setdefault(id(mshr), mshr)
        return list(seen.values())

    def _check_mshr(self) -> List[str]:
        out: List[str] = []
        for mshr in self._distinct_mshrs():
            expected = mshr.total_allocated - mshr.total_freed
            if mshr.occupancy != expected:
                out.append(
                    f"MSHR occupancy {mshr.occupancy} != allocated "
                    f"{mshr.total_allocated} - freed {mshr.total_freed}"
                )
            if mshr.occupancy > mshr.capacity:
                out.append(
                    f"MSHR occupancy {mshr.occupancy} exceeds capacity "
                    f"{mshr.capacity}"
                )
            for entry in mshr.entries():
                if entry.request.line_addr != entry.line_addr:
                    out.append(
                        f"MSHR entry line 0x{entry.line_addr:x} holds request "
                        f"for 0x{entry.request.line_addr:x}"
                    )
        engine = self.system.engine
        for channel_id in range(engine.config.num_channels):
            pending = engine.queued_requests(channel_id) + engine.overflow_requests(
                channel_id
            )
            for request in pending:
                if request.is_write:
                    continue  # writebacks do not occupy MSHRs
                mshr = self.system._mshrs[request.core_id]
                entry = mshr.get(request.line_addr)
                if entry is None:
                    out.append(
                        f"queued {request!r} has no MSHR entry (fill would "
                        f"be orphaned)"
                    )
                elif entry.request is not request:
                    out.append(
                        f"queued {request!r} and MSHR entry for line "
                        f"0x{request.line_addr:x} disagree on the request"
                    )
        return out

    def _check_core_counters(self, phase: str, now: int) -> List[str]:
        out: List[str] = []
        for core in self.system.cores:
            label = f"core{core.core_id}"
            if core.loads != core.accesses_done:
                out.append(
                    f"{label}: loads {core.loads} != accesses_done "
                    f"{core.accesses_done}"
                )
            if core.l2_hits + core.l2_misses != core.accesses_done:
                out.append(
                    f"{label}: l2_hits {core.l2_hits} + l2_misses "
                    f"{core.l2_misses} != accesses_done {core.accesses_done} "
                    f"(an access must be exactly one of the two)"
                )
            if phase == "end":
                stats = self.system.results[core.core_id]
                if stats.stall_cycles > stats.cycles:
                    out.append(
                        f"{label}: stall_cycles {stats.stall_cycles} exceed "
                        f"total cycles {stats.cycles}"
                    )
                if stats.stall_cycles < 0:
                    out.append(f"{label}: negative stall_cycles")
            else:
                stalled_now = (
                    now - core.stall_start if core.stalled and not core.done else 0
                )
                if core.stall_cycles < 0 or stalled_now < 0:
                    out.append(f"{label}: negative stall accumulation")
                elif core.stall_cycles + stalled_now > now:
                    out.append(
                        f"{label}: stall_cycles {core.stall_cycles} (+{stalled_now} "
                        f"in progress) exceed elapsed cycles {now}"
                    )
        return out

    def _check_prefetch_conservation(self) -> List[str]:
        in_flight: Dict[int, int] = {}
        for mshr in self._distinct_mshrs():
            for entry in mshr.entries():
                if entry.request.is_prefetch:
                    core_id = entry.request.core_id
                    in_flight[core_id] = in_flight.get(core_id, 0) + 1
        resident: Dict[int, int] = {}
        seen_caches: Dict[int, object] = {}
        for cache in self.system._caches:
            seen_caches.setdefault(id(cache), cache)
        for cache in seen_caches.values():
            for core_id, count in cache.unused_prefetched_by_core().items():
                resident[core_id] = resident.get(core_id, 0) + count
        out: List[str] = []
        for stats in self.system.results:
            label = f"core{stats.core_id}"
            if stats.pf_used != stats.pf_late + stats.prefetch_fills_used:
                out.append(
                    f"{label}: pf_used {stats.pf_used} != pf_late "
                    f"{stats.pf_late} + prefetch_fills_used "
                    f"{stats.prefetch_fills_used}"
                )
            flight = in_flight.get(stats.core_id, 0)
            accounted = (
                stats.pf_dropped + stats.pf_late + stats.prefetch_fills + flight
            )
            if stats.pf_sent != accounted:
                out.append(
                    f"{label}: pf_sent {stats.pf_sent} != dropped "
                    f"{stats.pf_dropped} + promoted-late {stats.pf_late} + "
                    f"filled {stats.prefetch_fills} + in-flight {flight}"
                )
            fills_accounted = (
                stats.prefetch_fills_used
                + stats.pf_evicted_unused
                + resident.get(stats.core_id, 0)
            )
            if stats.prefetch_fills != fills_accounted:
                out.append(
                    f"{label}: prefetch_fills {stats.prefetch_fills} != used "
                    f"{stats.prefetch_fills_used} + evicted-unused "
                    f"{stats.pf_evicted_unused} + resident-unused "
                    f"{resident.get(stats.core_id, 0)}"
                )
        return out

    def _check_drop_accounting(self) -> List[str]:
        engine = self.system.engine
        per_core = sum(stats.pf_dropped for stats in self.system.results)
        out: List[str] = []
        if per_core != engine.stats.dropped_prefetches:
            out.append(
                f"per-core pf_dropped sum {per_core} != engine "
                f"dropped_prefetches {engine.stats.dropped_prefetches}"
            )
        if engine.dropper is not None:
            if engine.dropper.total_dropped != engine.stats.dropped_prefetches:
                out.append(
                    f"dropper counted {engine.dropper.total_dropped} drops, "
                    f"engine counted {engine.stats.dropped_prefetches}"
                )
        return out

    def _check_tracker(self) -> List[str]:
        tracker = self.system.tracker
        out: List[str] = []
        for core in range(self.system.config.num_cores):
            stats = self.system.results[core]
            sent_delta = stats.pf_sent - self._pf_sent_base[core]
            used_delta = stats.pf_used - self._pf_used_base[core]
            if tracker.psc[core] != sent_delta:
                out.append(
                    f"core{core}: PSC {tracker.psc[core]} != pf_sent delta "
                    f"{sent_delta} this interval"
                )
            if tracker.puc[core] != used_delta:
                out.append(
                    f"core{core}: PUC {tracker.puc[core]} != pf_used delta "
                    f"{used_delta} this interval"
                )
            cum_sent = self._cum_sent[core] + tracker.psc[core]
            cum_used = self._cum_used[core] + tracker.puc[core]
            if cum_used > cum_sent:
                out.append(
                    f"core{core}: cumulative PUC {cum_used} exceeds "
                    f"cumulative PSC {cum_sent} (used a prefetch never sent)"
                )
        return out
