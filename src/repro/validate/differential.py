"""Differential cross-policy auditing.

The paper's rigid policies (demand-first, demand-prefetch-equal,
prefetch-first) only change the *order* in which the DRAM controller
services requests — never the trace a core executes.  That implies two
families of invariants this harness asserts over one workload run under
every policy:

* **Universal** (any configuration): per-core loads and instruction
  counts are trace-determined, so they must be identical across policies,
  and every access must resolve to exactly one of an L2 hit or miss.

* **Equal-work** (prefetching disabled): with zero prefetches in the
  buffers, every FR-FCFS variant ranks the all-demand queues identically
  — the P-bit component of each priority tuple is constant — so the
  simulations evolve identically and the *work* must match exactly:
  demand fills, writebacks, hits/misses, bus traffic, even total cycles.
  A divergence means some policy-dependent state leaked into the demand
  path (precisely the class of bug that silently bends the paper's
  figures).

Runs are submitted through :mod:`repro.runtime` (parallel across
``--jobs`` workers, served from the on-disk cache) with per-run checked
mode on by default, so each simulation is also audited internally by
:class:`~repro.validate.checker.InvariantChecker`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.params import SystemConfig, baseline_config
from repro.runtime import SimJob, get_runtime
from repro.sim.results import SimResult
from repro.validate.checker import InvariantViolation

RIGID_POLICIES = ("demand-first", "demand-prefetch-equal", "prefetch-first")

# Policies whose demand-only schedules are provably identical (all reduce
# to FR-FCFS when no request carries the P bit).
EQUAL_WORK_POLICIES = ("no-pref",) + RIGID_POLICIES


class DifferentialViolation(InvariantViolation):
    """A cross-policy invariant failed."""


def _raise_if(violations: List[str], context: str) -> None:
    if violations:
        details = "\n  - ".join(violations)
        raise DifferentialViolation(
            f"differential audit failed ({context}, "
            f"{len(violations)} violation(s)):\n  - {details}"
        )


def assert_universal_invariants(results: Dict[str, SimResult]) -> None:
    """Trace-determined facts that hold across *any* scheduling policies."""
    violations: List[str] = []
    policies = list(results)
    reference = results[policies[0]]
    for policy, result in results.items():
        for core in result.cores:
            if core.l2_hits + core.l2_misses != core.loads:
                violations.append(
                    f"{policy}/core{core.core_id}: hits {core.l2_hits} + "
                    f"misses {core.l2_misses} != loads {core.loads}"
                )
        for base_core, core in zip(reference.cores, result.cores):
            if core.loads != base_core.loads:
                violations.append(
                    f"{policy}/core{core.core_id}: loads {core.loads} != "
                    f"{base_core.loads} under {policies[0]} (the trace fixes "
                    f"the access count; scheduling cannot change it)"
                )
            if core.instructions != base_core.instructions:
                violations.append(
                    f"{policy}/core{core.core_id}: instructions "
                    f"{core.instructions} != {base_core.instructions} under "
                    f"{policies[0]}"
                )
    _raise_if(violations, "universal invariants")


def assert_equal_work(results: Dict[str, SimResult]) -> None:
    """Exact work equality for demand-only runs (prefetching disabled)."""
    violations: List[str] = []
    policies = list(results)
    reference = results[policies[0]]
    per_core_fields = (
        "loads",
        "l2_hits",
        "l2_misses",
        "demand_fills",
        "writeback_fills",
        "cycles",
        "stall_cycles",
    )
    for policy, result in results.items():
        for core in result.cores:
            if core.pf_sent or core.pf_used or core.pf_dropped:
                violations.append(
                    f"{policy}/core{core.core_id}: prefetch counters moved "
                    f"(sent={core.pf_sent}) in a prefetch-disabled run"
                )
        for base_core, core in zip(reference.cores, result.cores):
            for field in per_core_fields:
                ours, base = getattr(core, field), getattr(base_core, field)
                if ours != base:
                    violations.append(
                        f"{policy}/core{core.core_id}: {field} {ours} != "
                        f"{base} under {policies[0]} (demand-only schedules "
                        f"must be identical)"
                    )
        if result.bus_traffic_lines != reference.bus_traffic_lines:
            violations.append(
                f"{policy}: bus traffic {result.bus_traffic_lines} != "
                f"{reference.bus_traffic_lines} under {policies[0]}"
            )
    _raise_if(violations, "equal-work invariants")


def _run_batch(
    benchmarks: Sequence,
    accesses: int,
    policies: Sequence[str],
    seed: int,
    config_builder: Callable[[str], SystemConfig],
    check: bool,
) -> Dict[str, SimResult]:
    jobs = [
        SimJob.make(
            config_builder(policy), benchmarks, accesses, seed=seed, check=check
        )
        for policy in policies
    ]
    return dict(zip(policies, get_runtime().run_many(jobs)))


def differential_audit(
    benchmarks: Sequence,
    accesses: int,
    policies: Sequence[str] = RIGID_POLICIES,
    seed: int = 0,
    config_builder: Optional[Callable[[str], SystemConfig]] = None,
    check: bool = True,
) -> Dict[str, SimResult]:
    """Run one workload under several policies; assert universal invariants.

    Returns the per-policy results (also individually audited by checked
    mode unless ``check=False``).
    """
    if config_builder is None:
        config_builder = lambda policy: baseline_config(
            len(benchmarks), policy=policy
        )
    results = _run_batch(
        benchmarks, accesses, policies, seed, config_builder, check
    )
    assert_universal_invariants(results)
    return results


def differential_equal_work_audit(
    benchmarks: Sequence,
    accesses: int,
    policies: Sequence[str] = EQUAL_WORK_POLICIES,
    seed: int = 0,
    check: bool = True,
) -> Dict[str, SimResult]:
    """Scheduling-order differential: same workload, prefetching disabled.

    All FR-FCFS variants must perform *identical* work — total fills can
    only change if a policy leaks state into the demand path.
    """

    def builder(policy: str) -> SystemConfig:
        config = baseline_config(len(benchmarks), policy=policy)
        return dataclasses.replace(
            config,
            prefetcher=dataclasses.replace(config.prefetcher, kind="none"),
        )

    results = _run_batch(benchmarks, accesses, policies, seed, builder, check)
    assert_universal_invariants(results)
    assert_equal_work(results)
    return results
