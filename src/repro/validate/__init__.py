"""Checked-mode invariant auditing for the simulator.

The whole reproduction rests on counter fidelity: PAR = PUC/PSC drives
both APS criticality and the APD drop thresholds (paper §4.1-4.3), so a
miscounted stat silently bends every headline figure.  This package makes
such bugs loud instead of silent:

* :class:`~repro.validate.checker.InvariantChecker` — attaches to a
  running :class:`~repro.sim.system.System` and audits conservation laws
  at every accuracy-interval boundary and at end-of-sim.  Enable it with
  ``REPRO_CHECK=1``, the ``--check`` CLI flag, or ``simulate(...,
  check=True)``.
* :mod:`repro.validate.differential` — runs one workload under several
  rigid scheduling policies and asserts the cross-policy invariants the
  paper implies (scheduling changes *when* work happens, never *how
  much*).  ``python -m repro.validate`` is a tiny smoke entry point.

Only the checker is imported here (it is stdlib-only, so the simulator
can import it without cycles); import the differential harness explicitly
from :mod:`repro.validate.differential`.
"""

from repro.validate.checker import (
    InvariantChecker,
    InvariantViolation,
    check_enabled,
)

__all__ = ["InvariantChecker", "InvariantViolation", "check_enabled"]
