"""Differential smoke run: ``python -m repro.validate``.

Runs one workload under every rigid scheduling policy with per-run
checked mode on, asserts the cross-policy invariants, then repeats with
prefetching disabled and asserts exact work equality.  Exits non-zero on
the first violation — CI runs this at tiny scale as the multi-policy
smoke test.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.validate.differential import (
    EQUAL_WORK_POLICIES,
    RIGID_POLICIES,
    DifferentialViolation,
    differential_audit,
    differential_equal_work_audit,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="Checked-mode differential audit across scheduling policies",
    )
    parser.add_argument(
        "--benchmarks",
        default="swim,art",
        help="comma-separated benchmark names (one per core)",
    )
    parser.add_argument("--accesses", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes (0 = one per CPU core; default $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.jobs is not None or args.no_cache:
        from repro import runtime

        runtime.configure(
            jobs=args.jobs, cache_enabled=False if args.no_cache else None
        )
    benchmarks = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
    try:
        results = differential_audit(
            benchmarks, args.accesses, policies=RIGID_POLICIES, seed=args.seed
        )
        for policy, result in results.items():
            print(
                f"[rigid]      {policy:<24} cycles={result.total_cycles:>9} "
                f"fills={result.total_traffic:>7}"
            )
        equal = differential_equal_work_audit(
            benchmarks, args.accesses, policies=EQUAL_WORK_POLICIES, seed=args.seed
        )
        for policy, result in equal.items():
            print(
                f"[equal-work] {policy:<24} cycles={result.total_cycles:>9} "
                f"fills={result.total_traffic:>7}"
            )
    except DifferentialViolation as violation:
        print(f"FAIL: {violation}", file=sys.stderr)
        return 1
    print(
        f"OK: {len(benchmarks)}-core workload, {args.accesses} accesses/core, "
        f"{len(results) + len(equal)} checked simulations, all invariants hold"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
