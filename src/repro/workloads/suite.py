"""Suite helpers: build traces and multiprogrammed workload mixes.

Mirrors the paper's methodology (§5.1): multiprogrammed workloads are
random combinations drawn from the 55-benchmark population; the paper
uses 54 / 32 / 21 mixes for 2 / 4 / 8 cores.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Union

import numpy as np

from repro.core.trace import TraceEntry
from repro.workloads.profiles import ALL_BENCHMARKS, BenchmarkProfile, get_profile
from repro.workloads.synthetic import SyntheticTraceGenerator

ProfileLike = Union[str, BenchmarkProfile]


def _resolve(profile: ProfileLike) -> BenchmarkProfile:
    if isinstance(profile, BenchmarkProfile):
        return profile
    return get_profile(profile)


def make_trace(profile: ProfileLike, seed: int = 0) -> Iterator[TraceEntry]:
    """Build the (infinite) trace iterator for one benchmark."""
    return SyntheticTraceGenerator(_resolve(profile), seed=seed).generate()


def random_mix(num_cores: int, seed: int = 0) -> List[BenchmarkProfile]:
    """Draw one multiprogrammed workload of ``num_cores`` benchmarks."""
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(ALL_BENCHMARKS), size=num_cores, replace=False)
    return [ALL_BENCHMARKS[int(i)] for i in picks]


def workload_mixes(
    num_cores: int, count: int, seed: int = 0
) -> List[List[BenchmarkProfile]]:
    """Draw ``count`` distinct random workload mixes (paper §5.1)."""
    return [random_mix(num_cores, seed=seed + 1000 * index) for index in range(count)]


def named_mix(names: Sequence[str]) -> List[BenchmarkProfile]:
    """Resolve a list of benchmark names into profiles."""
    return [_resolve(name) for name in names]
