"""Synthetic L2-access trace generation.

The generator emits an infinite stream of :class:`TraceEntry` tuples from
a :class:`BenchmarkProfile`.  Two access populations are interleaved:

* **sequential runs** — ``num_streams`` concurrent contexts that each walk
  line addresses upward one at a time; after a geometrically-distributed
  run length the context jumps to a fresh random base.  Long runs are what
  stream prefetchers love; short runs are what makes them issue useless,
  far-ahead prefetches.
* **random accesses** — uniform over a working set, optionally re-touching
  recently used lines (temporal reuse → L2 hits).

All randomness comes from a seeded ``numpy`` Generator; random draws are
batched for speed.

Hot-path layout (DESIGN.md §15): entries are built a chunk at a time in
:meth:`generate_batches` and flattened through
``itertools.chain.from_iterable``, so the per-access ``next(core.trace)``
hop in the simulation loop is serviced by the C chain iterator walking a
prebuilt list instead of resuming a Python generator frame per entry.
"""

from __future__ import annotations

import zlib
from collections import deque
from itertools import chain
from typing import Iterator, List

import numpy as np

from repro.core.trace import TraceEntry
from repro.workloads.profiles import BenchmarkProfile

# Streams live in disjoint 1G-line regions so contexts never collide.
_REGION_BITS = 30
_CHUNK = 4096


class SyntheticTraceGenerator:
    """Deterministic, seeded trace generator for one benchmark profile."""

    def __init__(self, profile: BenchmarkProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed

    def __iter__(self) -> Iterator[TraceEntry]:
        return self.generate()

    def generate(self, offset: int = 0) -> Iterator[TraceEntry]:
        """Yield an infinite stream of trace entries.

        ``offset`` is added to every line address (cores get disjoint
        address spaces).  It is folded into the base pointers up front so
        the per-entry cost is zero; callers pass line-aligned offsets
        (multiples of 8), which keeps the low-bit pc hash unchanged.
        """
        return chain.from_iterable(self.generate_batches(offset))

    def generate_batches(self, offset: int = 0) -> Iterator[List[TraceEntry]]:
        """Yield the same entry stream as :meth:`generate`, one list per
        internal chunk — the batch form the simulation backends flatten
        cheaply, and bulk consumers (converters, profilers) can extend
        from directly.
        """
        profile = self.profile
        # zlib.crc32 is stable across processes (str.hash is randomized).
        rng = np.random.default_rng((self.seed, zlib.crc32(profile.name.encode())))
        gap_p = min(1.0, profile.apki / 1000.0)
        ws_base = offset + (int(rng.integers(0, 1 << _REGION_BITS)) << 8)
        stream_pos = [
            self._fresh_base(rng, index) + offset
            for index in range(profile.num_streams)
        ]
        stream_left = [
            self._run_len(rng, profile.run_length)
            for _ in range(profile.num_streams)
        ]
        recent: deque = deque(maxlen=64)
        access_index = 0
        in_bad_phase = False
        # Profile constants hoisted out of the per-entry loop.
        phase_period = profile.phase_period
        phase_slots = 1 + profile.bad_phase_ratio
        good_sf = profile.stream_fraction
        good_rl = profile.run_length
        bad_sf = profile.bad_phase_stream_fraction
        bad_rl = profile.bad_phase_run_length
        reuse_fraction = profile.reuse_fraction
        hot_fraction = profile.hot_fraction
        write_fraction = profile.write_fraction
        num_streams = profile.num_streams
        ws_lines = profile.ws_lines
        stream_fraction = good_sf
        run_length = good_rl
        recent_append = recent.append
        # Entries are built through tuple.__new__: the namedtuple
        # constructor re-parses its four arguments on every call, and this
        # loop is the single hottest allocation site in a simulation.
        entry_new = tuple.__new__
        entry_cls = TraceEntry
        chunk_range = range(_CHUNK)
        while True:
            # Batched random draws for one chunk of accesses, converted to
            # plain Python lists up front: per-element numpy scalar
            # indexing in the build loop costs several times a list load.
            gaps = (rng.geometric(gap_p, _CHUNK) - 1).tolist()
            kind_draw = rng.random(_CHUNK).tolist()
            stream_pick = rng.integers(0, num_streams, _CHUNK).tolist()
            ws_pick = rng.integers(0, ws_lines, _CHUNK).tolist()
            reuse_draw = rng.random(_CHUNK).tolist()
            reuse_pick = rng.integers(0, 64, _CHUNK).tolist()
            hot_draw = rng.random(_CHUNK).tolist()
            write_draw = rng.random(_CHUNK).tolist()
            hot_pick = (
                rng.integers(0, profile.hot_lines, _CHUNK).tolist()
                if profile.hot_lines
                else None
            )
            batch: List[TraceEntry] = []
            batch_append = batch.append
            for i in chunk_range:
                # The phase check is per-entry because a phase boundary can
                # land mid-chunk; profiles without phases skip it in one
                # falsy test.
                if phase_period:
                    in_bad_phase = (access_index // phase_period) % phase_slots != 0
                    if in_bad_phase:
                        stream_fraction = bad_sf
                        run_length = bad_rl
                    else:
                        stream_fraction = good_sf
                        run_length = good_rl
                if kind_draw[i] < stream_fraction:
                    context = stream_pick[i]
                    line = stream_pos[context]
                    stream_pos[context] += 1
                    stream_left[context] -= 1
                    if stream_left[context] <= 0:
                        stream_pos[context] = self._fresh_base(rng, context) + offset
                        stream_left[context] = self._run_len(rng, run_length)
                    pc = 16 + context
                else:
                    if recent and reuse_draw[i] < reuse_fraction:
                        line = recent[reuse_pick[i] % len(recent)]
                    elif hot_pick is not None and hot_draw[i] < hot_fraction:
                        line = ws_base + hot_pick[i]
                    else:
                        line = ws_base + ws_pick[i]
                    pc = 8 + (line & 0x7)
                recent_append(line)
                access_index += 1
                batch_append(
                    entry_new(
                        entry_cls,
                        (gaps[i], line, pc, write_draw[i] < write_fraction),
                    )
                )
            yield batch

    @staticmethod
    def _fresh_base(rng: np.random.Generator, context: int) -> int:
        region = (context + 1) << (_REGION_BITS + 4)
        return region + (int(rng.integers(0, 1 << _REGION_BITS)) << 4)

    @staticmethod
    def _run_len(rng: np.random.Generator, mean: int) -> int:
        return max(2, int(rng.geometric(1.0 / mean)))
