"""Synthetic L2-access trace generation.

The generator emits an infinite stream of :class:`TraceEntry` tuples from
a :class:`BenchmarkProfile`.  Two access populations are interleaved:

* **sequential runs** — ``num_streams`` concurrent contexts that each walk
  line addresses upward one at a time; after a geometrically-distributed
  run length the context jumps to a fresh random base.  Long runs are what
  stream prefetchers love; short runs are what makes them issue useless,
  far-ahead prefetches.
* **random accesses** — uniform over a working set, optionally re-touching
  recently used lines (temporal reuse → L2 hits).

All randomness comes from a seeded ``numpy`` Generator; random draws are
batched for speed.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Iterator

import numpy as np

from repro.core.trace import TraceEntry
from repro.workloads.profiles import BenchmarkProfile

# Streams live in disjoint 1G-line regions so contexts never collide.
_REGION_BITS = 30
_CHUNK = 4096


class SyntheticTraceGenerator:
    """Deterministic, seeded trace generator for one benchmark profile."""

    def __init__(self, profile: BenchmarkProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed

    def __iter__(self) -> Iterator[TraceEntry]:
        return self.generate()

    def generate(self) -> Iterator[TraceEntry]:
        """Yield an infinite stream of trace entries."""
        profile = self.profile
        # zlib.crc32 is stable across processes (str.hash is randomized).
        rng = np.random.default_rng((self.seed, zlib.crc32(profile.name.encode())))
        gap_p = min(1.0, profile.apki / 1000.0)
        ws_base = int(rng.integers(0, 1 << _REGION_BITS)) << 8
        stream_pos = [
            self._fresh_base(rng, index) for index in range(profile.num_streams)
        ]
        stream_left = [
            self._run_len(rng, profile.run_length)
            for _ in range(profile.num_streams)
        ]
        recent: deque = deque(maxlen=64)
        access_index = 0
        in_bad_phase = False
        while True:
            # Batched random draws for one chunk of accesses.
            gaps = rng.geometric(gap_p, _CHUNK) - 1
            kind_draw = rng.random(_CHUNK)
            stream_pick = rng.integers(0, profile.num_streams, _CHUNK)
            ws_pick = rng.integers(0, profile.ws_lines, _CHUNK)
            reuse_draw = rng.random(_CHUNK)
            reuse_pick = rng.integers(0, 64, _CHUNK)
            hot_draw = rng.random(_CHUNK)
            write_draw = rng.random(_CHUNK)
            hot_pick = (
                rng.integers(0, profile.hot_lines, _CHUNK)
                if profile.hot_lines
                else None
            )
            for i in range(_CHUNK):
                if profile.phase_period:
                    phase = (access_index // profile.phase_period) % (
                        1 + profile.bad_phase_ratio
                    )
                    in_bad_phase = phase != 0
                if in_bad_phase:
                    stream_fraction = profile.bad_phase_stream_fraction
                    run_length = profile.bad_phase_run_length
                else:
                    stream_fraction = profile.stream_fraction
                    run_length = profile.run_length
                if kind_draw[i] < stream_fraction:
                    context = int(stream_pick[i])
                    line = stream_pos[context]
                    stream_pos[context] += 1
                    stream_left[context] -= 1
                    if stream_left[context] <= 0:
                        stream_pos[context] = self._fresh_base(rng, context)
                        stream_left[context] = self._run_len(rng, run_length)
                    pc = 16 + context
                else:
                    if recent and reuse_draw[i] < profile.reuse_fraction:
                        line = recent[int(reuse_pick[i]) % len(recent)]
                    elif hot_pick is not None and hot_draw[i] < profile.hot_fraction:
                        line = ws_base + int(hot_pick[i])
                    else:
                        line = ws_base + int(ws_pick[i])
                    pc = 8 + (line & 0x7)
                recent.append(line)
                access_index += 1
                is_write = bool(write_draw[i] < profile.write_fraction)
                yield TraceEntry(int(gaps[i]), line, pc, is_write)

    @staticmethod
    def _fresh_base(rng: np.random.Generator, context: int) -> int:
        region = (context + 1) << (_REGION_BITS + 4)
        return region + (int(rng.integers(0, 1 << _REGION_BITS)) << 4)

    @staticmethod
    def _run_len(rng: np.random.Generator, mean: int) -> int:
        return max(2, int(rng.geometric(1.0 / mean)))
