"""Per-benchmark workload profiles (the synthetic stand-in for Table 5).

Knob semantics:

* ``apki`` — L2 accesses per 1000 instructions (memory intensity; sets
  the mean inter-access instruction gap).
* ``stream_fraction`` — fraction of accesses that belong to sequential
  runs (the rest are random accesses over ``ws_lines``).
* ``run_length`` — mean lines per sequential run.  This single knob
  controls both row-buffer locality and stream-prefetch accuracy: runs
  much longer than the prefetch distance (64 lines) make prefetches
  useful; runs shorter than it make the prefetcher issue far-ahead,
  never-used requests (the art/galgel/ammp failure mode of §1).
* ``num_streams`` — concurrent sequential contexts.
* ``ws_lines`` — random-component working set, in lines.  Working sets
  that fit in the L2 turn the random component into cache hits
  (prefetch-insensitive benchmarks); larger ones produce irregular
  misses the stream prefetcher cannot cover.
* ``reuse_fraction`` — probability a random access re-touches a recently
  used line (temporal locality → L2 hits).
* ``hot_lines`` / ``hot_fraction`` — a hot subset of the working set that
  fits in the cache *as long as useless prefetches do not thrash it*;
  this is what makes prefetch-unfriendly benchmarks lose performance to
  cache pollution (paper §1: galgel's MPKI nearly doubles).
* ``phase_period`` / bad-phase overrides — milc-style alternation between
  accurate and inaccurate prefetch phases (Figure 4(b));
  ``bad_phase_ratio`` bad periods follow each good period.
* ``pf_class`` — the paper's classification: 0 insensitive, 1 friendly,
  2 unfriendly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generator parameters for one synthetic benchmark."""

    name: str
    pf_class: int
    apki: float
    stream_fraction: float
    run_length: int
    num_streams: int = 4
    ws_lines: int = 1 << 20
    reuse_fraction: float = 0.0
    phase_period: int = 0
    bad_phase_stream_fraction: float = 0.0
    bad_phase_run_length: int = 4
    bad_phase_ratio: int = 1
    hot_lines: int = 0
    hot_fraction: float = 0.0
    # Fraction of accesses that are stores (write-allocate; dirty lines
    # write back to DRAM on eviction).  The calibrated SPEC-like profiles
    # leave this at 0 — the paper's traffic categories are read-side —
    # but custom profiles can model store-heavy workloads with it.
    write_fraction: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.stream_fraction <= 1.0:
            raise ValueError("stream_fraction must be in [0, 1]")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.apki <= 0:
            raise ValueError("apki must be positive")
        if self.run_length < 2:
            raise ValueError("run_length must be >= 2")


def _p(name, pf_class, apki, sf, run, streams=4, ws=1 << 20, reuse=0.0, **kw):
    return BenchmarkProfile(
        name=name,
        pf_class=pf_class,
        apki=apki,
        stream_fraction=sf,
        run_length=run,
        num_streams=streams,
        ws_lines=ws,
        reuse_fraction=reuse,
        **kw,
    )


# The 28 benchmarks named in Table 5, tuned to their reported class,
# intensity (MPKI), row-buffer locality and prefetch accuracy.
_NAMED: List[BenchmarkProfile] = [
    # -- prefetch-insensitive (class 0) -----------------------------------
    _p("eon_00", 0, 0.15, 0.2, 64, ws=1 << 11, reuse=0.6),
    _p("sjeng_06", 0, 1.2, 0.1, 32, ws=1 << 12, reuse=0.5),
    _p("gamess_06", 0, 0.2, 0.3, 64, ws=1 << 11, reuse=0.6),
    _p("hmmer_06", 0, 1.8, 0.9, 2048, streams=2, ws=1 << 12, reuse=0.4),
    # -- prefetch-friendly (class 1) ---------------------------------------
    _p("mgrid_00", 1, 14.0, 0.97, 2048, streams=4, ws=1 << 22),
    _p("facerec_00", 1, 8.0, 0.8, 512, streams=4, ws=1 << 20, reuse=0.2),
    _p("lucas_00", 1, 16.0, 0.9, 1024, streams=2, ws=1 << 21),
    _p("mcf_06", 1, 30.0, 0.4, 110, streams=8, ws=1 << 22, reuse=0.1),
    _p("libquantum_06", 1, 24.0, 0.98, 1 << 20, streams=2, ws=1 << 22),
    _p("zeusmp_06", 1, 12.0, 0.7, 200, streams=8, ws=1 << 20, reuse=0.1),
    _p("leslie3d_06", 1, 28.0, 0.95, 1024, streams=4, ws=1 << 22),
    _p("GemsFDTD_06", 1, 22.0, 0.95, 768, streams=4, ws=1 << 22),
    _p("wrf_06", 1, 18.0, 0.95, 1024, streams=6, ws=1 << 21),
    _p("swim_00", 1, 28.0, 0.96, 2048, streams=4, ws=1 << 22),
    _p("equake_00", 1, 20.0, 0.95, 2048, streams=4, ws=1 << 21),
    _p("gcc_06", 1, 12.0, 0.5, 130, streams=6, ws=1 << 19, reuse=0.2),
    _p("astar_06", 1, 18.0, 0.35, 90, streams=4, ws=1 << 21, reuse=0.1),
    _p("bwaves_06", 1, 26.0, 0.97, 4096, streams=4, ws=1 << 22),
    _p("cactusADM_06", 1, 11.0, 0.6, 150, streams=6, ws=1 << 20, reuse=0.1),
    _p("soplex_06", 1, 22.0, 0.88, 512, streams=4, ws=1 << 21),
    _p("lbm_06", 1, 28.0, 0.96, 2048, streams=4, ws=1 << 22),
    _p("sphinx3_06", 1, 18.0, 0.8, 256, streams=4, ws=1 << 21, reuse=0.1),
    # -- prefetch-unfriendly (class 2) ---------------------------------------
    _p("art_00", 2, 60.0, 0.9, 64, streams=6, ws=1 << 16, reuse=0.05,
       hot_lines=5_000, hot_fraction=0.5),
    _p("galgel_00", 2, 12.0, 0.55, 56, streams=8, ws=200_000, reuse=0.05,
       hot_lines=6_000, hot_fraction=0.75),
    _p("ammp_00", 2, 4.0, 0.45, 24, streams=4, ws=200_000, reuse=0.05,
       hot_lines=6_000, hot_fraction=0.7),
    _p(
        "milc_06",
        2,
        30.0,
        0.9,
        256,
        streams=4,
        ws=1 << 22,
        phase_period=3_000,
        bad_phase_stream_fraction=0.9,
        bad_phase_run_length=4,
        bad_phase_ratio=3,
    ),
    _p("omnetpp_06", 2, 14.0, 0.45, 32, streams=4, ws=300_000, reuse=0.05,
       hot_lines=7_000, hot_fraction=0.55),
    _p("xalancbmk_06", 2, 4.0, 0.5, 24, streams=4, ws=200_000, reuse=0.05,
       hot_lines=6_000, hot_fraction=0.7),
]

# 27 additional profiles to round the population out to the paper's 55,
# spanning the same classes in roughly the same proportions (the paper has
# 29 class-1 benchmarks out of 55).
_FILLER: List[BenchmarkProfile] = [
    _p("gzip_00", 0, 1.0, 0.4, 128, ws=1 << 13, reuse=0.4),
    _p("vpr_00", 0, 1.5, 0.2, 32, ws=1 << 13, reuse=0.4),
    _p("gcc_00", 1, 4.0, 0.5, 160, streams=6, ws=1 << 18, reuse=0.2),
    _p("mesa_00", 0, 0.8, 0.5, 128, ws=1 << 12, reuse=0.5),
    _p("applu_00", 1, 18.0, 0.9, 1024, streams=4, ws=1 << 21),
    _p("crafty_00", 0, 0.5, 0.2, 32, ws=1 << 12, reuse=0.5),
    _p("parser_00", 0, 1.2, 0.3, 48, ws=1 << 14, reuse=0.4),
    _p("sixtrack_00", 0, 0.4, 0.6, 256, ws=1 << 12, reuse=0.4),
    _p("perlbmk_00", 0, 0.6, 0.3, 64, ws=1 << 12, reuse=0.5),
    _p("gap_00", 1, 3.0, 0.7, 512, streams=4, ws=1 << 18),
    _p("vortex_00", 0, 1.0, 0.4, 96, ws=1 << 14, reuse=0.4),
    _p("bzip2_00", 1, 2.5, 0.7, 384, streams=4, ws=1 << 17, reuse=0.2),
    _p("twolf_00", 2, 3.0, 0.5, 12, streams=4, ws=150_000, reuse=0.1,
       hot_lines=6_000, hot_fraction=0.65),
    _p("wupwise_00", 1, 14.0, 0.9, 1024, streams=4, ws=1 << 20),
    _p("apsi_00", 1, 12.0, 0.8, 512, streams=6, ws=1 << 20),
    _p("fma3d_00", 1, 16.0, 0.8, 640, streams=6, ws=1 << 20),
    _p("mcf_00", 1, 35.0, 0.45, 128, streams=8, ws=1 << 22, reuse=0.1),
    _p("perlbench_06", 0, 0.8, 0.3, 64, ws=1 << 13, reuse=0.5),
    _p("bzip2_06", 1, 3.0, 0.7, 384, streams=4, ws=1 << 17, reuse=0.2),
    _p("gobmk_06", 0, 0.7, 0.2, 32, ws=1 << 13, reuse=0.5),
    _p("dealII_06", 0, 1.5, 0.6, 192, ws=1 << 14, reuse=0.3),
    _p("povray_06", 0, 0.3, 0.3, 64, ws=1 << 11, reuse=0.6),
    _p("calculix_06", 0, 0.9, 0.6, 256, ws=1 << 13, reuse=0.3),
    _p("gromacs_06", 1, 2.0, 0.7, 448, streams=4, ws=1 << 16, reuse=0.2),
    _p("namd_06", 1, 1.8, 0.7, 512, streams=4, ws=1 << 16, reuse=0.2),
    _p("tonto_06", 1, 2.2, 0.7, 448, streams=4, ws=1 << 16, reuse=0.2),
    _p("h264ref_06", 1, 2.0, 0.75, 512, streams=4, ws=1 << 16, reuse=0.2),
]

ALL_BENCHMARKS: Tuple[BenchmarkProfile, ...] = tuple(_NAMED + _FILLER)

_BY_NAME: Dict[str, BenchmarkProfile] = {p.name: p for p in ALL_BENCHMARKS}

# Short aliases: "swim" -> "swim_00", "milc" -> "milc_06", etc.
for _profile in ALL_BENCHMARKS:
    _short = _profile.name.rsplit("_", 1)[0]
    _BY_NAME.setdefault(_short, _profile)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a profile by full (``swim_00``) or short (``swim``) name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def profiles_by_class(pf_class: int) -> List[BenchmarkProfile]:
    """All profiles with the given prefetch-friendliness class."""
    return [p for p in ALL_BENCHMARKS if p.pf_class == pf_class]
