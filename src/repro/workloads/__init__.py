"""Synthetic SPEC CPU 2000/2006-like workloads.

The paper drives its simulator with Pinpoint traces of 55 SPEC
benchmarks.  Those traces are proprietary, so this package synthesizes
L2-access traces from per-benchmark *profiles* whose knobs reproduce the
properties PADC's results depend on (see DESIGN.md §2): memory intensity
(APKI), sequential-run length (which controls both row-buffer locality
and stream-prefetch accuracy), working-set size, temporal reuse, and
phase behaviour (for milc's Figure 4(b) accuracy phases).
"""

from repro.workloads.profiles import (
    ALL_BENCHMARKS,
    BenchmarkProfile,
    get_profile,
    profiles_by_class,
)
from repro.workloads.resolve import (
    canonical_workload,
    is_trace_spec,
    resolve_workload,
)
from repro.workloads.suite import make_trace, named_mix, random_mix, workload_mixes
from repro.workloads.synthetic import SyntheticTraceGenerator

__all__ = [
    "BenchmarkProfile",
    "ALL_BENCHMARKS",
    "canonical_workload",
    "get_profile",
    "is_trace_spec",
    "profiles_by_class",
    "resolve_workload",
    "SyntheticTraceGenerator",
    "make_trace",
    "named_mix",
    "random_mix",
    "workload_mixes",
]
