"""One front door for every way to name a workload.

The simulator historically accepted benchmark names (``"swim"``) and
:class:`BenchmarkProfile` values.  The trace subsystem (DESIGN.md §13)
adds ``trace:<name-or-path>`` specs and :class:`TraceWorkload` values;
this module is the single resolution point all consumers share —
``System``, ``SimJob`` cache keying, and the campaign validator — so a
workload means the same thing on every surface.

:mod:`repro.trace` is imported lazily: the synthetic path keeps its
import graph (and cold-start cost) unchanged, and ``repro.runtime`` can
call :func:`canonical_workload` without a circular import.
"""

from __future__ import annotations

from typing import Union

from repro.workloads.profiles import BenchmarkProfile, get_profile

TRACE_PREFIX = "trace:"

WorkloadLike = Union[str, BenchmarkProfile, "object"]


def is_trace_spec(workload) -> bool:
    """True for ``trace:`` spec strings (cheap, import-free check)."""
    return isinstance(workload, str) and workload.startswith(TRACE_PREFIX)


def resolve_workload(workload):
    """Resolve any workload spelling to its runnable object.

    * ``BenchmarkProfile`` / ``TraceWorkload`` values pass through;
    * ``"trace:..."`` strings resolve through the trace registry
      (:func:`repro.trace.resolve_trace` — raises ``TraceLookupError``
      with nearest-match suggestions on unknown names);
    * every other string is a benchmark-profile name.
    """
    if isinstance(workload, BenchmarkProfile):
        return workload
    if is_trace_spec(workload):
        from repro.trace import resolve_trace

        return resolve_trace(workload)
    if isinstance(workload, str):
        return get_profile(workload)
    from repro.trace import TraceWorkload

    if isinstance(workload, TraceWorkload):
        return workload
    raise TypeError(
        f"cannot resolve workload {workload!r} "
        f"({type(workload).__name__}); expected a benchmark name, a "
        f"BenchmarkProfile, a {TRACE_PREFIX}<name-or-path> spec, or a "
        "TraceWorkload"
    )


def canonical_workload(workload):
    """The hashable identity of a workload, for cache keys.

    Plain benchmark names stay strings (their profiles live in code, so
    the name *is* the content identity — any profile change ships with a
    ``CACHE_VERSION`` bump).  ``trace:`` specs and ``TraceWorkload``
    values canonicalize to the dataclass form whose hashed fields are
    the trace's embedded content digest plus windowing knobs — never the
    filesystem path, so the same trace at two paths shares cache entries
    and an edited trace invalidates them.
    """
    # Lazy: repro.runtime imports repro.sim (for result types), which
    # imports this package — a module-level import here would be a cycle.
    from repro.runtime.hashing import canonicalize

    if is_trace_spec(workload):
        from repro.trace import resolve_trace

        return canonicalize(resolve_trace(workload))
    return canonicalize(workload)
