"""Memory-request-buffer entries.

Each request carries the fields of the paper's Figure 5/18:

* ``is_prefetch`` — the P bit.  It is cleared ("promoted") when a demand
  request matches the prefetch while it is still in flight; a promoted
  request schedules as a demand and counts as a *useful* prefetch.
* ``core_id`` — the ID field.
* ``arrival`` — the FCFS timestamp; ``age(now)`` derives the AGE field.
* criticality (C), row-hit (RH), urgency (U) and RANK are computed at
  scheduling time from the bank state and the per-core accuracy registers.
"""

from __future__ import annotations

from typing import Optional


class MemRequest:
    """One entry of the DRAM controller's memory request buffer."""

    __slots__ = (
        "line_addr",
        "core_id",
        "is_prefetch",
        "is_write",
        "arrival",
        "channel",
        "bank",
        "row",
        "promoted",
        "is_runahead",
        "row_hit_service",
        "service_start",
        "completion",
        "dropped",
    )

    def __init__(
        self,
        line_addr: int,
        core_id: int,
        is_prefetch: bool,
        arrival: int,
        channel: int,
        bank: int,
        row: int,
        is_write: bool = False,
        is_runahead: bool = False,
    ):
        self.line_addr = line_addr
        self.core_id = core_id
        self.is_prefetch = is_prefetch
        self.is_write = is_write
        self.arrival = arrival
        self.channel = channel
        self.bank = bank
        self.row = row
        self.promoted = False
        self.is_runahead = is_runahead
        self.row_hit_service: Optional[bool] = None
        self.service_start: Optional[int] = None
        self.completion: Optional[int] = None
        self.dropped = False

    def age(self, now: int) -> int:
        """Cycles this request has been outstanding (the AGE field)."""
        return now - self.arrival

    def promote(self) -> None:
        """A demand matched this in-flight prefetch: clear the P bit.

        The request is scheduled as a demand from now on, but it still
        counts as a (useful) prefetch for accuracy accounting, per the
        paper's footnote 9.
        """
        if self.is_prefetch:
            self.is_prefetch = False
            self.promoted = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "P" if self.is_prefetch else ("D*" if self.promoted else "D")
        return (
            f"MemRequest({kind} line=0x{self.line_addr:x} core={self.core_id} "
            f"ch={self.channel} bank={self.bank} row={self.row} t={self.arrival})"
        )
