"""Memory-request-buffer entries.

Each request carries the fields of the paper's Figure 5/18:

* ``is_prefetch`` — the P bit.  It is cleared ("promoted") when a demand
  request matches the prefetch while it is still in flight; a promoted
  request schedules as a demand and counts as a *useful* prefetch.
* ``core_id`` — the ID field.
* ``arrival`` — the FCFS timestamp; ``age(now)`` derives the AGE field.
* criticality (C), row-hit (RH), urgency (U) and RANK are computed at
  scheduling time from the bank state and the per-core accuracy registers.

Scheduling hot path (DESIGN.md §10): ``seq`` is a controller-assigned
admission sequence number that breaks every priority tie, and
``prio_base``/``prio_hit``/``prio_stamp`` cache the packed integer
priority key for both row-buffer outcomes so the engine only recomputes
them when the policy's key epoch has moved.  ``promote()`` invalidates
the cache — a cleared P bit changes the key under every prefetch-aware
policy.
"""

from __future__ import annotations

from typing import Optional

from repro.controller.cost import ARRIVAL_LIMIT, SEQ_BITS, SEQ_LIMIT


class MemRequest:
    """One entry of the DRAM controller's memory request buffer."""

    __slots__ = (
        "line_addr",
        "core_id",
        "is_prefetch",
        "is_write",
        "arrival",
        "channel",
        "bank",
        "row",
        "promoted",
        "is_runahead",
        "row_hit_service",
        "service_start",
        "completion",
        "dropped",
        "seq",
        "fcfs_key",
        "prio_base",
        "prio_hit",
        "prio_stamp",
        "qpos",
    )

    def __init__(
        self,
        line_addr: int,
        core_id: int,
        is_prefetch: bool,
        arrival: int,
        channel: int,
        bank: int,
        row: int,
        is_write: bool = False,
        is_runahead: bool = False,
        seq: int = 0,
    ):
        self.line_addr = line_addr
        self.core_id = core_id
        self.is_prefetch = is_prefetch
        self.is_write = is_write
        self.arrival = arrival
        self.channel = channel
        self.bank = bank
        self.row = row
        self.promoted = False
        self.is_runahead = is_runahead
        self.row_hit_service: Optional[bool] = None
        self.service_start: Optional[int] = None
        self.completion: Optional[int] = None
        self.dropped = False
        self.seq = seq
        # Inlined pack_fcfs(arrival, seq): one request per miss/prefetch
        # makes the extra call measurable.
        self.fcfs_key = ((ARRIVAL_LIMIT - arrival) << SEQ_BITS) | (SEQ_LIMIT - seq)
        # Cached packed priority keys for both row-buffer outcomes
        # (``prio_hit`` applies when this request's row is open,
        # ``prio_base`` otherwise), valid while ``prio_stamp`` matches the
        # policy's epoch; -1 never matches.  Caching both variants makes
        # open-row changes free — only epoch bumps and promotion
        # invalidate (DESIGN.md §10).
        self.prio_base = 0
        self.prio_hit = 0
        self.prio_stamp = -1
        # Index of this request in its bank queue (-1 = not queued),
        # maintained by the engine for O(1) swap-pop removal.
        self.qpos = -1

    def age(self, now: int) -> int:
        """Cycles this request has been outstanding (the AGE field)."""
        return now - self.arrival

    def promote(self) -> None:
        """A demand matched this in-flight prefetch: clear the P bit.

        The request is scheduled as a demand from now on, but it still
        counts as a (useful) prefetch for accuracy accounting, per the
        paper's footnote 9.
        """
        if self.is_prefetch:
            self.is_prefetch = False
            self.promoted = True
            # The P bit feeds every prefetch-aware priority key; force a
            # recompute on the next scheduling round.
            self.prio_stamp = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "P" if self.is_prefetch else ("D*" if self.promoted else "D")
        return (
            f"MemRequest({kind} line=0x{self.line_addr:x} core={self.core_id} "
            f"ch={self.channel} bank={self.bank} row={self.row} t={self.arrival})"
        )
