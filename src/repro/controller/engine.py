"""DRAM controller engine: request buffers + channels + a scheduling policy.

The engine owns one request buffer per channel (organized as per-bank
queues plus a line-address index for demand matching) and performs the
scheduling rounds:

* a *tick* considers every bank that is free at the current cycle, lets the
  policy pick the best request per bank, and services the winners in
  global priority order (so the shared data bus is granted by priority);
* Adaptive Prefetch Dropping, when enabled, removes over-age prefetches
  during the same queue scan, invalidating their MSHR entries through the
  ``on_drop`` callback (paper §4.3–4.4);
* demand requests that find the buffer full wait in an overflow FIFO
  (modelling the back-pressure the paper describes in §6.1); prefetches
  that find it full are simply not sent — which is exactly the coverage
  loss the paper attributes to full request buffers.

Two interchangeable scheduling implementations share all of the above
(DESIGN.md §10):

* the **optimized** path (default) caches *two* packed integer priority
  keys per request — one for each row-buffer outcome — so a bank's open
  row changing invalidates nothing; only the policy's key epoch (bumped
  on interval boundaries and rank/batch changes) and promotion do.
  Winners come from per-bank lazy max-heaps: a base heap ordered by the
  row-miss key plus per-row buckets ordered by the row-hit key; the
  bank's best request is the greater of the open-row bucket's top and
  the base heap's top.  Stale entries are discarded lazily.  Winner
  removal is an index-tracked swap-pop; the APD age scan is skipped
  until the bank's earliest drop deadline; closed-row precharge queries
  are answered from per-bank open-row refcounts;
* the **reference** path re-derives every priority tuple from scratch
  each round exactly like the original implementation.

Both produce byte-identical simulation results — priorities are totally
ordered (the admission sequence number breaks every tie), so winner
selection does not depend on queue order or on how keys are represented.
Select the reference path with ``DRAMControllerEngine(...,
reference=True)`` or system-wide with ``$REPRO_BACKEND=reference``
(``$REPRO_SCHED`` is the deprecated spelling).
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Callable, Dict, List, Optional, Tuple

from repro.controller.apd import AdaptivePrefetchDropper
from repro.controller.policies import SchedulingPolicy
from repro.controller.request import MemRequest
from repro.dram.address import AddressMapping
from repro.dram.bank import RowBufferState
from repro.dram.channel import Channel
from repro.params import DRAMConfig

# Sentinel for "no queued prefetch can ever go over-age": later than any
# reachable simulation cycle.
_NEVER = 1 << 62


class ControllerStats:
    """Aggregate counters kept by the engine."""

    __slots__ = (
        "scheduled_demands",
        "scheduled_prefetches",
        "demand_row_hits",
        "prefetch_row_hits",
        "dropped_prefetches",
        "prefetches_rejected_full",
        "demand_overflows",
        "enqueued_total",
        "rounds",
    )

    def __init__(self):
        self.scheduled_demands = 0
        self.scheduled_prefetches = 0
        self.demand_row_hits = 0
        self.prefetch_row_hits = 0
        self.dropped_prefetches = 0
        self.prefetches_rejected_full = 0
        self.demand_overflows = 0
        # Every request accepted into the controller (buffer or overflow
        # FIFO).  Closes the lifecycle conservation law audited by
        # repro.validate: enqueued == serviced + dropped + still queued.
        self.enqueued_total = 0
        # Scheduling rounds executed (one per tick, across channels and
        # backends).  Not part of SimResult — it pins *work done*, not
        # simulated behavior: the regression test for the APS-rank census
        # path asserts the round count for a fixed seed is unchanged, so
        # a perf fix cannot silently alter how often the scheduler runs.
        self.rounds = 0

    @property
    def serviced_total(self) -> int:
        return self.scheduled_demands + self.scheduled_prefetches


class DRAMControllerEngine:
    """Schedules memory requests onto DRAM channels."""

    def __init__(
        self,
        config: DRAMConfig,
        policy: SchedulingPolicy,
        dropper: Optional[AdaptivePrefetchDropper] = None,
        on_drop: Optional[Callable[[MemRequest], None]] = None,
        reference: bool = False,
        backend: Optional[str] = None,
    ):
        self.config = config
        self.policy = policy
        self.dropper = dropper
        self.on_drop = on_drop
        # ``backend`` names the simulation backend driving this engine
        # ("event", "optimized", "reference"); the legacy ``reference``
        # flag is kept as a shorthand for backend="reference".  The
        # engine itself only distinguishes reference from non-reference —
        # the event backend reuses the optimized selection structures
        # (its fused loop keeps them coherent through the same
        # _admit/_push_keyed/_rebuild_bank helpers).
        if backend is None:
            backend = "reference" if reference else "optimized"
        self.backend = backend
        self.reference = reference = backend == "reference"
        self.mapping = AddressMapping(config)
        # Decode constants hoisted for the inlined decode in
        # build_request (AddressMapping validates banks_per_channel).
        self._dec_lines = config.lines_per_row
        self._dec_channels = config.num_channels
        self._dec_banks = config.banks_per_channel
        self._dec_perm = config.permutation_interleaving
        self._dec_bank_mask = config.banks_per_channel - 1
        self.channels: List[Channel] = [
            Channel(config, channel_id) for channel_id in range(config.num_channels)
        ]
        banks = config.banks_per_channel
        self._queues: List[List[List[MemRequest]]] = [
            [[] for _ in range(banks)] for _ in range(config.num_channels)
        ]
        self._index: List[Dict[int, MemRequest]] = [
            {} for _ in range(config.num_channels)
        ]
        self._occupancy: List[int] = [0] * config.num_channels
        self._overflow: List[deque] = [deque() for _ in range(config.num_channels)]
        # Per-channel occupancy high-water marks since the telemetry
        # layer last sampled them (one compare per admission).
        self.peak_occupancy: List[int] = [0] * config.num_channels
        self.stats = ControllerStats()
        # Admission sequence counter: the universal priority tie-break.
        self._seq = 0
        # Per-bank earliest cycle at which a queued prefetch may go
        # over-age; ticks before it skip the APD scan.  0 forces a scan
        # (and a deadline recomputation) on the next round.
        self._drop_check: List[List[int]] = [
            [0] * banks for _ in range(config.num_channels)
        ]
        # Per-bank lazy selection structures, valid for the policy epoch
        # recorded in ``_bank_epoch`` (-1 = must rebuild):
        #
        # * ``_base_heaps[ch][b]`` — max-heap of (-prio_base, request)
        #   over every queued request (row-miss keys);
        # * ``_row_buckets[ch][b]`` — dict row -> max-heap of
        #   (-prio_hit, request) over that row's queued requests.
        #
        # The bank's best request is max(open-row bucket top by hit key,
        # base top by miss key): a row-hit key only differs from the miss
        # key in flag bits that never lower it, so if the base top's row
        # is open, the bucket top dominates it.  Entries for removed or
        # re-keyed requests are discarded lazily when they surface; keys
        # are unique, so heap order never falls through to comparing
        # requests.  Open-row changes never invalidate these structures —
        # only epoch bumps (rebuild) and promotions (re-push) do.
        self._base_heaps: List[List[list]] = [
            [[] for _ in range(banks)] for _ in range(config.num_channels)
        ]
        self._row_buckets: List[List[Dict[int, list]]] = [
            [{} for _ in range(banks)] for _ in range(config.num_channels)
        ]
        self._bank_epoch: List[List[int]] = [
            [-1] * banks for _ in range(config.num_channels)
        ]
        # Closed-row policy: per-bank refcounts of queued requests per row,
        # so "does any queued request still hit this row?" is O(1).
        self._row_refs: Optional[List[List[Dict[int, int]]]] = (
            None
            if config.open_row_policy
            else [[{} for _ in range(banks)] for _ in range(config.num_channels)]
        )
        # Critical-census counters for ranking policies (APS Rule 2): the
        # per-channel, per-core counts of queued demands and queued
        # prefetches.  ``begin_tick`` needs the per-core number of
        # *critical* requests every round; maintaining these two splits
        # incrementally (admission, service, drop, promotion) turns that
        # from an O(queued) queue scan per round into an O(cores) read —
        # criticality only depends on the demand/prefetch split and the
        # tracker's per-core flags.  Reference path keeps the scan (it is
        # the spec the census is checked against).
        if policy.census_based and not reference:
            cores = policy.tracker.num_cores
            self._census_demand: Optional[List[List[int]]] = [
                [0] * cores for _ in range(config.num_channels)
            ]
            self._census_prefetch: Optional[List[List[int]]] = [
                [0] * cores for _ in range(config.num_channels)
            ]
        else:
            self._census_demand = None
            self._census_prefetch = None
        self._tick_impl = self._tick_reference if reference else self._tick_optimized
        # Shadow the ``tick`` method with the chosen implementation bound
        # directly on the instance: one less call layer per scheduling
        # round (the method body remains as documentation/fallback for
        # anything holding a class-level reference).
        self.tick = self._tick_impl

    # -- admission ---------------------------------------------------------

    def build_request(
        self,
        line_addr: int,
        core_id: int,
        is_prefetch: bool,
        now: int,
        is_write: bool = False,
        is_runahead: bool = False,
    ) -> MemRequest:
        """Decode the address and construct a request (not yet enqueued)."""
        # Inlined AddressMapping.decode_coords (constants hoisted at
        # construction); the column index is not part of the request, so
        # its modulo is skipped too.
        rest = line_addr // self._dec_lines
        channel = rest % self._dec_channels
        rest //= self._dec_channels
        bank = rest % self._dec_banks
        row = rest // self._dec_banks
        if self._dec_perm:
            bank = (bank ^ row) & self._dec_bank_mask
        self._seq += 1
        return MemRequest(
            line_addr=line_addr,
            core_id=core_id,
            is_prefetch=is_prefetch,
            arrival=now,
            channel=channel,
            bank=bank,
            row=row,
            is_write=is_write,
            is_runahead=is_runahead,
            seq=self._seq,
        )

    def enqueue_prefetch(self, request: MemRequest) -> bool:
        """Admit a prefetch; returns False (not sent) if the buffer is full."""
        channel = request.channel
        if self._occupancy[channel] >= self.config.request_buffer_size:
            self.stats.prefetches_rejected_full += 1
            return False
        self.stats.enqueued_total += 1
        self._admit(request)
        return True

    def enqueue_demand(self, request: MemRequest) -> None:
        """Admit a demand; overflows wait in FIFO order for a free entry."""
        channel = request.channel
        self.stats.enqueued_total += 1
        if self._occupancy[channel] >= self.config.request_buffer_size:
            self.stats.demand_overflows += 1
            self._overflow[channel].append(request)
        else:
            self._admit(request)

    def _admit(self, request: MemRequest) -> None:
        channel = request.channel
        bank_idx = request.bank
        queue = self._queues[channel][bank_idx]
        request.qpos = len(queue)
        queue.append(request)
        # Writebacks stay out of the line-address index: they never match a
        # demand, and indexing them let a writeback to line X silently evict
        # the index entry of a queued read/prefetch to the same line, making
        # find_queued lie about in-buffer requests.
        if not request.is_write:
            self._index[channel][request.line_addr] = request
        if request.is_prefetch and self.dropper is not None:
            checks = self._drop_check[channel]
            deadline = self.dropper.drop_deadline(request)
            if deadline < checks[bank_idx]:
                checks[bank_idx] = deadline
        if self._row_refs is not None:
            refs = self._row_refs[channel][bank_idx]
            refs[request.row] = refs.get(request.row, 0) + 1
        if not self.reference:
            # Keep the bank's selection structures coherent: if they are
            # built for the current epoch, key the new request now and
            # push it into both heaps; otherwise they are stale and the
            # next scheduling round rebuilds them.
            epoch = self.policy.epoch
            if self._bank_epoch[channel][bank_idx] == epoch:
                self._push_keyed(
                    request,
                    self._base_heaps[channel][bank_idx],
                    self._row_buckets[channel][bank_idx],
                    epoch,
                )
            if self._census_demand is not None:
                if request.is_prefetch:
                    self._census_prefetch[channel][request.core_id] += 1
                else:
                    self._census_demand[channel][request.core_id] += 1
        self._occupancy[channel] += 1
        if self._occupancy[channel] > self.peak_occupancy[channel]:
            self.peak_occupancy[channel] = self._occupancy[channel]

    def _unindex(self, request: MemRequest) -> None:
        """Drop ``request`` from the line-address index (identity-guarded)."""
        if request.is_write:
            return
        index = self._index[request.channel]
        if index.get(request.line_addr) is request:
            del index[request.line_addr]

    def _unref_row(self, request: MemRequest) -> None:
        if self._row_refs is not None:
            refs = self._row_refs[request.channel][request.bank]
            remaining = refs[request.row] - 1
            if remaining:
                refs[request.row] = remaining
            else:
                del refs[request.row]

    def _remove(self, request: MemRequest) -> None:
        self._unindex(request)
        self._unref_row(request)
        self._occupancy[request.channel] -= 1
        self._drain_overflow(request.channel)

    # -- demand matching -----------------------------------------------------

    def find_queued(self, line_addr: int, channel: int) -> Optional[MemRequest]:
        """Look up an in-buffer read/prefetch by line address (for promotion).

        Writebacks are not indexed — a queued writeback to the same line
        never shadows the read/prefetch entry.
        """
        return self._index[channel].get(line_addr)

    def earliest_service(self, request: MemRequest, now: int) -> int:
        """First cycle at which ``request``'s bank could service it.

        Used by the simulator to schedule the admission tick at the bank's
        free time instead of immediately — a round before that provably
        cannot service the new request, and every other bank is already
        covered by its own tick chain.
        """
        busy_until = self.channels[request.channel].banks[request.bank].busy_until
        return busy_until if busy_until > now else now

    # -- priority-cache maintenance ------------------------------------------

    def note_promotion(self, request: MemRequest) -> None:
        """A queued prefetch was promoted to demand status: re-key it.

        ``promote()`` already invalidated the request's cached keys; this
        hook additionally reinserts it into the bank's selection heaps
        with its new (demand) keys, so the promotion takes effect on the
        very next scheduling round — the old heap entries are lazily
        discarded when they surface (their keys no longer match).  No-op
        for requests that already left the queue and on the reference
        path (which re-derives every priority per round anyway).
        """
        if self.reference or request.qpos < 0:
            return
        channel = request.channel
        bank_idx = request.bank
        if self._census_demand is not None:
            # The request flipped P -> demand while queued: move its
            # census count across the split (promote() already ran).
            self._census_prefetch[channel][request.core_id] -= 1
            self._census_demand[channel][request.core_id] += 1
        epoch = self.policy.epoch
        if self._bank_epoch[channel][bank_idx] == epoch:
            self._push_keyed(
                request,
                self._base_heaps[channel][bank_idx],
                self._row_buckets[channel][bank_idx],
                epoch,
            )

    def _push_keyed(
        self, request: MemRequest, base: list, buckets: Dict[int, list], epoch: int
    ) -> None:
        """Key ``request`` for ``epoch`` and push it into both bank heaps."""
        policy = self.policy
        key = policy.priority_key(request, False)
        request.prio_base = key
        request.prio_hit = key + policy.hit_delta
        request.prio_stamp = epoch
        heappush(base, (-key, request))
        bucket = buckets.get(request.row)
        if bucket is None:
            buckets[request.row] = bucket = []
        heappush(bucket, (-request.prio_hit, request))

    def _rebuild_bank(
        self, channel_id: int, bank_idx: int, queue: List[MemRequest], epoch: int
    ) -> Tuple[list, Dict[int, list]]:
        """Rebuild one bank's base heap and row buckets for ``epoch``.

        Re-keys every queued request whose cache is stale; runs only when
        the policy epoch moved since the structures were built (or every
        live entry was consumed), never on open-row changes.
        """
        priority_key = self.policy.priority_key
        hit_delta = self.policy.hit_delta
        base = []
        buckets: Dict[int, list] = {}
        for request in queue:
            if request.prio_stamp != epoch:
                request.prio_base = key = priority_key(request, False)
                request.prio_hit = key + hit_delta
                request.prio_stamp = epoch
            base.append((-request.prio_base, request))
            bucket = buckets.get(request.row)
            if bucket is None:
                buckets[request.row] = bucket = []
            bucket.append((-request.prio_hit, request))
        heapify(base)
        for bucket in buckets.values():
            heapify(bucket)
        self._base_heaps[channel_id][bank_idx] = base
        self._row_buckets[channel_id][bank_idx] = buckets
        self._bank_epoch[channel_id][bank_idx] = epoch
        return base, buckets

    def note_interval(self) -> None:
        """An accuracy interval ended: per-core scheduler inputs may move.

        Bumps the policy's key epoch (criticality/urgency flags feed APS
        keys) and forces one APD rescan per bank (drop thresholds are
        re-picked from Table 6, so every cached drop deadline is suspect).
        """
        self.policy.notify_interval()
        if self.dropper is not None:
            for checks in self._drop_check:
                for bank_idx in range(len(checks)):
                    checks[bank_idx] = 0

    # -- scheduling ----------------------------------------------------------

    def tick(self, channel_id: int, now: int) -> Tuple[List[MemRequest], Optional[int]]:
        """Run one scheduling round on ``channel_id`` at cycle ``now``.

        Returns the list of requests serviced this round (each with
        ``completion`` and ``row_hit_service`` filled in) and the next
        cycle at which this channel should be ticked again, or ``None`` if
        it is idle until the next arrival.
        """
        return self._tick_impl(channel_id, now)

    def _tick_optimized(
        self, channel_id: int, now: int
    ) -> Tuple[List[MemRequest], Optional[int]]:
        channel = self.channels[channel_id]
        queues = self._queues[channel_id]
        policy = self.policy
        self.stats.rounds += 1
        if policy.needs_begin_tick:
            if self._census_demand is not None:
                policy.begin_tick_census(
                    self._census_demand[channel_id],
                    self._census_prefetch[channel_id],
                )
            else:
                policy.begin_tick(queues, now)
        epoch = policy.epoch
        dropper = self.dropper
        drop_checks = self._drop_check[channel_id]
        base_heaps = self._base_heaps[channel_id]
        row_buckets = self._row_buckets[channel_id]
        bank_epochs = self._bank_epoch[channel_id]
        banks = channel.banks
        # Next-wake time is folded into the scan: busy banks contribute
        # here, serviced banks contribute their new busy time below, and
        # overflow draining (which can repopulate any queue) falls back
        # to a full recomputation.
        wake = _NEVER
        drained = False
        # (key, bank_idx, request); keys are unique, so sorting the bare
        # tuples never falls through to comparing requests.
        winners: List[Tuple[int, int, MemRequest]] = []
        for bank_idx, queue in enumerate(queues):
            if not queue:
                continue
            bank = banks[bank_idx]
            busy_until = bank.busy_until
            if busy_until > now:
                if busy_until < wake:
                    wake = busy_until
                continue
            if dropper is not None and now >= drop_checks[bank_idx]:
                # Age-scan round: drop over-age prefetches, compact the
                # queue (fixing queue positions), and re-derive the bank's
                # earliest drop deadline from the survivors.  Stale heap
                # entries for dropped requests are discarded lazily.
                drop_deadline = dropper.drop_deadline
                next_check = _NEVER
                write = 0
                for request in queue:
                    if request.is_prefetch:
                        deadline = drop_deadline(request)
                        if now >= deadline:
                            request.qpos = -1
                            self._drop(request)
                            continue
                        if deadline < next_check:
                            next_check = deadline
                    request.qpos = write
                    queue[write] = request
                    write += 1
                del queue[write:]
                drop_checks[bank_idx] = next_check
                if not queue:
                    continue
            base = base_heaps[bank_idx]
            if bank_epochs[bank_idx] != epoch or not base:
                base, buckets = self._rebuild_bank(channel_id, bank_idx, queue, epoch)
            else:
                buckets = row_buckets[bank_idx]
            # Sift the base heap until its top is live: still queued,
            # stamped for this epoch, and carrying its current miss key.
            while True:
                neg_key, request = base[0]
                if request.qpos >= 0:
                    if request.prio_stamp == epoch:
                        if -neg_key == request.prio_base:
                            break
                    else:
                        # Promoted while queued under an older epoch:
                        # re-key, reinsert into both heaps, keep sifting.
                        heappop(base)
                        self._push_keyed(request, base, buckets, epoch)
                        continue
                heappop(base)
                if not base:
                    # Only stale entries remained; the queue is nonempty.
                    base, buckets = self._rebuild_bank(
                        channel_id, bank_idx, queue, epoch
                    )
            best_key = -base[0][0]
            best = base[0][1]
            open_row = bank.open_row
            if best.row == open_row:
                # The base top is itself an open-row request, so it is the
                # best open-row request (hit keys order them the same way)
                # and beats every other candidate under either key: take
                # it with its hit key and skip the bucket sift.
                winners.append((best.prio_hit, bank_idx, best))
                continue
            # The open-row bucket's best hit-keyed request beats the base
            # top whenever its key is >= — a hit key never compares below
            # the same request's miss key, so the base top never wins
            # while its own row is the open one.
            bucket = buckets.get(open_row)
            if bucket is not None:
                while bucket:
                    neg_key, request = bucket[0]
                    if request.qpos >= 0:
                        if request.prio_stamp == epoch:
                            if -neg_key == request.prio_hit:
                                if -neg_key >= best_key:
                                    best_key = -neg_key
                                    best = request
                                break
                        else:
                            heappop(bucket)
                            self._push_keyed(request, base, buckets, epoch)
                            continue
                    heappop(bucket)
                if not bucket:
                    del buckets[open_row]
            winners.append((best_key, bank_idx, best))
        if self._overflow[channel_id]:
            self._drain_overflow(channel_id)
            drained = True
        if len(winners) > 1:
            winners.sort(reverse=True)

        serviced: List[MemRequest] = []
        row_refs_ch = None if self._row_refs is None else self._row_refs[channel_id]
        stats = self.stats
        index_map = self._index[channel_id]
        occupancy = self._occupancy
        overflow = self._overflow[channel_id]
        census_demand = self._census_demand
        for key, bank_idx, request in winners:
            row = request.row
            state, completion = channel.service(bank_idx, row, now)
            queue = queues[bank_idx]
            # Swap-pop by tracked position (overflow draining, the only
            # mutation since selection, appends and so never moves it).
            pos = request.qpos
            last = queue.pop()
            if last is not request:
                queue[pos] = last
                last.qpos = pos
            request.qpos = -1
            base = base_heaps[bank_idx]
            if base and base[0][1] is request:
                heappop(base)
            bucket = row_buckets[bank_idx].get(row)
            if bucket and bucket[0][1] is request:
                heappop(bucket)
            # Inlined _remove(): unindex, release the row refcount (closed-
            # row policy precharges when the count hits zero), free the
            # buffer slot and let an overflowed demand in.
            if not request.is_write and index_map.get(request.line_addr) is request:
                del index_map[request.line_addr]
            if row_refs_ch is not None:
                refs = row_refs_ch[bank_idx]
                remaining = refs[row] - 1
                if remaining:
                    refs[row] = remaining
                else:
                    del refs[row]
            if census_demand is not None:
                if request.is_prefetch:
                    self._census_prefetch[channel_id][request.core_id] -= 1
                else:
                    census_demand[channel_id][request.core_id] -= 1
            occupancy[channel_id] -= 1
            if overflow:
                # Drain before the precharge decision: an admitted demand
                # may re-reference the just-released row.
                self._drain_overflow(channel_id)
                drained = True
            if row_refs_ch is not None and row not in row_refs_ch[bank_idx]:
                banks[bank_idx].precharge()
            request.service_start = now
            request.completion = completion
            row_hit = state is RowBufferState.HIT
            request.row_hit_service = row_hit
            if request.is_prefetch:
                stats.scheduled_prefetches += 1
                if row_hit:
                    stats.prefetch_row_hits += 1
            else:
                stats.scheduled_demands += 1
                if row_hit:
                    stats.demand_row_hits += 1
            serviced.append(request)
            if queue:
                # The serviced bank still has work: it wakes when this
                # service completes its bank occupancy.
                busy_until = banks[bank_idx].busy_until
                if busy_until < wake:
                    wake = busy_until

        if drained:
            # Draining can repopulate any bank queue (including ones that
            # were empty during the scan): recompute the wake time.
            wake = _NEVER
            bank_idx = 0
            for queue in queues:
                if queue:
                    busy_until = banks[bank_idx].busy_until
                    if busy_until < wake:
                        wake = busy_until
                bank_idx += 1
        return serviced, None if wake == _NEVER else wake

    def make_event_ticker(
        self, channel_id: int
    ) -> Callable[[int], Tuple[List[MemRequest], Optional[int]]]:
        """Build the event backend's fused scheduling round for one channel.

        A closure-specialized port of :meth:`_tick_optimized` for the
        skip-ahead backend (DESIGN.md §11): per-channel state — queues,
        selection heaps, drop deadlines, census splits, the channel's
        timing constants — is bound once per run instead of re-resolved
        every round, and :meth:`Channel.service` is inlined into the
        service loop.  Every behavioral line is a direct port of the
        shared tick (which remains the spec the heap backends run), and
        the byte-identity is certified by the golden-equivalence matrix
        and the differential fuzzer.
        """
        channel = self.channels[channel_id]
        banks = channel.banks
        queues = self._queues[channel_id]
        policy = self.policy
        stats = self.stats
        dropper = self.dropper
        drop_checks = self._drop_check[channel_id] if dropper is not None else None
        drop_deadline = dropper.drop_deadline if dropper is not None else None
        base_heaps = self._base_heaps[channel_id]
        row_buckets = self._row_buckets[channel_id]
        bank_epochs = self._bank_epoch[channel_id]
        index_map = self._index[channel_id]
        occupancy = self._occupancy
        overflow = self._overflow[channel_id]
        census_d = (
            self._census_demand[channel_id]
            if self._census_demand is not None
            else None
        )
        census_p = (
            self._census_prefetch[channel_id]
            if self._census_prefetch is not None
            else None
        )
        row_refs_ch = None if self._row_refs is None else self._row_refs[channel_id]
        push_keyed = self._push_keyed
        rebuild = self._rebuild_bank
        drop = self._drop
        drain = self._drain_overflow
        begin_census = (
            policy.begin_tick_census
            if policy.needs_begin_tick and census_d is not None
            else None
        )
        begin_scan = (
            policy.begin_tick
            if policy.needs_begin_tick and census_d is None
            else None
        )
        # Channel timing constants (Channel.service inlined below).
        burst = channel._burst
        post_burst = channel._post_burst
        hit_work = channel._hit[1]
        closed_work = channel._closed[1]
        conflict_work = channel._conflict[1]

        def tick_event(now):
            stats.rounds += 1
            if begin_census is not None:
                begin_census(census_d, census_p)
            elif begin_scan is not None:
                begin_scan(queues, now)
            epoch = policy.epoch
            wake = _NEVER
            drained = False
            winners = []
            for bank_idx, queue in enumerate(queues):
                if not queue:
                    continue
                bank = banks[bank_idx]
                busy_until = bank.busy_until
                if busy_until > now:
                    if busy_until < wake:
                        wake = busy_until
                    continue
                if drop_checks is not None and now >= drop_checks[bank_idx]:
                    next_check = _NEVER
                    write = 0
                    for request in queue:
                        if request.is_prefetch:
                            deadline = drop_deadline(request)
                            if now >= deadline:
                                request.qpos = -1
                                drop(request)
                                continue
                            if deadline < next_check:
                                next_check = deadline
                        request.qpos = write
                        queue[write] = request
                        write += 1
                    del queue[write:]
                    drop_checks[bank_idx] = next_check
                    if not queue:
                        continue
                base = base_heaps[bank_idx]
                if bank_epochs[bank_idx] != epoch or not base:
                    base, buckets = rebuild(channel_id, bank_idx, queue, epoch)
                else:
                    buckets = row_buckets[bank_idx]
                while True:
                    neg_key, request = base[0]
                    if request.qpos >= 0:
                        if request.prio_stamp == epoch:
                            if -neg_key == request.prio_base:
                                break
                        else:
                            heappop(base)
                            push_keyed(request, base, buckets, epoch)
                            continue
                    heappop(base)
                    if not base:
                        base, buckets = rebuild(channel_id, bank_idx, queue, epoch)
                best_key = -base[0][0]
                best = base[0][1]
                open_row = bank.open_row
                if best.row == open_row:
                    winners.append((best.prio_hit, bank_idx, best))
                    continue
                bucket = buckets.get(open_row)
                if bucket is not None:
                    while bucket:
                        neg_key, request = bucket[0]
                        if request.qpos >= 0:
                            if request.prio_stamp == epoch:
                                if -neg_key == request.prio_hit:
                                    if -neg_key >= best_key:
                                        best_key = -neg_key
                                        best = request
                                    break
                            else:
                                heappop(bucket)
                                push_keyed(request, base, buckets, epoch)
                                continue
                        heappop(bucket)
                    if not bucket:
                        del buckets[open_row]
                winners.append((best_key, bank_idx, best))
            if overflow:
                drain(channel_id)
                drained = True
            if len(winners) > 1:
                winners.sort(reverse=True)

            serviced = []
            for key, bank_idx, request in winners:
                row = request.row
                # Channel.service inlined (constants prebound): the bank
                # is occupied for the command sequence, then one burst on
                # the shared bus, granted in scheduling order.
                bank = banks[bank_idx]
                open_row = bank.open_row
                if open_row == row:
                    bank.hits += 1
                    row_hit = True
                    work = hit_work
                elif open_row is None:
                    bank.closed_accesses += 1
                    row_hit = False
                    work = closed_work
                    bank.open_row = row
                else:
                    bank.conflicts += 1
                    row_hit = False
                    work = conflict_work
                    bank.open_row = row
                data_ready = now + work
                bus = channel.bus_busy_until
                burst_end = (data_ready if data_ready > bus else bus) + burst
                channel.bus_busy_until = burst_end
                channel.bus_busy_cycles += burst
                completion = burst_end + post_burst
                bank.busy_until = burst_end
                bank.busy_cycles += burst_end - now
                channel.lines_transferred += 1

                queue = queues[bank_idx]
                pos = request.qpos
                last = queue.pop()
                if last is not request:
                    queue[pos] = last
                    last.qpos = pos
                request.qpos = -1
                base = base_heaps[bank_idx]
                if base and base[0][1] is request:
                    heappop(base)
                bucket = row_buckets[bank_idx].get(row)
                if bucket and bucket[0][1] is request:
                    heappop(bucket)
                if (
                    not request.is_write
                    and index_map.get(request.line_addr) is request
                ):
                    del index_map[request.line_addr]
                if row_refs_ch is not None:
                    refs = row_refs_ch[bank_idx]
                    remaining = refs[row] - 1
                    if remaining:
                        refs[row] = remaining
                    else:
                        del refs[row]
                if census_d is not None:
                    if request.is_prefetch:
                        census_p[request.core_id] -= 1
                    else:
                        census_d[request.core_id] -= 1
                occupancy[channel_id] -= 1
                if overflow:
                    drain(channel_id)
                    drained = True
                if row_refs_ch is not None and row not in row_refs_ch[bank_idx]:
                    bank.open_row = None
                request.service_start = now
                request.completion = completion
                request.row_hit_service = row_hit
                if request.is_prefetch:
                    stats.scheduled_prefetches += 1
                    if row_hit:
                        stats.prefetch_row_hits += 1
                else:
                    stats.scheduled_demands += 1
                    if row_hit:
                        stats.demand_row_hits += 1
                serviced.append(request)
                if queue:
                    busy_until = bank.busy_until
                    if busy_until < wake:
                        wake = busy_until

            if drained:
                wake = _NEVER
                bank_idx = 0
                for queue in queues:
                    if queue:
                        busy_until = banks[bank_idx].busy_until
                        if busy_until < wake:
                            wake = busy_until
                    bank_idx += 1
            return serviced, None if wake == _NEVER else wake

        return tick_event

    def _tick_reference(
        self, channel_id: int, now: int
    ) -> Tuple[List[MemRequest], Optional[int]]:
        """The naive scheduling round: every priority re-derived per tick.

        Kept as the differential baseline for the optimized path (and for
        benchmarking it): same policy semantics, same tie-breaks, none of
        the caching.
        """
        channel = self.channels[channel_id]
        queues = self._queues[channel_id]
        self.stats.rounds += 1
        self.policy.begin_tick(queues, now)
        winners: List[Tuple[Tuple, int, MemRequest]] = []
        for bank_idx, queue in enumerate(queues):
            if not queue:
                continue
            bank = channel.banks[bank_idx]
            if bank.busy_until > now:
                continue
            open_row = bank.open_row
            best = None
            best_key = None
            write_index = 0
            for request in queue:
                if self.dropper is not None and self.dropper.should_drop(request, now):
                    self._drop(request)
                    continue
                queue[write_index] = request
                write_index += 1
                key = self.policy.priority(request, request.row == open_row)
                if best_key is None or key > best_key:
                    best, best_key = request, key
            del queue[write_index:]
            if best is not None:
                winners.append((best_key, bank_idx, best))
        self._drain_overflow(channel_id)
        winners.sort(key=lambda item: item[0], reverse=True)

        serviced: List[MemRequest] = []
        for _key, bank_idx, request in winners:
            state, completion = channel.service(bank_idx, request.row, now)
            queues[bank_idx].remove(request)
            self._remove(request)
            request.service_start = now
            request.completion = completion
            request.row_hit_service = state is RowBufferState.HIT
            self._record_service(request, state)
            if not self.config.open_row_policy:
                self._maybe_precharge(channel_id, bank_idx, request.row)
            serviced.append(request)

        return serviced, self._next_wake(channel_id)

    def _drop(self, request: MemRequest) -> None:
        # Overflow draining is deferred to the end of the scan: admitting a
        # waiting demand here could append to the bank queue being iterated.
        self._unindex(request)
        self._unref_row(request)
        if self._census_prefetch is not None:
            # Only prefetches are ever dropped.
            self._census_prefetch[request.channel][request.core_id] -= 1
        self._occupancy[request.channel] -= 1
        self.dropper.record_drop(request)
        self.stats.dropped_prefetches += 1
        if self.on_drop is not None:
            self.on_drop(request)

    def _drain_overflow(self, channel_id: int) -> None:
        overflow = self._overflow[channel_id]
        while overflow and self._occupancy[channel_id] < self.config.request_buffer_size:
            self._admit(overflow.popleft())

    def _maybe_precharge(self, channel_id: int, bank_idx: int, row: int) -> None:
        """Closed-row policy, reference form: scan the queue for a row hit."""
        for request in self._queues[channel_id][bank_idx]:
            if request.row == row:
                return
        self.channels[channel_id].banks[bank_idx].precharge()

    def _maybe_precharge_refcounted(
        self, channel_id: int, bank_idx: int, row: int
    ) -> None:
        """Closed-row policy, O(1) form: consult the per-bank row refcounts."""
        if row not in self._row_refs[channel_id][bank_idx]:
            self.channels[channel_id].banks[bank_idx].precharge()

    def _record_service(self, request: MemRequest, state: RowBufferState) -> None:
        row_hit = state is RowBufferState.HIT
        if request.is_prefetch:
            self.stats.scheduled_prefetches += 1
            if row_hit:
                self.stats.prefetch_row_hits += 1
        else:
            self.stats.scheduled_demands += 1
            if row_hit:
                self.stats.demand_row_hits += 1

    def _next_wake(self, channel_id: int) -> Optional[int]:
        banks = self.channels[channel_id].banks
        wake = None
        bank_idx = 0
        for queue in self._queues[channel_id]:
            if queue:
                busy_until = banks[bank_idx].busy_until
                if wake is None or busy_until < wake:
                    wake = busy_until
            bank_idx += 1
        return wake

    # -- introspection -------------------------------------------------------

    def occupancy(self, channel_id: int) -> int:
        return self._occupancy[channel_id]

    def queued_requests(self, channel_id: int) -> List[MemRequest]:
        return [request for queue in self._queues[channel_id] for request in queue]

    def bank_queues(self, channel_id: int) -> List[List[MemRequest]]:
        """Per-bank queues of one channel (read-only; used by validation)."""
        return self._queues[channel_id]

    def overflow_requests(self, channel_id: int) -> List[MemRequest]:
        """Demands waiting in the overflow FIFO (used by validation)."""
        return list(self._overflow[channel_id])

    def indexed_requests(self, channel_id: int) -> Dict[int, MemRequest]:
        """Snapshot of the line-address index (used by validation)."""
        return dict(self._index[channel_id])

    def total_lines_transferred(self) -> int:
        return sum(channel.lines_transferred for channel in self.channels)
