"""DRAM controller engine: request buffers + channels + a scheduling policy.

The engine owns one request buffer per channel (organized as per-bank
queues plus a line-address index for demand matching) and performs the
scheduling rounds:

* a *tick* considers every bank that is free at the current cycle, lets the
  policy pick the best request per bank, and services the winners in
  global priority order (so the shared data bus is granted by priority);
* Adaptive Prefetch Dropping, when enabled, removes over-age prefetches
  during the same queue scan, invalidating their MSHR entries through the
  ``on_drop`` callback (paper §4.3–4.4);
* demand requests that find the buffer full wait in an overflow FIFO
  (modelling the back-pressure the paper describes in §6.1); prefetches
  that find it full are simply not sent — which is exactly the coverage
  loss the paper attributes to full request buffers.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.controller.apd import AdaptivePrefetchDropper
from repro.controller.policies import SchedulingPolicy
from repro.controller.request import MemRequest
from repro.dram.address import AddressMapping
from repro.dram.bank import RowBufferState
from repro.dram.channel import Channel
from repro.params import DRAMConfig


class ControllerStats:
    """Aggregate counters kept by the engine."""

    __slots__ = (
        "scheduled_demands",
        "scheduled_prefetches",
        "demand_row_hits",
        "prefetch_row_hits",
        "dropped_prefetches",
        "prefetches_rejected_full",
        "demand_overflows",
        "enqueued_total",
    )

    def __init__(self):
        self.scheduled_demands = 0
        self.scheduled_prefetches = 0
        self.demand_row_hits = 0
        self.prefetch_row_hits = 0
        self.dropped_prefetches = 0
        self.prefetches_rejected_full = 0
        self.demand_overflows = 0
        # Every request accepted into the controller (buffer or overflow
        # FIFO).  Closes the lifecycle conservation law audited by
        # repro.validate: enqueued == serviced + dropped + still queued.
        self.enqueued_total = 0

    @property
    def serviced_total(self) -> int:
        return self.scheduled_demands + self.scheduled_prefetches


class DRAMControllerEngine:
    """Schedules memory requests onto DRAM channels."""

    def __init__(
        self,
        config: DRAMConfig,
        policy: SchedulingPolicy,
        dropper: Optional[AdaptivePrefetchDropper] = None,
        on_drop: Optional[Callable[[MemRequest], None]] = None,
    ):
        self.config = config
        self.policy = policy
        self.dropper = dropper
        self.on_drop = on_drop
        self.mapping = AddressMapping(config)
        self.channels: List[Channel] = [
            Channel(config, channel_id) for channel_id in range(config.num_channels)
        ]
        banks = config.banks_per_channel
        self._queues: List[List[List[MemRequest]]] = [
            [[] for _ in range(banks)] for _ in range(config.num_channels)
        ]
        self._index: List[Dict[int, MemRequest]] = [
            {} for _ in range(config.num_channels)
        ]
        self._occupancy: List[int] = [0] * config.num_channels
        self._overflow: List[deque] = [deque() for _ in range(config.num_channels)]
        # Per-channel occupancy high-water marks since the telemetry
        # layer last sampled them (one compare per admission).
        self.peak_occupancy: List[int] = [0] * config.num_channels
        self.stats = ControllerStats()

    # -- admission ---------------------------------------------------------

    def build_request(
        self,
        line_addr: int,
        core_id: int,
        is_prefetch: bool,
        now: int,
        is_write: bool = False,
        is_runahead: bool = False,
    ) -> MemRequest:
        """Decode the address and construct a request (not yet enqueued)."""
        decoded = self.mapping.decode(line_addr)
        return MemRequest(
            line_addr=line_addr,
            core_id=core_id,
            is_prefetch=is_prefetch,
            arrival=now,
            channel=decoded.channel,
            bank=decoded.bank,
            row=decoded.row,
            is_write=is_write,
            is_runahead=is_runahead,
        )

    def enqueue_prefetch(self, request: MemRequest) -> bool:
        """Admit a prefetch; returns False (not sent) if the buffer is full."""
        channel = request.channel
        if self._occupancy[channel] >= self.config.request_buffer_size:
            self.stats.prefetches_rejected_full += 1
            return False
        self.stats.enqueued_total += 1
        self._admit(request)
        return True

    def enqueue_demand(self, request: MemRequest) -> None:
        """Admit a demand; overflows wait in FIFO order for a free entry."""
        channel = request.channel
        self.stats.enqueued_total += 1
        if self._occupancy[channel] >= self.config.request_buffer_size:
            self.stats.demand_overflows += 1
            self._overflow[channel].append(request)
        else:
            self._admit(request)

    def _admit(self, request: MemRequest) -> None:
        self._queues[request.channel][request.bank].append(request)
        # Writebacks stay out of the line-address index: they never match a
        # demand, and indexing them let a writeback to line X silently evict
        # the index entry of a queued read/prefetch to the same line, making
        # find_queued lie about in-buffer requests.
        if not request.is_write:
            self._index[request.channel][request.line_addr] = request
        self._occupancy[request.channel] += 1
        if self._occupancy[request.channel] > self.peak_occupancy[request.channel]:
            self.peak_occupancy[request.channel] = self._occupancy[request.channel]

    def _unindex(self, request: MemRequest) -> None:
        """Drop ``request`` from the line-address index (identity-guarded)."""
        if request.is_write:
            return
        index = self._index[request.channel]
        if index.get(request.line_addr) is request:
            del index[request.line_addr]

    def _remove(self, request: MemRequest) -> None:
        self._unindex(request)
        self._occupancy[request.channel] -= 1
        self._drain_overflow(request.channel)

    # -- demand matching -----------------------------------------------------

    def find_queued(self, line_addr: int, channel: int) -> Optional[MemRequest]:
        """Look up an in-buffer read/prefetch by line address (for promotion).

        Writebacks are not indexed — a queued writeback to the same line
        never shadows the read/prefetch entry.
        """
        return self._index[channel].get(line_addr)

    # -- scheduling ----------------------------------------------------------

    def tick(self, channel_id: int, now: int) -> Tuple[List[MemRequest], Optional[int]]:
        """Run one scheduling round on ``channel_id`` at cycle ``now``.

        Returns the list of requests serviced this round (each with
        ``completion`` and ``row_hit_service`` filled in) and the next
        cycle at which this channel should be ticked again, or ``None`` if
        it is idle until the next arrival.
        """
        channel = self.channels[channel_id]
        queues = self._queues[channel_id]
        self.policy.begin_tick(queues, now)
        winners: List[Tuple[Tuple, int, MemRequest]] = []
        for bank_idx, queue in enumerate(queues):
            if not queue:
                continue
            bank = channel.banks[bank_idx]
            if bank.busy_until > now:
                continue
            open_row = bank.open_row
            best = None
            best_key = None
            write_index = 0
            for request in queue:
                if self.dropper is not None and self.dropper.should_drop(request, now):
                    self._drop(request)
                    continue
                queue[write_index] = request
                write_index += 1
                key = self.policy.priority(request, request.row == open_row)
                if best_key is None or key > best_key:
                    best, best_key = request, key
            del queue[write_index:]
            if best is not None:
                winners.append((best_key, bank_idx, best))
        self._drain_overflow(channel_id)
        winners.sort(key=lambda item: item[0], reverse=True)

        serviced: List[MemRequest] = []
        for _key, bank_idx, request in winners:
            state, completion = channel.service(bank_idx, request.row, now)
            queues[bank_idx].remove(request)
            self._remove(request)
            request.service_start = now
            request.completion = completion
            request.row_hit_service = state is RowBufferState.HIT
            self._record_service(request, state)
            if not self.config.open_row_policy:
                self._maybe_precharge(channel_id, bank_idx, request.row)
            serviced.append(request)

        next_wake = self._next_wake(channel_id)
        return serviced, next_wake

    def _drop(self, request: MemRequest) -> None:
        # Overflow draining is deferred to the end of the scan: admitting a
        # waiting demand here could append to the bank queue being iterated.
        self._unindex(request)
        self._occupancy[request.channel] -= 1
        self.dropper.record_drop(request)
        self.stats.dropped_prefetches += 1
        if self.on_drop is not None:
            self.on_drop(request)

    def _drain_overflow(self, channel_id: int) -> None:
        overflow = self._overflow[channel_id]
        while overflow and self._occupancy[channel_id] < self.config.request_buffer_size:
            self._admit(overflow.popleft())

    def _maybe_precharge(self, channel_id: int, bank_idx: int, row: int) -> None:
        """Closed-row policy: precharge when no queued row-hit remains."""
        for request in self._queues[channel_id][bank_idx]:
            if request.row == row:
                return
        self.channels[channel_id].banks[bank_idx].precharge()

    def _record_service(self, request: MemRequest, state: RowBufferState) -> None:
        row_hit = state is RowBufferState.HIT
        if request.is_prefetch:
            self.stats.scheduled_prefetches += 1
            if row_hit:
                self.stats.prefetch_row_hits += 1
        else:
            self.stats.scheduled_demands += 1
            if row_hit:
                self.stats.demand_row_hits += 1

    def _next_wake(self, channel_id: int) -> Optional[int]:
        channel = self.channels[channel_id]
        times = [
            channel.banks[bank_idx].busy_until
            for bank_idx, queue in enumerate(self._queues[channel_id])
            if queue
        ]
        if not times:
            return None
        return min(times)

    # -- introspection -------------------------------------------------------

    def occupancy(self, channel_id: int) -> int:
        return self._occupancy[channel_id]

    def queued_requests(self, channel_id: int) -> List[MemRequest]:
        return [request for queue in self._queues[channel_id] for request in queue]

    def bank_queues(self, channel_id: int) -> List[List[MemRequest]]:
        """Per-bank queues of one channel (read-only; used by validation)."""
        return self._queues[channel_id]

    def overflow_requests(self, channel_id: int) -> List[MemRequest]:
        """Demands waiting in the overflow FIFO (used by validation)."""
        return list(self._overflow[channel_id])

    def indexed_requests(self, channel_id: int) -> Dict[int, MemRequest]:
        """Snapshot of the line-address index (used by validation)."""
        return dict(self._index[channel_id])

    def total_lines_transferred(self) -> int:
        return sum(channel.lines_transferred for channel in self.channels)
