"""The Prefetch-Aware DRAM Controller and the rigid baselines.

Components (paper §4, Figure 3):

* :class:`~repro.controller.request.MemRequest` — one memory-request-buffer
  entry carrying the C/RH/U/RANK/FCFS priority fields plus the P/ID/AGE
  information used by APD (Figures 5 and 18).
* :class:`~repro.controller.accuracy.PrefetchAccuracyTracker` — per-core
  PSC/PUC counters and the PAR register, updated every interval (§4.1).
* Scheduling policies in :mod:`~repro.controller.policies` and
  :mod:`~repro.controller.aps` — FR-FCFS demand-first /
  demand-prefetch-equal / prefetch-first, and Adaptive Prefetch Scheduling
  with optional urgency and PAR-BS-style ranking (§4.2, §6.5).
* :class:`~repro.controller.apd.AdaptivePrefetchDropper` — drops prefetches
  older than a dynamic, accuracy-keyed threshold (§4.3, Table 6).
* :class:`~repro.controller.engine.DRAMControllerEngine` — ties channels,
  buffers, policy and dropper together.
* :mod:`~repro.controller.cost` — the hardware storage-cost model of
  Tables 1 and 2.
"""

from repro.controller.accuracy import PrefetchAccuracyTracker
from repro.controller.apd import AdaptivePrefetchDropper
from repro.controller.aps import AdaptivePrefetchScheduler
from repro.controller.cost import padc_storage_cost
from repro.controller.engine import DRAMControllerEngine
from repro.controller.policies import (
    DemandFirstPolicy,
    DemandPrefetchEqualPolicy,
    PrefetchFirstPolicy,
    make_policy,
)
from repro.controller.request import MemRequest

__all__ = [
    "MemRequest",
    "PrefetchAccuracyTracker",
    "AdaptivePrefetchDropper",
    "AdaptivePrefetchScheduler",
    "DemandFirstPolicy",
    "DemandPrefetchEqualPolicy",
    "PrefetchFirstPolicy",
    "make_policy",
    "DRAMControllerEngine",
    "padc_storage_cost",
]
