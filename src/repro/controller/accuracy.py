"""Per-core prefetch accuracy measurement (paper §4.1).

For every core the tracker keeps:

* **PSC** (Prefetch Sent Counter) — incremented when a prefetch request is
  sent to the memory request buffer;
* **PUC** (Prefetch Used Counter) — incremented when a prefetched cache
  line is hit by a demand, or when a demand matches a prefetch request
  still in the memory request buffer;
* **PAR** (Prefetch Accuracy Register) — PUC/PSC, recomputed at the end of
  every ``interval`` cycles, after which PSC and PUC reset.

If no prefetches were sent during an interval the previous PAR value is
retained (there is no new evidence to update the estimate with).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


class PrefetchAccuracyTracker:
    """PSC/PUC/PAR per core, plus derived criticality/urgency flags."""

    def __init__(
        self,
        num_cores: int,
        interval: int = 100_000,
        promotion_threshold: float = 0.85,
        drop_thresholds: Sequence[Tuple[float, int]] = (
            (0.10, 100),
            (0.30, 1_500),
            (0.70, 50_000),
            (1.01, 100_000),
        ),
        initial_accuracy: float = 1.0,
    ):
        self.num_cores = num_cores
        self.interval = interval
        self.promotion_threshold = promotion_threshold
        self.drop_thresholds = tuple(drop_thresholds)
        self.psc: List[int] = [0] * num_cores
        self.puc: List[int] = [0] * num_cores
        self.par: List[float] = [initial_accuracy] * num_cores
        # Cached per-core decisions, refreshed at interval boundaries so the
        # scheduler reads a flag instead of re-comparing floats per request.
        self.prefetch_critical: List[bool] = [
            initial_accuracy >= promotion_threshold
        ] * num_cores
        self.drop_threshold: List[int] = [
            self._lookup_drop_threshold(initial_accuracy)
        ] * num_cores
        self.history: List[List[float]] = [[] for _ in range(num_cores)]

    def _lookup_drop_threshold(self, accuracy: float) -> int:
        for upper, cycles in self.drop_thresholds:
            if accuracy < upper:
                return cycles
        return self.drop_thresholds[-1][1]

    def record_sent(self, core_id: int) -> None:
        """A prefetch entered the memory request buffer (PSC += 1)."""
        self.psc[core_id] += 1

    def record_used(self, core_id: int) -> None:
        """A prefetch proved useful (PUC += 1)."""
        self.puc[core_id] += 1

    def end_interval(self) -> None:
        """Recompute PAR for every core and reset the counters."""
        for core in range(self.num_cores):
            sent = self.psc[core]
            if sent:
                self.par[core] = self.puc[core] / sent
            self.history[core].append(self.par[core])
            self.psc[core] = 0
            self.puc[core] = 0
            accuracy = self.par[core]
            self.prefetch_critical[core] = accuracy >= self.promotion_threshold
            self.drop_threshold[core] = self._lookup_drop_threshold(accuracy)

    # -- scheduler-facing queries -----------------------------------------

    def is_critical(self, core_id: int, is_prefetch: bool) -> bool:
        """C bit: demands always; prefetches only from accurate cores."""
        return (not is_prefetch) or self.prefetch_critical[core_id]

    def is_urgent(self, core_id: int, is_prefetch: bool) -> bool:
        """U bit: demands from cores whose prefetcher is inaccurate."""
        return (not is_prefetch) and not self.prefetch_critical[core_id]
