"""Adaptive Prefetch Scheduling (paper §4.2 Rule 1, §6.5 Rule 2).

Priority order (highest first):

1. **Critical** (C) — demands, and prefetches from cores whose measured
   accuracy is at or above ``promotion_threshold``.
2. **Row-hit** (RH).
3. **Urgent** (U) — demands from cores with *low* prefetch accuracy, so
   that they are not starved by the flood of critical requests coming from
   accurate-prefetcher cores.
4. **Rank** (optional, Rule 2) — PAR-BS-style shortest-job-first: critical
   requests from the core with the fewest outstanding critical requests
   win.  Non-critical requests all carry the lowest rank (0).
5. **FCFS** — oldest first.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.controller.accuracy import PrefetchAccuracyTracker
from repro.controller.policies import SchedulingPolicy
from repro.controller.request import MemRequest


class AdaptivePrefetchScheduler(SchedulingPolicy):
    """APS: accuracy-adaptive demand/prefetch prioritization."""

    def __init__(
        self,
        tracker: PrefetchAccuracyTracker,
        use_urgency: bool = True,
        use_ranking: bool = False,
    ):
        self.tracker = tracker
        self.use_urgency = use_urgency
        self.use_ranking = use_ranking
        self._rank: List[int] = [0] * tracker.num_cores
        self.name = "aps" + ("-rank" if use_ranking else "")

    def begin_tick(self, queues, now: int) -> None:
        """Recompute per-core ranks from outstanding critical requests.

        Called once per scheduling round.  A core with fewer outstanding
        critical requests gets a higher rank value (shortest job first).
        """
        if not self.use_ranking:
            return
        critical = self.tracker.prefetch_critical
        counts = [0] * self.tracker.num_cores
        for queue in queues:
            for request in queue:
                if not request.is_prefetch or critical[request.core_id]:
                    counts[request.core_id] += 1
        self._rank = [-count for count in counts]

    def priority(self, request: MemRequest, row_hit: bool) -> Tuple:
        core = request.core_id
        is_prefetch = request.is_prefetch
        critical = (not is_prefetch) or self.tracker.prefetch_critical[core]
        urgent = (
            self.use_urgency
            and not is_prefetch
            and not self.tracker.prefetch_critical[core]
        )
        if self.use_ranking:
            rank = self._rank[core] if critical else 0
            return (critical, row_hit, urgent, rank, -request.arrival)
        return (critical, row_hit, urgent, -request.arrival)
