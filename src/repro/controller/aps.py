"""Adaptive Prefetch Scheduling (paper §4.2 Rule 1, §6.5 Rule 2).

Priority order (highest first):

1. **Critical** (C) — demands, and prefetches from cores whose measured
   accuracy is at or above ``promotion_threshold``.
2. **Row-hit** (RH).
3. **Urgent** (U) — demands from cores with *low* prefetch accuracy, so
   that they are not starved by the flood of critical requests coming from
   accurate-prefetcher cores.
4. **Rank** (optional, Rule 2) — PAR-BS-style shortest-job-first: critical
   requests from the core with the fewest outstanding critical requests
   win.  Non-critical requests all carry the lowest rank (0).
5. **FCFS** — oldest first (admission order breaks exact ties).

Epoch discipline (DESIGN.md §10): the C/U bits read the tracker's
per-core criticality flags, which only move at accuracy-interval
boundaries — ``notify_interval`` bumps the epoch then.  With ranking
enabled the per-core rank vector is recomputed every round, but stored as
dense order-ranks so the epoch is bumped only when the cores' relative
order actually changed — cached keys survive the (common) rounds where
the census shifts without reordering the cores.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.controller.accuracy import PrefetchAccuracyTracker
from repro.controller.cost import FCFS_BITS, RANK_BIAS, RANK_BITS
from repro.controller.policies import SchedulingPolicy
from repro.controller.request import MemRequest


class AdaptivePrefetchScheduler(SchedulingPolicy):
    """APS: accuracy-adaptive demand/prefetch prioritization."""

    def __init__(
        self,
        tracker: PrefetchAccuracyTracker,
        use_urgency: bool = True,
        use_ranking: bool = False,
    ):
        super().__init__()
        self.tracker = tracker
        self.use_urgency = use_urgency
        self.use_ranking = use_ranking
        self.needs_begin_tick = use_ranking
        # The census fast path (engine-maintained per-core queue counts)
        # carries every input Rule 2 needs; see begin_tick_census.
        self.census_based = use_ranking
        self._rank: List[int] = [0] * tracker.num_cores
        # Last critical-census vector ranks were derived from: rounds
        # where the census is unchanged (common at small scales — many
        # rounds service nothing or rearrange nothing) skip the dense-
        # rank derivation and its sort entirely.
        self._counts: Optional[List[int]] = None
        self.name = "aps" + ("-rank" if use_ranking else "")
        # RH is flag bit 1; with ranking the flags sit above the rank field.
        self.hit_delta = (
            (2 << RANK_BITS) << FCFS_BITS if use_ranking else 2 << FCFS_BITS
        )

    def notify_interval(self) -> None:
        """PAR recomputation may have flipped criticality: drop all keys."""
        self.epoch += 1

    def begin_tick(self, queues, now: int) -> None:
        """Recompute per-core ranks from outstanding critical requests.

        Called once per scheduling round.  A core with fewer outstanding
        critical requests gets a higher rank value (shortest job first).
        """
        if not self.use_ranking:
            return
        critical = self.tracker.prefetch_critical
        counts = [0] * self.tracker.num_cores
        for queue in queues:
            for request in queue:
                if not request.is_prefetch or critical[request.core_id]:
                    counts[request.core_id] += 1
        self._update_ranks(counts)

    def begin_tick_census(self, demand_counts, prefetch_counts) -> None:
        """Census form of :meth:`begin_tick`: same ranks, no queue scan.

        The engine maintains per-core counts of queued demands and queued
        prefetches for the channel being ticked; a core's critical count
        is the demand count plus — only while its prefetcher measures
        accurate — the prefetch count.  Identical to the scan by
        construction: the scan's predicate ``not is_prefetch or
        critical[core]`` partitions the queue into exactly these two
        splits.  O(cores) per round, and rounds whose census is unchanged
        skip the rank derivation too — this is what fixed the padc-rank
        tiny-scale regression, where per-round scans of long queues
        dominated the optimized path's win.
        """
        critical = self.tracker.prefetch_critical
        counts = [
            d + p if c else d
            for d, p, c in zip(demand_counts, prefetch_counts, critical)
        ]
        if counts == self._counts:
            return
        self._update_ranks(counts)

    def _update_ranks(self, counts: List[int]) -> None:
        if counts == self._counts:
            return
        self._counts = counts
        # Only the cores' *relative* order matters: the rank field is one
        # level of a lexicographic comparison, so any monotone remapping
        # of -count selects identically.  Dense order-ranks (fewest
        # outstanding -> 0, next distinct count -> -1, ...) change only
        # when the core ordering changes, not on every serviced request —
        # keeping cached keys valid across the common rounds where the
        # census shifts but the ordering does not.
        order = {count: -i for i, count in enumerate(sorted(set(counts)))}
        rank = [order[count] for count in counts]
        if rank != self._rank:
            self._rank = rank
            self.epoch += 1

    def priority(self, request: MemRequest, row_hit: bool) -> Tuple:
        core = request.core_id
        is_prefetch = request.is_prefetch
        critical = (not is_prefetch) or self.tracker.prefetch_critical[core]
        urgent = (
            self.use_urgency
            and not is_prefetch
            and not self.tracker.prefetch_critical[core]
        )
        if self.use_ranking:
            rank = self._rank[core] if critical else 0
            return (critical, row_hit, urgent, rank, -request.arrival, -request.seq)
        return (critical, row_hit, urgent, -request.arrival, -request.seq)

    def priority_key(self, request: MemRequest, row_hit: bool) -> int:
        core = request.core_id
        is_prefetch = request.is_prefetch
        critical = (not is_prefetch) or self.tracker.prefetch_critical[core]
        urgent = (
            self.use_urgency
            and not is_prefetch
            and not self.tracker.prefetch_critical[core]
        )
        flags = (critical << 2) | (row_hit << 1) | urgent
        if self.use_ranking:
            # Dense order-ranks sit in [-(cores-1), 0]; biased they fit
            # the field.  Rank only ever compares within one (C, RH, U)
            # flag group — critical vs non-critical differ in the C bit
            # above this field — so non-critical requests sharing the
            # bias value with a rank-0 critical core is harmless.
            field = (self._rank[core] + RANK_BIAS) if critical else RANK_BIAS
            flags = (flags << RANK_BITS) | field
        return (flags << FCFS_BITS) | request.fcfs_key
