"""Rigid DRAM scheduling policies (paper §1, §3).

All policies are variants of FR-FCFS [27].  A policy turns a request into a
priority tuple; the engine services the highest tuple among requests whose
bank is free.  Tuples compare element-wise, larger wins, and every tuple
ends with ``-arrival`` so that ties fall back to oldest-first (FCFS).

* ``demand-first`` — demands over prefetches, then row-hit, then FCFS.
  This is the paper's baseline.
* ``demand-prefetch-equal`` — pure FR-FCFS: row-hit first, then FCFS,
  ignoring the P bit.
* ``prefetch-first`` — prefetches over demands (the worst-performing rigid
  policy, footnote 2).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.controller.accuracy import PrefetchAccuracyTracker
from repro.controller.request import MemRequest


class SchedulingPolicy:
    """Base class: maps a request to a comparable priority tuple."""

    name = "abstract"

    def begin_tick(self, queues, now: int) -> None:
        """Hook called once per scheduling round (used by ranking)."""

    def priority(self, request: MemRequest, row_hit: bool) -> Tuple:
        raise NotImplementedError


class DemandFirstPolicy(SchedulingPolicy):
    """Prioritize demands over prefetches, then row-hits, then oldest."""

    name = "demand-first"

    def priority(self, request: MemRequest, row_hit: bool) -> Tuple:
        return (not request.is_prefetch, row_hit, -request.arrival)


class DemandPrefetchEqualPolicy(SchedulingPolicy):
    """Pure FR-FCFS: row-hits first, then oldest, P bit ignored."""

    name = "demand-prefetch-equal"

    def priority(self, request: MemRequest, row_hit: bool) -> Tuple:
        return (row_hit, -request.arrival)


class PrefetchFirstPolicy(SchedulingPolicy):
    """Prioritize prefetches over demands (for completeness, footnote 2)."""

    name = "prefetch-first"

    def priority(self, request: MemRequest, row_hit: bool) -> Tuple:
        return (request.is_prefetch, row_hit, -request.arrival)


def make_policy(
    name: str,
    tracker: Optional[PrefetchAccuracyTracker] = None,
    use_urgency: bool = True,
    use_ranking: bool = False,
    num_cores: int = 1,
) -> SchedulingPolicy:
    """Instantiate a scheduling policy by name.

    ``"aps"`` and ``"padc"`` both use Adaptive Prefetch Scheduling and
    require an accuracy ``tracker`` (APD is layered on separately by the
    engine for ``"padc"``).  ``"demand-first-apd"`` schedules demand-first
    but still runs the dropper (used by the §6.12 comparison).
    ``"no-pref"`` shares demand-first because with the prefetcher disabled
    every FR-FCFS variant behaves identically.
    """
    from repro.controller.aps import AdaptivePrefetchScheduler

    if name in ("demand-first", "no-pref", "demand-first-apd"):
        return DemandFirstPolicy()
    if name == "demand-prefetch-equal":
        return DemandPrefetchEqualPolicy()
    if name == "prefetch-first":
        return PrefetchFirstPolicy()
    if name == "parbs":
        from repro.controller.batch import BatchScheduler

        return BatchScheduler(num_cores)
    if name in ("aps", "padc"):
        if tracker is None:
            raise ValueError(f"policy {name!r} requires an accuracy tracker")
        return AdaptivePrefetchScheduler(
            tracker, use_urgency=use_urgency, use_ranking=use_ranking
        )
    # Unknown or alias spelling: resolve through the shared policy table
    # so the error (did-you-mean included) matches every other surface;
    # aliases recurse with their canonical name and bundled knobs.
    from repro.params import resolve_policy

    entry = resolve_policy(name)
    knobs = dict(entry.padc)
    return make_policy(
        entry.policy,
        tracker=tracker,
        use_urgency=knobs.get("use_urgency", use_urgency),
        use_ranking=knobs.get("use_ranking", use_ranking),
        num_cores=num_cores,
    )
