"""Rigid DRAM scheduling policies (paper §1, §3).

All policies are variants of FR-FCFS [27].  A policy exposes the same
priority order two ways:

* :meth:`SchedulingPolicy.priority` — the *reference* form: a comparison
  tuple rebuilt from scratch on every call.  Tuples compare element-wise,
  larger wins, and every tuple ends with ``(-arrival, -seq)`` so that
  ties fall back to oldest-first (FCFS) and then to admission order.
* :meth:`SchedulingPolicy.priority_key` — the *packed* form: the same
  order collapsed into one integer (see :mod:`repro.controller.cost` for
  the bit layout).  The engine caches packed keys on the requests and
  only recomputes them when :attr:`epoch` or the bank's open-row
  generation moves, which is what makes the scheduling hot path
  allocation-free (DESIGN.md §10).

The two forms are totally ordered identically — the golden-equivalence
tests pin ``priority_key`` to ``priority`` policy by policy.

* ``demand-first`` — demands over prefetches, then row-hit, then FCFS.
  This is the paper's baseline.
* ``demand-prefetch-equal`` (alias ``frfcfs``) — pure FR-FCFS: row-hit
  first, then FCFS, ignoring the P bit.
* ``prefetch-first`` — prefetches over demands (the worst-performing rigid
  policy, footnote 2).
* ``fcfs`` — strict oldest-first, ignoring even the row buffer (the
  pre-FR-FCFS baseline; useful as a lower bound in scheduler sweeps).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.controller.accuracy import PrefetchAccuracyTracker
from repro.controller.cost import FCFS_BITS
from repro.controller.request import MemRequest


class SchedulingPolicy:
    """Base class: maps a request to a comparable priority (tuple or int).

    ``epoch`` stamps the validity of every packed key cached on a request:
    a policy bumps it whenever *any* input to ``priority_key`` other than
    the request itself or the bank's open row changes (accuracy-interval
    boundaries, rank recomputations, batch formation).  Per-request
    changes (promotion) instead invalidate that request's own cache.
    """

    name = "abstract"

    #: True for policies whose ``begin_tick`` does real work; the engine
    #: skips the call (one attribute load instead of a method call) for
    #: the rigid policies on the hot path.
    needs_begin_tick = False

    #: True when ``begin_tick``'s only input from the queues is the
    #: per-core count of queued demands/prefetches.  The engine then
    #: maintains those counts incrementally and calls
    #: :meth:`begin_tick_census` instead of handing over the queues —
    #: O(cores) per round instead of O(queued requests).  Policies that
    #: read more than the census (PAR-BS batch marking reads admission
    #: order) keep the queue scan.
    census_based = False

    def begin_tick_census(self, demand_counts, prefetch_counts) -> None:
        """Census form of :meth:`begin_tick` (see :attr:`census_based`)."""
        raise NotImplementedError

    #: ``priority_key(r, True) - priority_key(r, False)``: the row-hit
    #: bit sits at a fixed position in every key layout, so the hit
    #: variant is the miss variant plus a per-policy constant.  The
    #: engine computes one key per request and derives the other with a
    #: single add (DESIGN.md §10).
    hit_delta = 0

    def __init__(self):
        self.epoch = 0

    def begin_tick(self, queues, now: int) -> None:
        """Hook called once per scheduling round (used by ranking)."""

    def notify_interval(self) -> None:
        """An accuracy interval ended; invalidate keys if the policy cares."""

    def priority(self, request: MemRequest, row_hit: bool) -> Tuple:
        raise NotImplementedError

    def priority_key(self, request: MemRequest, row_hit: bool) -> int:
        raise NotImplementedError


class FCFSPolicy(SchedulingPolicy):
    """Strict first-come-first-served: age decides, row buffer ignored."""

    name = "fcfs"

    def priority(self, request: MemRequest, row_hit: bool) -> Tuple:
        return (-request.arrival, -request.seq)

    def priority_key(self, request: MemRequest, row_hit: bool) -> int:
        return request.fcfs_key


class DemandFirstPolicy(SchedulingPolicy):
    """Prioritize demands over prefetches, then row-hits, then oldest."""

    name = "demand-first"
    hit_delta = 1 << FCFS_BITS

    def priority(self, request: MemRequest, row_hit: bool) -> Tuple:
        return (not request.is_prefetch, row_hit, -request.arrival, -request.seq)

    def priority_key(self, request: MemRequest, row_hit: bool) -> int:
        flags = ((not request.is_prefetch) << 1) | row_hit
        return (flags << FCFS_BITS) | request.fcfs_key


class DemandPrefetchEqualPolicy(SchedulingPolicy):
    """Pure FR-FCFS: row-hits first, then oldest, P bit ignored."""

    name = "demand-prefetch-equal"
    hit_delta = 1 << FCFS_BITS

    def priority(self, request: MemRequest, row_hit: bool) -> Tuple:
        return (row_hit, -request.arrival, -request.seq)

    def priority_key(self, request: MemRequest, row_hit: bool) -> int:
        return (row_hit << FCFS_BITS) | request.fcfs_key


class PrefetchFirstPolicy(SchedulingPolicy):
    """Prioritize prefetches over demands (for completeness, footnote 2)."""

    name = "prefetch-first"
    hit_delta = 1 << FCFS_BITS

    def priority(self, request: MemRequest, row_hit: bool) -> Tuple:
        return (request.is_prefetch, row_hit, -request.arrival, -request.seq)

    def priority_key(self, request: MemRequest, row_hit: bool) -> int:
        flags = (request.is_prefetch << 1) | row_hit
        return (flags << FCFS_BITS) | request.fcfs_key


def make_policy(
    name: str,
    tracker: Optional[PrefetchAccuracyTracker] = None,
    use_urgency: bool = True,
    use_ranking: bool = False,
    num_cores: int = 1,
) -> SchedulingPolicy:
    """Instantiate a scheduling policy by name.

    ``"aps"`` and ``"padc"`` both use Adaptive Prefetch Scheduling and
    require an accuracy ``tracker`` (APD is layered on separately by the
    engine for ``"padc"``).  ``"demand-first-apd"`` schedules demand-first
    but still runs the dropper (used by the §6.12 comparison).
    ``"no-pref"`` shares demand-first because with the prefetcher disabled
    every FR-FCFS variant behaves identically.
    """
    from repro.controller.aps import AdaptivePrefetchScheduler

    if name in ("demand-first", "no-pref", "demand-first-apd"):
        return DemandFirstPolicy()
    if name == "demand-prefetch-equal":
        return DemandPrefetchEqualPolicy()
    if name == "prefetch-first":
        return PrefetchFirstPolicy()
    if name == "fcfs":
        return FCFSPolicy()
    if name == "parbs":
        from repro.controller.batch import BatchScheduler

        return BatchScheduler(num_cores)
    if name in ("aps", "padc"):
        if tracker is None:
            raise ValueError(f"policy {name!r} requires an accuracy tracker")
        return AdaptivePrefetchScheduler(
            tracker, use_urgency=use_urgency, use_ranking=use_ranking
        )
    # Unknown or alias spelling: resolve through the shared policy table
    # so the error (did-you-mean included) matches every other surface;
    # aliases recurse with their canonical name and bundled knobs.
    from repro.params import resolve_policy

    entry = resolve_policy(name)
    knobs = dict(entry.padc)
    return make_policy(
        entry.policy,
        tracker=tracker,
        use_urgency=knobs.get("use_urgency", use_urgency),
        use_ranking=knobs.get("use_ranking", use_ranking),
        num_cores=num_cores,
    )
