"""Hardware storage cost model of PADC (paper §4.4, Tables 1 and 2).

The cost is pure combinatorics over the machine shape:

* prefetch accuracy measurement: a P bit per cache line and per request
  buffer entry, plus 16-bit PSC, 16-bit PUC and 8-bit PAR per core;
* APS: a U bit per request buffer entry;
* APD: core ID (log2 N cores) and a 10-bit AGE field per entry;
* ranking (optional, §6.5): a log2(N)-bit RANK per entry plus a critical-
  request counter per core.

For the paper's 4-core system (512KB L2 per core → 8192 lines, 128-entry
request buffer) this yields 34,720 bits ≈ 4.25KB, and 1,824 bits if the
caches already implement prefetch bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

# -- packed priority-key layout (DESIGN.md §10) ---------------------------
#
# The scheduler caches each request's priority as ONE integer instead of
# re-building a comparison tuple every round, mirroring how the hardware
# comparator tree of Figure 18 concatenates the C/RH/U/RANK/AGE fields
# into a single priority word.  Every policy packs its flag bits above a
# shared FCFS word so that integer comparison reproduces tuple comparison
# exactly:
#
#     | policy flags (C, RH, U, RANK, ...) | 40-bit ~arrival | 28-bit ~seq |
#
# ``~x`` denotes the complement ``LIMIT - x`` — larger packed values win,
# so older requests (smaller arrival/seq) must encode higher.  The
# trailing sequence number is a tie-break the tuple path shares: it makes
# every key unique, which is what licenses the engine's order-scrambling
# swap-pop removal (selection no longer depends on queue order).
#
# Field widths are deliberately generous: 2**40 cycles is ~4.6 hours of
# simulated time at the model's 4 GHz clock and 2**28 admissions is two
# orders of magnitude above the largest campaign run to date.

ARRIVAL_BITS = 40
SEQ_BITS = 28
FCFS_BITS = ARRIVAL_BITS + SEQ_BITS
ARRIVAL_LIMIT = (1 << ARRIVAL_BITS) - 1
SEQ_LIMIT = (1 << SEQ_BITS) - 1

# Rank fields (APS Rule 2 / PAR-BS shortest-job-first) hold a negated
# outstanding-request count, biased to keep the packed field non-negative.
# Counts are bounded by the request buffer (<= 256 entries at 8 cores,
# and nobody configures anywhere near 32k), far below the bias; field
# value 0 is reserved as "below every real rank" (PAR-BS's unranked-core
# sentinel).
RANK_BITS = 16
RANK_BIAS = 1 << (RANK_BITS - 1)


def pack_fcfs(arrival: int, seq: int) -> int:
    """The shared low word: oldest-first, admission order as tie-break."""
    return ((ARRIVAL_LIMIT - arrival) << SEQ_BITS) | (SEQ_LIMIT - seq)


def key_layout_summary() -> Dict[str, int]:
    """Bit budget of the packed priority key (for docs and the bench CLI)."""
    return {
        "arrival_bits": ARRIVAL_BITS,
        "seq_bits": SEQ_BITS,
        "rank_bits": RANK_BITS,
        "fcfs_bits": FCFS_BITS,
        "max_flag_bits": 3 + RANK_BITS,  # parbs: M, D, RH + rank field
        "total_bits_worst_case": FCFS_BITS + 3 + RANK_BITS,
    }


@dataclass(frozen=True)
class StorageCost:
    """Bit-level breakdown of the PADC storage requirements."""

    prefetch_bits: int
    psc_bits: int
    puc_bits: int
    par_bits: int
    urgent_bits: int
    core_id_bits: int
    age_bits: int
    rank_bits: int = 0
    rank_counter_bits: int = 0

    @property
    def total_bits(self) -> int:
        return (
            self.prefetch_bits
            + self.psc_bits
            + self.puc_bits
            + self.par_bits
            + self.urgent_bits
            + self.core_id_bits
            + self.age_bits
            + self.rank_bits
            + self.rank_counter_bits
        )

    @property
    def total_bits_without_p_bits(self) -> int:
        """Cost when the processor already employs prefetch bits.

        Footnote 8: many designs already carry a P bit per cache line and
        request buffer entry, in which case the whole P row is free and
        only 1,824 bits remain on the 4-core baseline (Table 2).
        """
        return self.total_bits - self.prefetch_bits

    def as_dict(self) -> Dict[str, int]:
        return {
            "P": self.prefetch_bits,
            "PSC": self.psc_bits,
            "PUC": self.puc_bits,
            "PAR": self.par_bits,
            "U": self.urgent_bits,
            "ID": self.core_id_bits,
            "AGE": self.age_bits,
            "RANK": self.rank_bits,
            "RANK_CTR": self.rank_counter_bits,
            "total": self.total_bits,
        }


def padc_storage_cost(
    num_cores: int = 4,
    cache_lines_per_core: int = 8192,
    request_buffer_entries: int = 128,
    with_ranking: bool = False,
    psc_bits: int = 16,
    puc_bits: int = 16,
    par_bits: int = 8,
    age_bits: int = 10,
) -> StorageCost:
    """Compute PADC's storage cost in bits (paper Table 1 formulas)."""
    if num_cores < 1:
        raise ValueError("num_cores must be >= 1")
    core_id_width = max(1, math.ceil(math.log2(num_cores))) if num_cores > 1 else 1
    return StorageCost(
        prefetch_bits=cache_lines_per_core * num_cores + request_buffer_entries,
        psc_bits=num_cores * psc_bits,
        puc_bits=num_cores * puc_bits,
        par_bits=num_cores * par_bits,
        urgent_bits=request_buffer_entries,
        core_id_bits=request_buffer_entries * core_id_width,
        age_bits=request_buffer_entries * age_bits,
        rank_bits=request_buffer_entries * core_id_width if with_ranking else 0,
        rank_counter_bits=num_cores * 16 if with_ranking else 0,
    )


def cost_as_fraction_of_l2(cost: StorageCost, l2_bytes_total: int) -> float:
    """Storage cost as a fraction of total L2 data capacity (Table 2)."""
    return cost.total_bits / (l2_bytes_total * 8)
