"""PAR-BS-style batch scheduling (Mutlu & Moscibroda [20]) as a baseline.

The paper borrows PAR-BS's shortest-job-first *ranking* for PADC-rank
(§6.5).  This module implements the full batching mechanism as an
additional comparison policy: the controller groups up to
``marking_cap`` oldest requests per core into a *batch*; marked (batched)
requests are strictly prioritized over unmarked ones, which bounds every
request's service delay and prevents the FR-FCFS row-hit starvation that
pure open-row scheduling allows.  Within/outside the batch the usual
row-hit > rank > FCFS order applies.

Prefetch handling follows the demand-first convention (PAR-BS predates
prefetch-aware scheduling): demands are batched, prefetches ride along at
lower priority — which makes this policy an interesting rigid baseline
to contrast with PADC.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.controller.cost import FCFS_BITS, RANK_BIAS, RANK_BITS
from repro.controller.policies import SchedulingPolicy
from repro.controller.request import MemRequest


class BatchScheduler(SchedulingPolicy):
    """PAR-BS: marked-batch-first scheduling with SJF core ranking."""

    name = "parbs"
    needs_begin_tick = True
    # RH is flag bit 0, and the flags sit above the rank field.
    hit_delta = (1 << RANK_BITS) << FCFS_BITS

    def __init__(self, num_cores: int, marking_cap: int = 5):
        super().__init__()
        self.num_cores = num_cores
        self.marking_cap = marking_cap
        self._marked: Set[int] = set()
        self._rank: Dict[int, int] = {}
        self.batches_formed = 0

    def begin_tick(self, queues, now: int) -> None:
        """Re-form the batch when the previous one has fully drained."""
        outstanding = [request for queue in queues for request in queue]
        still_marked = [
            request for request in outstanding if request.seq in self._marked
        ]
        if still_marked:
            return
        self._form_batch(outstanding)

    def _form_batch(self, outstanding: List[MemRequest]) -> None:
        self._marked.clear()
        per_core_counts: Dict[int, int] = {}
        # Mark up to marking_cap oldest demand requests per core, keyed by
        # the admission sequence number.  (``id(request)`` is NOT a valid
        # key: serviced requests' ids linger in the marked set until the
        # next formation, and a new allocation reusing the address would
        # nondeterministically test as marked.)  Sorting by (arrival, seq)
        # pins the order at the marking-cap boundary even though swap-pop
        # removal scrambles the physical queue order.
        for request in sorted(outstanding, key=lambda r: (r.arrival, r.seq)):
            if request.is_prefetch:
                continue
            count = per_core_counts.get(request.core_id, 0)
            if count < self.marking_cap:
                self._marked.add(request.seq)
                per_core_counts[request.core_id] = count + 1
        # Shortest job first: cores with fewer marked requests rank higher.
        self._rank = {
            core: -count for core, count in per_core_counts.items()
        }
        if self._marked:
            self.batches_formed += 1
        # Marked-set membership feeds every priority key: drop all caches.
        self.epoch += 1

    def priority(self, request: MemRequest, row_hit: bool) -> Tuple:
        marked = request.seq in self._marked
        rank = self._rank.get(request.core_id, -(10**9))
        return (
            marked,
            not request.is_prefetch,
            row_hit,
            rank,
            -request.arrival,
            -request.seq,
        )

    def priority_key(self, request: MemRequest, row_hit: bool) -> int:
        marked = request.seq in self._marked
        rank = self._rank.get(request.core_id)
        # Unranked cores sit below every ranked one (tuple form: -(10**9));
        # field 0 encodes that sentinel, real ranks bias upward from there.
        field = 0 if rank is None else rank + RANK_BIAS
        flags = (marked << 2) | ((not request.is_prefetch) << 1) | row_hit
        return ((flags << RANK_BITS) | field) << FCFS_BITS | request.fcfs_key
