"""Adaptive Prefetch Dropping (paper §4.3).

APD removes a prefetch request from the memory request buffer once its age
exceeds the per-core ``drop_threshold``, which the accuracy tracker adapts
every interval using the 4-level table of Table 6 (low accuracy → drop
fast, high accuracy → keep long).

Dropping only applies to requests that still carry the P bit: a promoted
prefetch has been matched by a demand and must be serviced.  The engine
invalidates the corresponding MSHR entry via a callback so that a later
demand to the dropped line simply misses again, mirroring the paper's
"invalidate the MSHR entry before dropping" rule.
"""

from __future__ import annotations

from typing import List

from repro.controller.accuracy import PrefetchAccuracyTracker
from repro.controller.request import MemRequest


class AdaptivePrefetchDropper:
    """Age-based dropping of likely-useless prefetch requests."""

    def __init__(self, tracker: PrefetchAccuracyTracker, age_granularity: int = 100):
        self.tracker = tracker
        # The hardware AGE field ticks every ``age_granularity`` cycles, so
        # ages are compared at that granularity (paper §4.4: "estimation of
        # the age of a request does not need to be highly accurate").
        self.age_granularity = age_granularity
        self.dropped_per_core: List[int] = [0] * tracker.num_cores

    def should_drop(self, request: MemRequest, now: int) -> bool:
        if not request.is_prefetch:
            return False
        threshold = self.tracker.drop_threshold[request.core_id]
        # Table 6 semantics: drop once the age exceeds the threshold.  The
        # age is only known at AGE-counter granularity, so quantize it *up*
        # — the first tick strictly past the threshold triggers the drop.
        # (Flooring both sides let a request live a full extra granularity
        # window: with threshold=100 and granularity=100 it survived to
        # age 200 instead of being dropped just past 100.)
        age_ticks = -(-(now - request.arrival) // self.age_granularity)
        return age_ticks > threshold // self.age_granularity

    def drop_deadline(self, request: MemRequest) -> int:
        """First cycle at which :meth:`should_drop` turns true for ``request``.

        Solving the quantize-up comparison for ``now``: the request is
        over-age once ``now - arrival`` strictly exceeds the threshold
        rounded down to AGE-counter granularity.  The engine keeps the
        minimum of these per bank so scheduling rounds before the earliest
        deadline skip the drop scan entirely (DESIGN.md §10); the deadline
        is recomputed from the live per-core thresholds, so it must be
        re-derived after every accuracy interval.  The skip-ahead event
        backend additionally relies on the deadline being *exact*: the
        bank's next wake can be this timestamp, and a deadline computed
        even one cycle late would make the event backend drop a prefetch
        a round later than the tick loop does.
        """
        threshold = self.tracker.drop_threshold[request.core_id]
        gran = self.age_granularity
        return request.arrival + (threshold // gran) * gran + 1

    def record_drop(self, request: MemRequest) -> None:
        request.dropped = True
        self.dropped_per_core[request.core_id] += 1

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped_per_core)
