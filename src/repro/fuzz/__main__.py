"""Differential fuzzer CLI: ``python -m repro.fuzz``.

Sweeps seeded random cases (workload profiles × policy × config × seed)
over all scheduler backends and fails loudly — with a shrunk minimal
repro — on any byte divergence between their ``SimResult`` outputs.

Examples::

    python -m repro.fuzz --cases 200            # the CI sweep
    python -m repro.fuzz --cases 50 --start-seed 1000
    python -m repro.fuzz --case 1234            # re-run one case verbosely
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.fuzz import BACKENDS, random_case, run_case, run_fuzz, shrink


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--cases", type=int, default=200, help="number of cases (default: 200)"
    )
    parser.add_argument(
        "--start-seed",
        type=int,
        default=0,
        help="first case seed; case i uses seed start+i (default: 0)",
    )
    parser.add_argument(
        "--backends",
        default=",".join(BACKENDS),
        help=f"comma-separated backend list (default: {','.join(BACKENDS)})",
    )
    parser.add_argument(
        "--case",
        type=int,
        default=None,
        help="re-run a single case seed and print its full description",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw failing cases without shrinking",
    )
    args = parser.parse_args(argv)
    backends = [b for b in args.backends.split(",") if b]

    if args.case is not None:
        case = random_case(args.case)
        print(f"[fuzz] {case.describe()}")
        print(json.dumps(case.to_dict(), indent=2, default=str))
        diverged = run_case(case, backends)
        if diverged:
            print(f"[fuzz] DIVERGENCE: {diverged}", file=sys.stderr)
            shrunk = shrink(case, backends)
            print(f"[fuzz] shrunk: {shrunk.describe()}", file=sys.stderr)
            return 1
        print(f"[fuzz] byte-identical across {backends}")
        return 0

    report = run_fuzz(
        args.cases,
        start_seed=args.start_seed,
        backends=backends,
        shrink_failures=not args.no_shrink,
        progress=lambda message: print(f"[fuzz] {message}", flush=True),
    )
    if report["failures"]:
        print(
            f"[fuzz] {len(report['failures'])}/{report['cases']} cases diverged:",
            file=sys.stderr,
        )
        for failure in report["failures"]:
            print(f"[fuzz]   {failure['case']}", file=sys.stderr)
            if "crash" in failure:
                print(f"[fuzz]     crash: {failure['crash']}", file=sys.stderr)
            if "shrunk" in failure:
                print(f"[fuzz]     shrunk: {failure['shrunk']}", file=sys.stderr)
                print(
                    "[fuzz]     repro: python -m repro.fuzz --case "
                    f"{failure['case_seed']}",
                    file=sys.stderr,
                )
        return 1
    print(
        f"[fuzz] {report['cases']} cases x {len(backends)} backends, "
        "all byte-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
