"""Differential backend fuzzer (DESIGN.md §11).

The skip-ahead event backend is certified byte-identical to the heap
backends by construction (every event push consumes the same sequence
number the heap backend would have), but the proof lives in code review;
this module is the executable counterpart.  It draws random simulation
cases — random synthetic workload profiles × scheduling policy ×
system-config knobs × seed — from a seeded RNG, runs every backend on
each case, and asserts byte-identical ``SimResult.to_dict()`` outputs.

A divergence is *shrunk* before it is reported: the shrinker greedily
applies reductions (fewer accesses, fewer cores, default knobs, simpler
policy/prefetcher) while the case still diverges, so the repro handed to
a human is the smallest configuration this shrinker can reach, not the
original 4-core kitchen-sink draw.  A backend crash counts as a
divergence — a case that makes one backend raise while another finishes
is exactly as broken as a mismatch.

Every case is fully determined by its integer ``case_seed``, so a failure
report is reproducible with ``python -m repro.fuzz --case <seed>``.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.params import BACKENDS, SystemConfig, baseline_config
from repro.sim.system import System
from repro.workloads.profiles import BenchmarkProfile

# Every spelling in the policy registry: the point of the fuzzer is to
# exercise scheduler × prefetcher interleavings the golden matrix does
# not enumerate.
POLICY_POOL: Tuple[str, ...] = (
    "fcfs",
    "frfcfs",
    "parbs",
    "no-pref",
    "demand-first",
    "demand-first-apd",
    "demand-prefetch-equal",
    "prefetch-first",
    "aps",
    "aps-rank",
    "padc",
    "padc-no-urgency",
    "padc-rank",
)

# Stream is weighted: it is the paper's prefetcher and the only one with
# a type-specialized fast path in the event backend, so most draws should
# go through it.
PREFETCHER_POOL: Tuple[str, ...] = (
    "stream",
    "stream",
    "stream",
    "stride",
    "cdc",
    "markov",
    "none",
)
FILTER_POOL: Tuple[Optional[str], ...] = (None, None, "fdp", "ddpf")

# Small access counts keep a 200-case sweep around a minute; the event
# backend's risky interleavings (retry vs fill vs tick ordering) all
# happen within the first few hundred requests.
ACCESS_POOL: Tuple[int, ...] = (150, 300, 600)


@dataclass(frozen=True)
class FuzzCase:
    """One fully-determined differential case (profiles included)."""

    case_seed: int
    policy: str
    prefetcher_kind: str
    filter_kind: Optional[str]
    num_cores: int
    num_channels: int
    shared_cache: bool
    permutation: bool
    runahead: bool
    refresh_enabled: bool
    refresh_interval: int
    accesses_per_core: int
    sim_seed: int
    profiles: Tuple[BenchmarkProfile, ...]

    def describe(self) -> str:
        knobs = [
            f"policy={self.policy}",
            f"prefetcher={self.prefetcher_kind}",
            f"filter={self.filter_kind}",
            f"cores={self.num_cores}",
            f"channels={self.num_channels}",
            f"accesses={self.accesses_per_core}",
            f"sim_seed={self.sim_seed}",
        ]
        if self.shared_cache:
            knobs.append("shared_cache")
        if self.permutation:
            knobs.append("permutation")
        if self.runahead:
            knobs.append("runahead")
        if self.refresh_enabled:
            knobs.append(f"refresh@{self.refresh_interval}")
        return f"case_seed={self.case_seed} [{' '.join(knobs)}]"

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def random_profile(rng: random.Random, index: int) -> BenchmarkProfile:
    """Draw one synthetic workload profile honoring the dataclass bounds."""
    return BenchmarkProfile(
        name=f"fuzz{index}",
        pf_class=rng.randrange(3),
        apki=round(rng.choice([0.3, 1.0, 4.0, 12.0, 30.0]) * (0.5 + rng.random()), 3),
        stream_fraction=round(rng.random(), 3),
        run_length=rng.choice([2, 4, 16, 64, 256, 2048]),
        num_streams=rng.randrange(1, 9),
        ws_lines=1 << rng.randrange(10, 23),
        reuse_fraction=round(rng.random() * 0.7, 3),
        phase_period=rng.choice([0, 0, 500, 2000]),
        bad_phase_stream_fraction=round(rng.random(), 3),
        bad_phase_run_length=rng.choice([2, 4, 8]),
        bad_phase_ratio=rng.randrange(1, 4),
        hot_lines=rng.choice([0, 0, 256, 4096]),
        hot_fraction=round(rng.random() * 0.5, 3),
        write_fraction=rng.choice([0.0, 0.0, 0.1, 0.3]),
    )


def random_case(case_seed: int) -> FuzzCase:
    """Derive one case deterministically from its seed."""
    # String seeding hashes with sha512 — stable across processes and
    # Python versions (unlike hash()-based tuple seeding, which random
    # rejects anyway).
    rng = random.Random(f"repro-fuzz-{case_seed}")
    num_cores = rng.choice([1, 2, 2, 4])
    return FuzzCase(
        case_seed=case_seed,
        policy=rng.choice(POLICY_POOL),
        prefetcher_kind=rng.choice(PREFETCHER_POOL),
        filter_kind=rng.choice(FILTER_POOL),
        num_cores=num_cores,
        num_channels=rng.choice([1, 1, 2]),
        shared_cache=rng.random() < 0.2,
        permutation=rng.random() < 0.25,
        runahead=rng.random() < 0.2,
        refresh_enabled=rng.random() < 0.35,
        refresh_interval=rng.choice([5_000, 31_200]),
        accesses_per_core=rng.choice(ACCESS_POOL),
        sim_seed=rng.randrange(1 << 16),
        profiles=tuple(random_profile(rng, index) for index in range(num_cores)),
    )


def build_config(case: FuzzCase) -> SystemConfig:
    """Materialize the case's :class:`SystemConfig`."""
    config = baseline_config(
        num_cores=case.num_cores,
        policy=case.policy,
        prefetcher_kind=case.prefetcher_kind,
        filter_kind=case.filter_kind,
        shared_cache=case.shared_cache,
        num_channels=case.num_channels,
        permutation=case.permutation,
        runahead=case.runahead,
    )
    if case.refresh_enabled:
        config = dataclasses.replace(
            config,
            dram=dataclasses.replace(
                config.dram,
                refresh_enabled=True,
                refresh_interval=case.refresh_interval,
            ),
        )
    return config


def run_case(
    case: FuzzCase, backends: Sequence[str] = BACKENDS
) -> List[str]:
    """Run every backend on the case; return the backends that diverged.

    Divergence is measured against the first backend in ``backends``
    (byte-inequality of ``SimResult.to_dict()``).  Exceptions propagate —
    callers that want crash-as-divergence semantics (the shrinker, the
    sweep) wrap this call.
    """
    golden = None
    diverged: List[str] = []
    for backend in backends:
        system = System(
            build_config(case), list(case.profiles), seed=case.sim_seed, backend=backend
        )
        output = system.run(case.accesses_per_core).to_dict()
        if golden is None:
            golden = (backend, output)
        elif output != golden[1]:
            diverged.append(backend)
    return diverged


def _case_fails(case: FuzzCase, backends: Sequence[str]) -> bool:
    try:
        return bool(run_case(case, backends))
    except Exception:
        return True  # a crashing backend is a divergence too


def _reductions(case: FuzzCase) -> Iterator[FuzzCase]:
    """Candidate simplifications, most aggressive first."""
    if case.accesses_per_core > 50:
        yield dataclasses.replace(
            case, accesses_per_core=max(50, case.accesses_per_core // 2)
        )
    if case.num_cores > 1:
        half = max(1, case.num_cores // 2)
        yield dataclasses.replace(
            case, num_cores=half, profiles=case.profiles[:half]
        )
    if case.refresh_enabled:
        yield dataclasses.replace(case, refresh_enabled=False)
    if case.num_channels > 1:
        yield dataclasses.replace(case, num_channels=1)
    if case.runahead:
        yield dataclasses.replace(case, runahead=False)
    if case.permutation:
        yield dataclasses.replace(case, permutation=False)
    if case.shared_cache:
        yield dataclasses.replace(case, shared_cache=False)
    if case.filter_kind is not None:
        yield dataclasses.replace(case, filter_kind=None)
    if case.prefetcher_kind not in ("none", "stream"):
        yield dataclasses.replace(case, prefetcher_kind="stream")
    if case.prefetcher_kind != "none":
        yield dataclasses.replace(case, prefetcher_kind="none")
    if case.policy != "fcfs":
        yield dataclasses.replace(case, policy="fcfs")


def shrink(
    case: FuzzCase,
    backends: Sequence[str] = BACKENDS,
    *,
    fails: Optional[Callable[[FuzzCase], bool]] = None,
    max_attempts: int = 200,
) -> FuzzCase:
    """Greedily reduce ``case`` while it still fails.

    ``fails`` defaults to re-running the backends (crash counts as a
    failure); tests inject a synthetic predicate.  Each accepted
    reduction restarts the scan, so the result is a local minimum under
    :func:`_reductions` — small enough to read, not globally minimal.
    """
    if fails is None:
        fails = lambda candidate: _case_fails(candidate, backends)
    current = case
    attempts = 0
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        for candidate in _reductions(current):
            attempts += 1
            if fails(candidate):
                current = candidate
                progressed = True
                break
            if attempts >= max_attempts:
                break
    return current


def run_fuzz(
    num_cases: int,
    *,
    start_seed: int = 0,
    backends: Sequence[str] = BACKENDS,
    shrink_failures: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Sweep ``num_cases`` seeded cases; return a report dict.

    ``{"cases": N, "backends": [...], "failures": [...]}`` where each
    failure carries the original case description, the diverging
    backends (or the crash), and — when ``shrink_failures`` — the shrunk
    minimal repro.
    """
    failures: List[Dict[str, object]] = []
    for offset in range(num_cases):
        case = random_case(start_seed + offset)
        try:
            diverged = run_case(case, backends)
            crash = None
        except Exception as error:  # crash-as-divergence
            diverged = list(backends[1:])
            crash = f"{type(error).__name__}: {error}"
        if diverged:
            failure: Dict[str, object] = {
                "case": case.describe(),
                "case_seed": case.case_seed,
                "diverged": diverged,
            }
            if crash is not None:
                failure["crash"] = crash
            if shrink_failures:
                shrunk = shrink(case, backends)
                failure["shrunk"] = shrunk.describe()
                failure["shrunk_case"] = shrunk.to_dict()
            failures.append(failure)
            if progress is not None:
                progress(f"DIVERGENCE {case.describe()}")
        elif progress is not None and (offset + 1) % 20 == 0:
            progress(f"{offset + 1}/{num_cases} cases identical")
    return {
        "cases": num_cases,
        "backends": list(backends),
        "start_seed": start_seed,
        "failures": failures,
    }
