"""Result analysis helpers: run reports and terminal-friendly charts."""

from repro.analysis.report import (
    ascii_bar_chart,
    compare_policies,
    run_report,
)

__all__ = ["run_report", "compare_policies", "ascii_bar_chart"]
