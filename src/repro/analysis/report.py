"""Human-readable reports over :class:`~repro.sim.results.SimResult`.

Three utilities used by the examples and handy in notebooks/REPLs:

* :func:`run_report` — a multi-line per-core + system summary of one run;
* :func:`compare_policies` — run one workload under several policies and
  tabulate IPC/WS, traffic and drops side by side;
* :func:`ascii_bar_chart` — dependency-free horizontal bar chart for
  terminal output.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro import api
from repro.metrics import harmonic_speedup, unfairness, weighted_speedup
from repro.params import SystemConfig, baseline_config
from repro.sim import SimResult


def ascii_bar_chart(
    values: Dict[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render labelled values as a horizontal ASCII bar chart."""
    if not values:
        return "(no data)"
    peak = max(values.values())
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar_length = 0 if peak <= 0 else round(width * value / peak)
        bar = "#" * bar_length
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.3f}{unit}")
    return "\n".join(lines)


def run_report(result: SimResult, alone_ipcs: Optional[Sequence[float]] = None) -> str:
    """A readable summary of one simulation run."""
    lines = [
        f"policy: {result.policy}   cycles: {result.total_cycles}   "
        f"row-buffer hit rate: {result.row_buffer_hit_rate:.2f}"
    ]
    header = (
        f"{'core':<5}{'benchmark':<16}{'IPC':>7}{'MPKI':>7}{'SPL':>8}"
        f"{'ACC':>6}{'COV':>6}{'drops':>7}"
    )
    lines.append(header)
    for core in result.cores:
        lines.append(
            f"{core.core_id:<5}{core.benchmark:<16}{core.ipc:>7.3f}"
            f"{core.mpki:>7.1f}{core.spl:>8.1f}{core.accuracy:>6.2f}"
            f"{core.coverage:>6.2f}{core.pf_dropped:>7}"
        )
    breakdown = result.traffic_breakdown()
    lines.append(
        f"traffic {result.total_traffic} lines = "
        f"{breakdown['demand']} demand + {breakdown['pref-useful']} useful-pref "
        f"+ {breakdown['pref-useless']} useless-pref"
    )
    if alone_ipcs is not None and result.num_cores > 1:
        together = result.ipcs()
        lines.append(
            f"WS={weighted_speedup(together, alone_ipcs):.3f}  "
            f"HS={harmonic_speedup(together, alone_ipcs):.3f}  "
            f"UF={unfairness(together, alone_ipcs):.2f}"
        )
    return "\n".join(lines)


def compare_policies(
    benchmarks: Sequence,
    policies: Iterable[str] = ("no-pref", "demand-first", "demand-prefetch-equal", "aps", "padc"),
    accesses: int = 5_000,
    seed: int = 0,
    config_base: Optional[SystemConfig] = None,
) -> Tuple[Dict[str, SimResult], str]:
    """Run one workload under several policies; return results + table."""
    results: Dict[str, SimResult] = {}
    rows = []
    for policy in policies:
        if config_base is not None:
            config = config_base.with_policy(policy)
        else:
            config = baseline_config(len(benchmarks), policy=policy)
        result = api.simulate(config, list(benchmarks), accesses, seed=seed)
        results[policy] = result
        rows.append(
            (
                policy,
                sum(result.ipcs()),
                result.total_traffic,
                result.dropped_prefetches,
                result.row_buffer_hit_rate,
            )
        )
    lines = [
        f"{'policy':<24}{'IPC(sum)':>10}{'traffic':>9}{'drops':>7}{'RBH':>6}"
    ]
    for policy, ipc_sum, traffic, drops, rbh in rows:
        lines.append(
            f"{policy:<24}{ipc_sum:>10.3f}{traffic:>9}{drops:>7}{rbh:>6.2f}"
        )
    return results, "\n".join(lines)
