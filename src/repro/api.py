"""The public simulation API: one front door for every way to run.

Three verbs, one vocabulary:

* :func:`simulate` — run one configuration right here, right now, and
  get the :class:`~repro.sim.results.SimResult` back.  All tuning knobs
  (``seed``, ``max_cycles``, ``collect_service_times``, ``check``,
  ``telemetry``) are keyword-only, so call sites read unambiguously.
* :func:`submit` / :func:`submit_many` — the same simulation through
  the process-wide :class:`~repro.runtime.Runtime`: results come from
  the on-disk cache when warm, from parallel workers when cold, and
  are bit-for-bit identical either way.
* :func:`campaign` — a whole sweep (a :class:`CampaignSpec`, a preset
  name, or a spec dict) through the resumable campaign executor.

``repro.experiments``, the examples and both CLIs call through this
module, so its signatures are the project's compatibility surface.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.params import SystemConfig
from repro.runtime import Runtime, SimJob, get_runtime
from repro.sim import results as _results
from repro.sim import system as _system
from repro.sim.results import SimResult
from repro.telemetry.collector import NoopCollector

ProfileLike = _system.ProfileLike
TelemetryLike = Union[None, bool, NoopCollector]


def simulate(
    config: SystemConfig,
    benchmarks: Sequence[ProfileLike],
    max_accesses_per_core: int = 20_000,
    *,
    seed: int = 0,
    max_cycles: Optional[int] = None,
    collect_service_times: bool = False,
    check: Optional[bool] = None,
    telemetry: TelemetryLike = None,
    backend: Optional[str] = None,
) -> SimResult:
    """Run one simulation in-process and return its result.

    ``telemetry=True`` attaches an interval-sampled
    :class:`~repro.telemetry.trace.SimTrace` as ``result.trace``;
    ``check=True`` (or ``$REPRO_CHECK=1``) audits invariants while
    running.  ``backend`` picks the simulation loop (``"event"``,
    ``"optimized"``, ``"reference"``; default ``$REPRO_BACKEND`` or the
    skip-ahead event loop) — the choice never changes the result, only
    the wall-clock.  Each call builds a fresh
    :class:`~repro.sim.system.System` — the system itself refuses to run
    twice.
    """
    return _system.simulate(
        config,
        benchmarks,
        max_accesses_per_core,
        seed=seed,
        max_cycles=max_cycles,
        collect_service_times=collect_service_times,
        check=check,
        telemetry=telemetry,
        backend=backend,
    )


def _make_job(
    config: SystemConfig,
    benchmarks: Sequence[ProfileLike],
    accesses: int,
    seed: int,
    **sim_kwargs,
) -> SimJob:
    # Default-valued knobs are dropped so a call that merely spells out a
    # default hashes to the same cache key as one that omits it.  ``None``
    # always means "default"; ``False`` is also the default for the two
    # purely-additive knobs (but NOT for ``check``, where an explicit
    # False overrides $REPRO_CHECK=1 and must survive).
    pruned = {name: value for name, value in sim_kwargs.items() if value is not None}
    for flag in ("telemetry", "collect_service_times"):
        if pruned.get(flag) is False:
            del pruned[flag]
    # The backend knob never reaches a job: every backend is certified
    # byte-identical (equivalence matrix + differential fuzzer), so cache
    # entries are shared across backends and the worker runs whichever
    # backend its own environment resolves.  (SystemConfig.backend is
    # likewise hash-excluded at the field.)
    pruned.pop("backend", None)
    if pruned.get("telemetry"):
        # Collector objects are neither picklable nor hashable; through
        # the runtime the knob is a plain flag.
        pruned["telemetry"] = True
    return SimJob.make(config, benchmarks, accesses, seed=seed, **pruned)


def submit(
    config: SystemConfig,
    benchmarks: Sequence[ProfileLike],
    max_accesses_per_core: int = 20_000,
    *,
    seed: int = 0,
    runtime: Optional[Runtime] = None,
    **sim_kwargs,
) -> SimResult:
    """Run one simulation through the cache-aware runtime.

    Deterministic in its inputs: a warm cache returns the stored result,
    a cold one computes and stores it.  Extra keyword arguments are the
    same knobs :func:`simulate` takes (``max_cycles``, ``check``,
    ``telemetry=True``, ...).
    """
    return submit_many(
        [(config, benchmarks)],
        max_accesses_per_core,
        seed=seed,
        runtime=runtime,
        **sim_kwargs,
    )[0]


def submit_many(
    runs: Sequence[Union[Tuple[SystemConfig, Sequence[ProfileLike]], SimJob]],
    max_accesses_per_core: int = 20_000,
    *,
    seed: int = 0,
    runtime: Optional[Runtime] = None,
    **sim_kwargs,
) -> List[SimResult]:
    """Run a batch of simulations through the runtime, preserving order.

    Each entry is either a ``(config, benchmarks)`` pair — which shares
    the batch-wide access count, seed and simulate knobs — or a prebuilt
    :class:`~repro.runtime.SimJob` for heterogeneous batches (per-entry
    seeds, accesses, ...), used verbatim.  Cache hits are served without
    touching a worker; identical entries are computed once.
    """
    runtime = runtime or get_runtime()
    jobs = [
        run
        if isinstance(run, SimJob)
        else _make_job(run[0], run[1], max_accesses_per_core, seed, **sim_kwargs)
        for run in runs
    ]
    return runtime.run_many(jobs)


def campaign(
    spec,
    *,
    directory=None,
    runtime: Optional[Runtime] = None,
    retries: int = 1,
):
    """Run a sweep to completion; returns the :class:`CampaignRun`.

    ``spec`` may be a :class:`~repro.campaign.CampaignSpec`, a preset
    name from :mod:`repro.campaign.presets` (``"smoke"``, ``"paper"``),
    or a spec dict (as produced by ``CampaignSpec.to_dict`` / written by
    hand).  Resume-aware: a warm rerun touches no simulation.
    """
    # Imported lazily: repro.campaign pulls in repro.experiments, which
    # itself imports this module.
    from repro.campaign import executor as _executor

    spec = _coerce_spec(spec)
    return _executor.submit(
        spec, directory=directory, runtime=runtime, retries=retries
    )


def _coerce_spec(spec):
    from repro.campaign import CampaignSpec

    if isinstance(spec, str):
        from repro.campaign import presets as _presets

        return _presets.build(spec)
    if isinstance(spec, dict):
        return CampaignSpec.from_dict(spec)
    return spec


def campaign_create(
    spec,
    *,
    directory=None,
    backend: Optional[str] = None,
    root=None,
):
    """Create (or idempotently reopen) a campaign without executing it.

    This is the submission half of the campaign service: bind ``spec``
    (a :class:`~repro.campaign.CampaignSpec`, preset name, or spec dict)
    to its directory, snapshot it, and — on the sqlite backend — enqueue
    the full job expansion so workers (``python -m repro.campaign
    worker``) can start claiming.  ``root`` overrides the campaigns root
    the default directory is derived under.  Returns the
    :class:`~repro.campaign.Campaign`.
    """
    from pathlib import Path

    from repro.campaign import executor as _executor

    spec = _coerce_spec(spec)
    if directory is None:
        base = Path(root) if root is not None else _executor.campaigns_root()
        directory = base / f"{spec.name}-{spec.fingerprint()[:12]}"
    created = _executor.Campaign.create(spec, directory, backend=backend)
    store = created.ledger
    if hasattr(store, "ensure_jobs"):
        from repro.campaign.worker import job_meta

        store.ensure_jobs(
            [(job.key, job_meta(job)) for job in created.unique_jobs()]
        )
    return created


def campaign_status(directory) -> dict:
    """One campaign's identity + status histogram as plain JSON-able data."""
    from repro.campaign import executor as _executor

    opened = _executor.Campaign.open(directory)
    counts = opened.status_counts()
    from repro.campaign.report import status_summary

    return {
        "id": opened.directory.name,
        "directory": str(opened.directory),
        "name": opened.spec.name,
        "backend": opened.backend,
        "fingerprint": opened.spec.fingerprint(),
        "total": len(opened.unique_jobs()),
        "counts": counts,
        "complete": counts.get("done", 0) == len(opened.unique_jobs()),
        "text": status_summary(opened),
    }


def campaign_export(directory, *, fmt: str = "csv", runtime: Optional[Runtime] = None) -> str:
    """Deterministic CSV/JSON export of a campaign (any backend)."""
    from repro.campaign import executor as _executor
    from repro.campaign.report import export as _export

    opened = _executor.Campaign.open(directory)
    runtime = runtime or get_runtime()
    return _export(opened, runtime.store, fmt=fmt)


def register_trace(name: str, path) -> None:
    """Bind ``trace:<name>`` to a converted ``.rtr`` file for this process.

    After registration the name works everywhere a benchmark name does —
    :func:`simulate`, :func:`submit`, campaign specs.  Lazy import: the
    trace subsystem loads only when traces are actually used.
    """
    from repro.trace import register_trace as _register

    _register(name, path)


def trace_workload(spec: str, *, name: Optional[str] = None):
    """Resolve ``trace:<name-or-path>`` (or a bare path) to a workload.

    Returns a :class:`~repro.trace.TraceWorkload` whose cache identity is
    the file's embedded content digest plus windowing knobs (``start``,
    ``limit``, ``loop``) — never the path.  Raises
    :class:`~repro.trace.TraceLookupError` with nearest-match
    suggestions on unknown names.
    """
    from repro.trace import resolve_trace as _resolve

    return _resolve(spec, name=name)


RESULT_SCHEMA_VERSION = _results.RESULT_SCHEMA_VERSION

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "SimResult",
    "campaign",
    "campaign_create",
    "campaign_export",
    "campaign_status",
    "register_trace",
    "simulate",
    "submit",
    "submit_many",
    "trace_workload",
]
