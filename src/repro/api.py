"""The public simulation API: one front door for every way to run.

Three verbs, one vocabulary:

* :func:`simulate` — run one configuration right here, right now, and
  get the :class:`~repro.sim.results.SimResult` back.  All tuning knobs
  (``seed``, ``max_cycles``, ``collect_service_times``, ``check``,
  ``telemetry``) are keyword-only, so call sites read unambiguously.
* :func:`submit` / :func:`submit_many` — the same simulation through
  the process-wide :class:`~repro.runtime.Runtime`: results come from
  the on-disk cache when warm, from parallel workers when cold, and
  are bit-for-bit identical either way.
* :func:`campaign` — a whole sweep (a :class:`CampaignSpec`, a preset
  name, or a spec dict) through the resumable campaign executor.
* :class:`Campaign` — the handle over a persistent campaign directory:
  ``Campaign.create(spec)`` / :func:`campaign_open` bind it, then
  ``.status()``, ``.export()``, ``.progress()``, ``.metrics()`` and
  ``.stream()`` read it — the one object the CLI, the HTTP service and
  the dashboard all route through.

The older free functions (``campaign_create`` / ``campaign_status`` /
``campaign_export``) still work but are deprecated thin wrappers over
the handle and emit :class:`DeprecationWarning`.

``repro.experiments``, the examples and both CLIs call through this
module, so its signatures are the project's compatibility surface.
"""

from __future__ import annotations

import time as _time
import warnings
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.params import SystemConfig
from repro.runtime import Runtime, SimJob, get_runtime
from repro.sim import results as _results
from repro.sim import system as _system
from repro.sim.results import SimResult
from repro.telemetry.collector import NoopCollector

ProfileLike = _system.ProfileLike
TelemetryLike = Union[None, bool, NoopCollector]


def simulate(
    config: SystemConfig,
    benchmarks: Sequence[ProfileLike],
    max_accesses_per_core: int = 20_000,
    *,
    seed: int = 0,
    max_cycles: Optional[int] = None,
    collect_service_times: bool = False,
    check: Optional[bool] = None,
    telemetry: TelemetryLike = None,
    backend: Optional[str] = None,
) -> SimResult:
    """Run one simulation in-process and return its result.

    ``telemetry=True`` attaches an interval-sampled
    :class:`~repro.telemetry.trace.SimTrace` as ``result.trace``;
    ``check=True`` (or ``$REPRO_CHECK=1``) audits invariants while
    running.  ``backend`` picks the simulation loop (``"event"``,
    ``"optimized"``, ``"reference"``; default ``$REPRO_BACKEND`` or the
    skip-ahead event loop) — the choice never changes the result, only
    the wall-clock.  Each call builds a fresh
    :class:`~repro.sim.system.System` — the system itself refuses to run
    twice.
    """
    return _system.simulate(
        config,
        benchmarks,
        max_accesses_per_core,
        seed=seed,
        max_cycles=max_cycles,
        collect_service_times=collect_service_times,
        check=check,
        telemetry=telemetry,
        backend=backend,
    )


def _make_job(
    config: SystemConfig,
    benchmarks: Sequence[ProfileLike],
    accesses: int,
    seed: int,
    **sim_kwargs,
) -> SimJob:
    # Default-valued knobs are dropped so a call that merely spells out a
    # default hashes to the same cache key as one that omits it.  ``None``
    # always means "default"; ``False`` is also the default for the two
    # purely-additive knobs (but NOT for ``check``, where an explicit
    # False overrides $REPRO_CHECK=1 and must survive).
    pruned = {name: value for name, value in sim_kwargs.items() if value is not None}
    for flag in ("telemetry", "collect_service_times"):
        if pruned.get(flag) is False:
            del pruned[flag]
    # The backend knob never reaches a job: every backend is certified
    # byte-identical (equivalence matrix + differential fuzzer), so cache
    # entries are shared across backends and the worker runs whichever
    # backend its own environment resolves.  (SystemConfig.backend is
    # likewise hash-excluded at the field.)
    pruned.pop("backend", None)
    if pruned.get("telemetry"):
        # Collector objects are neither picklable nor hashable; through
        # the runtime the knob is a plain flag.
        pruned["telemetry"] = True
    return SimJob.make(config, benchmarks, accesses, seed=seed, **pruned)


def submit(
    config: SystemConfig,
    benchmarks: Sequence[ProfileLike],
    max_accesses_per_core: int = 20_000,
    *,
    seed: int = 0,
    runtime: Optional[Runtime] = None,
    **sim_kwargs,
) -> SimResult:
    """Run one simulation through the cache-aware runtime.

    Deterministic in its inputs: a warm cache returns the stored result,
    a cold one computes and stores it.  Extra keyword arguments are the
    same knobs :func:`simulate` takes (``max_cycles``, ``check``,
    ``telemetry=True``, ...).
    """
    return submit_many(
        [(config, benchmarks)],
        max_accesses_per_core,
        seed=seed,
        runtime=runtime,
        **sim_kwargs,
    )[0]


def submit_many(
    runs: Sequence[Union[Tuple[SystemConfig, Sequence[ProfileLike]], SimJob]],
    max_accesses_per_core: int = 20_000,
    *,
    seed: int = 0,
    runtime: Optional[Runtime] = None,
    **sim_kwargs,
) -> List[SimResult]:
    """Run a batch of simulations through the runtime, preserving order.

    Each entry is either a ``(config, benchmarks)`` pair — which shares
    the batch-wide access count, seed and simulate knobs — or a prebuilt
    :class:`~repro.runtime.SimJob` for heterogeneous batches (per-entry
    seeds, accesses, ...), used verbatim.  Cache hits are served without
    touching a worker; identical entries are computed once.
    """
    runtime = runtime or get_runtime()
    jobs = [
        run
        if isinstance(run, SimJob)
        else _make_job(run[0], run[1], max_accesses_per_core, seed, **sim_kwargs)
        for run in runs
    ]
    return runtime.run_many(jobs)


def campaign(
    spec,
    *,
    directory=None,
    runtime: Optional[Runtime] = None,
    retries: int = 1,
):
    """Run a sweep to completion; returns the :class:`CampaignRun`.

    ``spec`` may be a :class:`~repro.campaign.CampaignSpec`, a preset
    name from :mod:`repro.campaign.presets` (``"smoke"``, ``"paper"``),
    or a spec dict (as produced by ``CampaignSpec.to_dict`` / written by
    hand).  Resume-aware: a warm rerun touches no simulation.
    """
    # Imported lazily: repro.campaign pulls in repro.experiments, which
    # itself imports this module.
    from repro.campaign import executor as _executor

    spec = _coerce_spec(spec)
    return _executor.submit(
        spec, directory=directory, runtime=runtime, retries=retries
    )


def _coerce_spec(spec):
    from repro.campaign import CampaignSpec

    if isinstance(spec, str):
        from repro.campaign import presets as _presets

        return _presets.build(spec)
    if isinstance(spec, dict):
        return CampaignSpec.from_dict(spec)
    return spec


class Campaign:
    """Handle over one persistent campaign directory.

    The unified front door to a campaign's lifecycle after submission:

    >>> handle = api.Campaign.create("smoke", backend="sqlite")
    >>> handle.status()["counts"]
    >>> handle.export(fmt="csv")
    >>> for row in handle.stream(follow=True): ...   # live samples
    >>> handle.metrics()["progress"]["eta_seconds"]  # dashboard payload

    All constructor and method knobs are keyword-only.  The handle wraps
    the executor-level :class:`repro.campaign.Campaign` (exposed as
    ``.inner`` for execution-layer code) plus the runtime whose result
    store exports read from.
    """

    def __init__(self, inner, *, runtime: Optional[Runtime] = None):
        self._inner = inner
        self._runtime = runtime

    # -- binding ---------------------------------------------------------------

    @classmethod
    def create(
        cls,
        spec,
        *,
        directory=None,
        backend: Optional[str] = None,
        root=None,
        runtime: Optional[Runtime] = None,
    ) -> "Campaign":
        """Create (or idempotently reopen) a campaign without executing it.

        The submission half of the campaign service: bind ``spec`` (a
        :class:`~repro.campaign.CampaignSpec`, preset name, or spec
        dict) to its directory, snapshot it, and — on the sqlite
        backend — enqueue the full job expansion so workers
        (``python -m repro.campaign worker``) can start claiming.
        ``root`` overrides the campaigns root the default directory is
        derived under.
        """
        from pathlib import Path

        from repro.campaign import executor as _executor

        spec = _coerce_spec(spec)
        if directory is None:
            base = Path(root) if root is not None else _executor.campaigns_root()
            directory = base / f"{spec.name}-{spec.fingerprint()[:12]}"
        created = _executor.Campaign.create(spec, directory, backend=backend)
        store = created.ledger
        if hasattr(store, "ensure_jobs"):
            from repro.campaign.worker import job_meta

            store.ensure_jobs(
                [(job.key, job_meta(job)) for job in created.unique_jobs()]
            )
        return cls(created, runtime=runtime)

    @classmethod
    def open(
        cls,
        directory,
        *,
        backend: Optional[str] = None,
        runtime: Optional[Runtime] = None,
    ) -> "Campaign":
        """Bind an existing campaign directory (see :func:`campaign_open`)."""
        from repro.campaign import executor as _executor

        return cls(_executor.Campaign.open(directory, backend=backend), runtime=runtime)

    # -- identity --------------------------------------------------------------

    @property
    def inner(self):
        """The executor-level campaign (spec + directory + job store)."""
        return self._inner

    @property
    def directory(self):
        return self._inner.directory

    @property
    def spec(self):
        return self._inner.spec

    @property
    def name(self) -> str:
        return self._inner.spec.name

    @property
    def backend(self) -> str:
        return self._inner.backend

    def unique_jobs(self):
        return self._inner.unique_jobs()

    def __repr__(self) -> str:
        return (
            f"api.Campaign({self.name!r}, directory={str(self.directory)!r}, "
            f"backend={self.backend!r})"
        )

    # -- reads -----------------------------------------------------------------

    def status(self) -> Dict:
        """Identity + status histogram as plain JSON-able data."""
        from repro.campaign.report import status_summary

        inner = self._inner
        counts = inner.status_counts()
        return {
            "id": inner.directory.name,
            "directory": str(inner.directory),
            "name": inner.spec.name,
            "backend": inner.backend,
            "fingerprint": inner.spec.fingerprint(),
            "total": len(inner.unique_jobs()),
            "counts": counts,
            "complete": counts.get("done", 0) == len(inner.unique_jobs()),
            "text": status_summary(inner),
        }

    def export(self, *, fmt: str = "csv") -> str:
        """Deterministic CSV/JSON export (any backend, streamed or not)."""
        from repro.campaign.report import export as _export

        runtime = self._runtime or get_runtime()
        return _export(self._inner, runtime.store, fmt=fmt)

    def progress(self) -> Dict:
        """Live progress: counts, ETA, per-job states + sample counts."""
        from repro.dashboard.aggregate import progress as _progress

        return _progress(self._inner)

    def metrics(self, *, max_jobs: Optional[int] = None) -> Dict:
        """The full dashboard payload (progress + series + fdp + pressure)."""
        from repro.dashboard.aggregate import campaign_metrics

        return campaign_metrics(self._inner, max_jobs=max_jobs)

    def stream(
        self,
        *,
        after: int = 0,
        key: Optional[str] = None,
        follow: bool = False,
        poll: float = 0.5,
        timeout: Optional[float] = None,
    ) -> Iterator[Dict]:
        """Iterate streamed sample rows, optionally tailing the store.

        Yields ``{"id", "key", "idx", "record"}`` rows in landing order,
        starting after cursor ``after`` (a previously-yielded ``id``).
        ``key`` restricts to one job.  ``follow=True`` keeps polling
        every ``poll`` seconds for new rows until the campaign is
        complete (or ``timeout`` seconds elapse); otherwise one pass
        over what has landed.
        """
        store = self._inner.ledger
        cursor = int(after)
        deadline = None if timeout is None else _time.monotonic() + float(timeout)
        while True:
            rows, cursor = store.samples_since(cursor, key=key)
            for row in rows:
                yield row
            if not follow:
                return
            counts = self._inner.status_counts()
            total = len(self._inner.unique_jobs())
            if counts.get("done", 0) + counts.get("failed", 0) >= total:
                # Terminal: drain whatever landed after the last poll.
                rows, cursor = store.samples_since(cursor, key=key)
                for row in rows:
                    yield row
                return
            if deadline is not None and _time.monotonic() >= deadline:
                return
            _time.sleep(max(0.05, float(poll)))

    def fold_trace(self, key: str):
        """Fold one job's streamed samples back into its ``SimTrace``.

        Returns ``None`` when the job has streamed nothing yet; raises
        :class:`~repro.telemetry.stream.StreamError` on a torn/partial
        stream (a header with no intervals folds fine — zero-interval
        traces are valid).
        """
        from repro.telemetry.stream import fold_samples

        records = self._inner.ledger.samples(key)
        if not records:
            return None
        return fold_samples(records)


def campaign_open(
    directory,
    *,
    backend: Optional[str] = None,
    runtime: Optional[Runtime] = None,
) -> Campaign:
    """Bind an existing campaign directory to a :class:`Campaign` handle.

    The read-side entry point: ``campaign_open(d).status()`` replaces the
    deprecated ``campaign_status(d)``, ``.export(fmt=...)`` replaces
    ``campaign_export(d, ...)``, and ``.stream()`` / ``.metrics()`` are
    the live-telemetry surface the dashboard polls.
    """
    return Campaign.open(directory, backend=backend, runtime=runtime)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"api.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def campaign_create(
    spec,
    *,
    directory=None,
    backend: Optional[str] = None,
    root=None,
):
    """Deprecated: use :meth:`Campaign.create`.

    Returns the executor-level campaign (the pre-handle return type), so
    existing callers keep working unchanged.
    """
    _deprecated("campaign_create(...)", "api.Campaign.create(...)")
    return Campaign.create(spec, directory=directory, backend=backend, root=root).inner


def campaign_status(directory) -> dict:
    """Deprecated: use ``campaign_open(directory).status()``."""
    _deprecated("campaign_status(dir)", "api.campaign_open(dir).status()")
    return Campaign.open(directory).status()


def campaign_export(directory, *, fmt: str = "csv", runtime: Optional[Runtime] = None) -> str:
    """Deprecated: use ``campaign_open(directory).export(fmt=...)``."""
    _deprecated("campaign_export(dir, ...)", "api.campaign_open(dir).export(fmt=...)")
    return Campaign.open(directory, runtime=runtime).export(fmt=fmt)


def register_trace(name: str, path) -> None:
    """Bind ``trace:<name>`` to a converted ``.rtr`` file for this process.

    After registration the name works everywhere a benchmark name does —
    :func:`simulate`, :func:`submit`, campaign specs.  Lazy import: the
    trace subsystem loads only when traces are actually used.
    """
    from repro.trace import register_trace as _register

    _register(name, path)


def trace_workload(spec: str, *, name: Optional[str] = None):
    """Resolve ``trace:<name-or-path>`` (or a bare path) to a workload.

    Returns a :class:`~repro.trace.TraceWorkload` whose cache identity is
    the file's embedded content digest plus windowing knobs (``start``,
    ``limit``, ``loop``) — never the path.  Raises
    :class:`~repro.trace.TraceLookupError` with nearest-match
    suggestions on unknown names.
    """
    from repro.trace import resolve_trace as _resolve

    return _resolve(spec, name=name)


RESULT_SCHEMA_VERSION = _results.RESULT_SCHEMA_VERSION

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "Campaign",
    "SimResult",
    "campaign",
    "campaign_create",
    "campaign_export",
    "campaign_open",
    "campaign_status",
    "register_trace",
    "simulate",
    "submit",
    "submit_many",
    "trace_workload",
]
