"""The public simulation API: one front door for every way to run.

Three verbs, one vocabulary:

* :func:`simulate` — run one configuration right here, right now, and
  get the :class:`~repro.sim.results.SimResult` back.  All tuning knobs
  (``seed``, ``max_cycles``, ``collect_service_times``, ``check``,
  ``telemetry``) are keyword-only, so call sites read unambiguously.
* :func:`submit` / :func:`submit_many` — the same simulation through
  the process-wide :class:`~repro.runtime.Runtime`: results come from
  the on-disk cache when warm, from parallel workers when cold, and
  are bit-for-bit identical either way.
* :func:`campaign` — a whole sweep (a :class:`CampaignSpec`, a preset
  name, or a spec dict) through the resumable campaign executor.

``repro.experiments``, the examples and both CLIs call through this
module, so its signatures are the project's compatibility surface.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.params import SystemConfig
from repro.runtime import Runtime, SimJob, get_runtime
from repro.sim import results as _results
from repro.sim import system as _system
from repro.sim.results import SimResult
from repro.telemetry.collector import NoopCollector

ProfileLike = _system.ProfileLike
TelemetryLike = Union[None, bool, NoopCollector]


def simulate(
    config: SystemConfig,
    benchmarks: Sequence[ProfileLike],
    max_accesses_per_core: int = 20_000,
    *,
    seed: int = 0,
    max_cycles: Optional[int] = None,
    collect_service_times: bool = False,
    check: Optional[bool] = None,
    telemetry: TelemetryLike = None,
    backend: Optional[str] = None,
) -> SimResult:
    """Run one simulation in-process and return its result.

    ``telemetry=True`` attaches an interval-sampled
    :class:`~repro.telemetry.trace.SimTrace` as ``result.trace``;
    ``check=True`` (or ``$REPRO_CHECK=1``) audits invariants while
    running.  ``backend`` picks the simulation loop (``"event"``,
    ``"optimized"``, ``"reference"``; default ``$REPRO_BACKEND`` or the
    skip-ahead event loop) — the choice never changes the result, only
    the wall-clock.  Each call builds a fresh
    :class:`~repro.sim.system.System` — the system itself refuses to run
    twice.
    """
    return _system.simulate(
        config,
        benchmarks,
        max_accesses_per_core,
        seed=seed,
        max_cycles=max_cycles,
        collect_service_times=collect_service_times,
        check=check,
        telemetry=telemetry,
        backend=backend,
    )


def _make_job(
    config: SystemConfig,
    benchmarks: Sequence[ProfileLike],
    accesses: int,
    seed: int,
    **sim_kwargs,
) -> SimJob:
    # Default-valued knobs are dropped so a call that merely spells out a
    # default hashes to the same cache key as one that omits it.  ``None``
    # always means "default"; ``False`` is also the default for the two
    # purely-additive knobs (but NOT for ``check``, where an explicit
    # False overrides $REPRO_CHECK=1 and must survive).
    pruned = {name: value for name, value in sim_kwargs.items() if value is not None}
    for flag in ("telemetry", "collect_service_times"):
        if pruned.get(flag) is False:
            del pruned[flag]
    # The backend knob never reaches a job: every backend is certified
    # byte-identical (equivalence matrix + differential fuzzer), so cache
    # entries are shared across backends and the worker runs whichever
    # backend its own environment resolves.  (SystemConfig.backend is
    # likewise hash-excluded at the field.)
    pruned.pop("backend", None)
    if pruned.get("telemetry"):
        # Collector objects are neither picklable nor hashable; through
        # the runtime the knob is a plain flag.
        pruned["telemetry"] = True
    return SimJob.make(config, benchmarks, accesses, seed=seed, **pruned)


def submit(
    config: SystemConfig,
    benchmarks: Sequence[ProfileLike],
    max_accesses_per_core: int = 20_000,
    *,
    seed: int = 0,
    runtime: Optional[Runtime] = None,
    **sim_kwargs,
) -> SimResult:
    """Run one simulation through the cache-aware runtime.

    Deterministic in its inputs: a warm cache returns the stored result,
    a cold one computes and stores it.  Extra keyword arguments are the
    same knobs :func:`simulate` takes (``max_cycles``, ``check``,
    ``telemetry=True``, ...).
    """
    return submit_many(
        [(config, benchmarks)],
        max_accesses_per_core,
        seed=seed,
        runtime=runtime,
        **sim_kwargs,
    )[0]


def submit_many(
    runs: Sequence[Union[Tuple[SystemConfig, Sequence[ProfileLike]], SimJob]],
    max_accesses_per_core: int = 20_000,
    *,
    seed: int = 0,
    runtime: Optional[Runtime] = None,
    **sim_kwargs,
) -> List[SimResult]:
    """Run a batch of simulations through the runtime, preserving order.

    Each entry is either a ``(config, benchmarks)`` pair — which shares
    the batch-wide access count, seed and simulate knobs — or a prebuilt
    :class:`~repro.runtime.SimJob` for heterogeneous batches (per-entry
    seeds, accesses, ...), used verbatim.  Cache hits are served without
    touching a worker; identical entries are computed once.
    """
    runtime = runtime or get_runtime()
    jobs = [
        run
        if isinstance(run, SimJob)
        else _make_job(run[0], run[1], max_accesses_per_core, seed, **sim_kwargs)
        for run in runs
    ]
    return runtime.run_many(jobs)


def campaign(
    spec,
    *,
    directory=None,
    runtime: Optional[Runtime] = None,
    retries: int = 1,
):
    """Run a sweep to completion; returns the :class:`CampaignRun`.

    ``spec`` may be a :class:`~repro.campaign.CampaignSpec`, a preset
    name from :mod:`repro.campaign.presets` (``"smoke"``, ``"paper"``),
    or a spec dict (as produced by ``CampaignSpec.to_dict`` / written by
    hand).  Resume-aware: a warm rerun touches no simulation.
    """
    # Imported lazily: repro.campaign pulls in repro.experiments, which
    # itself imports this module.
    from repro.campaign import CampaignSpec
    from repro.campaign import executor as _executor

    if isinstance(spec, str):
        from repro.campaign import presets as _presets

        spec = _presets.build(spec)
    elif isinstance(spec, dict):
        spec = CampaignSpec.from_dict(spec)
    return _executor.submit(
        spec, directory=directory, runtime=runtime, retries=retries
    )


RESULT_SCHEMA_VERSION = _results.RESULT_SCHEMA_VERSION

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "SimResult",
    "campaign",
    "simulate",
    "submit",
    "submit_many",
]
