"""The ``.rtr`` binary trace format: compact, versioned, mmap-able.

Layout (little-endian throughout)::

    offset  0  magic          b"RPTR"
    offset  4  u16  version   (FORMAT_VERSION)
    offset  6  u16  header    total fixed-header size in bytes (64)
    offset  8  u64  entries   total record count
    offset 16  u64  blocks    block count
    offset 24  u32  block_entries   records per block (last may be short)
    offset 28  u32  flags     reserved, 0
    offset 32  32B  digest    SHA-256 content digest (see below)
    -- 64 bytes, then ``blocks`` blocks, each:
    u32 payload_len | u32 crc32(payload) | payload

A block's payload packs ``block_entries`` records (the last block packs
the remainder).  One record is three varints::

    varint(gap << 1 | is_write)  zigzag_varint(line_delta)  varint(pc)

``line_delta`` is the difference from the previous record's line address
*within the block* (the first record of every block is encoded against
zero, so blocks decode independently — windowed reads skip whole blocks
without touching their payloads).

**Content digest.**  The header digest is SHA-256 over the *canonical*
record stream: the same three-varint records, but with ``line_delta``
taken against the previous record globally (never reset at block
boundaries).  Two files carry the same digest if and only if they encode
the same logical entry sequence — regardless of block size.  The digest,
not the file path, is what cache keys incorporate (DESIGN.md §13).

**Version policy** (recorded here, enforced by :func:`probe_header`):
``FORMAT_VERSION`` moves on *any* change to the record encoding or the
fixed header layout; readers reject files whose version they do not
implement, never guess.  Purely additive metadata must go in new trailing
header space guarded by the recorded header size — current readers skip
bytes between ``header`` and the first block.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass
from itertools import chain
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.trace import TraceEntry

MAGIC = b"RPTR"
FORMAT_VERSION = 1
TRACE_SUFFIX = ".rtr"

_HEADER_STRUCT = struct.Struct("<4sHHQQII32s")
HEADER_SIZE = _HEADER_STRUCT.size  # 64
_BLOCK_STRUCT = struct.Struct("<II")

DEFAULT_BLOCK_ENTRIES = 8192

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """A trace file is not a readable ``.rtr`` of a supported version."""


@dataclass(frozen=True)
class TraceHeader:
    """The decoded fixed header of one ``.rtr`` file."""

    path: str
    version: int
    entries: int
    blocks: int
    block_entries: int
    digest: str  # hex

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "version": self.version,
            "entries": self.entries,
            "blocks": self.blocks,
            "block_entries": self.block_entries,
            "digest": self.digest,
        }


# -- varints -----------------------------------------------------------------


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


def _append_varint(buffer: bytearray, value: int) -> None:
    while value > 0x7F:
        buffer.append((value & 0x7F) | 0x80)
        value >>= 7
    buffer.append(value)


def _read_varint(data, position: int) -> Tuple[int, int]:
    """Decode one varint at ``position``; returns (value, next position)."""
    result = 0
    shift = 0
    while True:
        try:
            byte = data[position]
        except IndexError:
            raise TraceFormatError(
                "truncated varint: block payload ended mid-record"
            ) from None
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7


def _encode_record(
    buffer: bytearray, entry: TraceEntry, prev_line: int
) -> None:
    """Append one three-varint record, delta-encoded against ``prev_line``."""
    _append_varint(buffer, (entry.gap << 1) | (1 if entry.is_write else 0))
    _append_varint(buffer, _zigzag(entry.line_addr - prev_line))
    _append_varint(buffer, entry.pc)


# -- writing -----------------------------------------------------------------


class TraceWriter:
    """Streaming ``.rtr`` encoder: constant memory, any entry count.

    Usage::

        with TraceWriter(path) as writer:
            for entry in entries:
                writer.append(entry)

    Entries are buffered one block at a time; the fixed header (entry
    count, block count, content digest) is patched in at close.  The file
    is written to a temp name and atomically renamed, so readers never
    observe a half-written trace and a crashed writer leaves no
    ``.rtr`` behind.
    """

    def __init__(self, path: PathLike, block_entries: int = DEFAULT_BLOCK_ENTRIES):
        if block_entries <= 0:
            raise ValueError(f"block_entries must be positive, got {block_entries}")
        self.path = Path(path)
        self.block_entries = block_entries
        self.entries = 0
        self.blocks = 0
        self._digest = hashlib.sha256()
        self._block = bytearray()
        self._in_block = 0
        self._prev_block_line = 0
        self._prev_global_line = 0
        self._closed = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, self._tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent), suffix=".rtr.tmp"
        )
        self._handle = os.fdopen(descriptor, "wb")
        self._handle.write(
            _HEADER_STRUCT.pack(
                MAGIC, FORMAT_VERSION, HEADER_SIZE, 0, 0, block_entries, 0, b"\0" * 32
            )
        )

    def append(self, entry: TraceEntry) -> None:
        if entry.gap < 0 or entry.line_addr < 0 or entry.pc < 0:
            raise ValueError(f"trace entries must be non-negative, got {entry!r}")
        _encode_record(self._block, entry, self._prev_block_line)
        self._prev_block_line = entry.line_addr
        # Canonical stream for the content digest: global delta, never
        # reset.  Identical to the block bytes except at block starts, so
        # one small re-encode per entry is the whole cost.
        canonical = bytearray()
        _encode_record(canonical, entry, self._prev_global_line)
        self._digest.update(canonical)
        self._prev_global_line = entry.line_addr
        self.entries += 1
        self._in_block += 1
        if self._in_block >= self.block_entries:
            self._flush_block()

    def extend(self, entries: Iterable[TraceEntry], limit: Optional[int] = None) -> int:
        """Append from an iterable (up to ``limit``); returns the count."""
        count = 0
        for entry in entries:
            if limit is not None and count >= limit:
                break
            self.append(entry)
            count += 1
        return count

    def _flush_block(self) -> None:
        if not self._in_block:
            return
        payload = bytes(self._block)
        self._handle.write(_BLOCK_STRUCT.pack(len(payload), zlib.crc32(payload)))
        self._handle.write(payload)
        self.blocks += 1
        self._block = bytearray()
        self._in_block = 0
        self._prev_block_line = 0

    def close(self) -> TraceHeader:
        """Flush, patch the header, and atomically publish the file."""
        if self._closed:
            return self.header
        self._closed = True
        try:
            self._flush_block()
            digest = self._digest.digest()
            self._handle.seek(0)
            self._handle.write(
                _HEADER_STRUCT.pack(
                    MAGIC,
                    FORMAT_VERSION,
                    HEADER_SIZE,
                    self.entries,
                    self.blocks,
                    self.block_entries,
                    0,
                    digest,
                )
            )
            self._handle.close()
            os.replace(self._tmp_name, self.path)
        except BaseException:
            self.abort()
            raise
        self.header = TraceHeader(
            path=str(self.path),
            version=FORMAT_VERSION,
            entries=self.entries,
            blocks=self.blocks,
            block_entries=self.block_entries,
            digest=digest.hex(),
        )
        return self.header

    def abort(self) -> None:
        """Discard the temp file without publishing anything."""
        self._closed = True
        try:
            self._handle.close()
        except OSError:
            pass
        try:
            os.unlink(self._tmp_name)
        except OSError:
            pass

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_trace(
    path: PathLike,
    entries: Iterable[TraceEntry],
    *,
    limit: Optional[int] = None,
    block_entries: int = DEFAULT_BLOCK_ENTRIES,
) -> TraceHeader:
    """Encode ``entries`` (up to ``limit``) into ``path``; returns the header."""
    with TraceWriter(path, block_entries=block_entries) as writer:
        writer.extend(entries, limit=limit)
    return writer.header


# -- reading -----------------------------------------------------------------

# Memo of probed headers keyed by (resolved path, size, mtime_ns): cache
# keying calls probe_header once per job expansion, and the trace file
# never changes under a run without its stat signature changing too.
# This memo only short-circuits the 64-byte header read — the *digest*
# inside is what identifies content, so an edited file re-probes (new
# stat) and a copied file probes equal (same bytes).
_HEADER_MEMO: Dict[Tuple[str, int, int], TraceHeader] = {}


def _parse_header(raw: bytes, path: str) -> Tuple[TraceHeader, int]:
    if len(raw) < HEADER_SIZE:
        raise TraceFormatError(
            f"{path}: too short for a trace header "
            f"({len(raw)} < {HEADER_SIZE} bytes)"
        )
    magic, version, header_size, entries, blocks, block_entries, _flags, digest = (
        _HEADER_STRUCT.unpack_from(raw, 0)
    )
    if magic != MAGIC:
        raise TraceFormatError(
            f"{path}: bad magic {magic!r} (expected {MAGIC!r}); not a "
            f"{TRACE_SUFFIX} trace — convert it first "
            "(python -m repro.trace convert)"
        )
    if version != FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: format version {version} is not supported by this "
            f"build (reads version {FORMAT_VERSION}); re-convert the trace"
        )
    if header_size < HEADER_SIZE:
        raise TraceFormatError(
            f"{path}: header size {header_size} below the v1 minimum {HEADER_SIZE}"
        )
    header = TraceHeader(
        path=path,
        version=version,
        entries=entries,
        blocks=blocks,
        block_entries=block_entries,
        digest=digest.hex(),
    )
    return header, header_size


def probe_header(path: PathLike) -> TraceHeader:
    """Read and validate just the fixed header (64 bytes, memoized)."""
    resolved = os.path.realpath(str(path))
    try:
        stat = os.stat(resolved)
    except OSError as error:
        raise TraceFormatError(f"{path}: cannot stat trace file: {error}") from None
    memo_key = (resolved, stat.st_size, stat.st_mtime_ns)
    cached = _HEADER_MEMO.get(memo_key)
    if cached is not None:
        return cached
    with open(resolved, "rb") as handle:
        raw = handle.read(HEADER_SIZE)
    header, _ = _parse_header(raw, str(path))
    _HEADER_MEMO[memo_key] = header
    return header


def trace_digest(path: PathLike) -> str:
    """The embedded content digest (hex) of a trace file."""
    return probe_header(path).digest


class TraceReader:
    """Streaming, constant-memory decoder over one ``.rtr`` file.

    The file is mapped read-only when the platform allows it (falling
    back to a plain read), so concurrent readers share pages and decode
    never copies more than one block's payload at a time.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        with open(self.path, "rb") as handle:
            try:
                self._buffer = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            except (ValueError, OSError):
                # Empty or unmappable file: fall back to bytes in memory
                # (an empty trace is 64 bytes — hardly a memory concern).
                handle.seek(0)
                self._buffer = handle.read()
        self.header, self._first_block_offset = _parse_header(
            bytes(self._buffer[:HEADER_SIZE]), str(self.path)
        )

    # Context-manager convenience; the mmap closes with the object anyway.
    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if isinstance(self._buffer, mmap.mmap):
            self._buffer.close()

    def _blocks(self, skip_entries: int = 0) -> Iterator[Tuple[int, memoryview]]:
        """Yield (entries_in_block, payload) pairs, skipping whole blocks.

        ``skip_entries`` full records are skipped; blocks wholly inside
        the skip are passed over without reading their payloads (only the
        8-byte block header is touched).  The first yielded pair may
        still contain records that the caller must discard (the skip
        remainder) — :meth:`entries` handles that.
        """
        buffer = self._buffer
        view = memoryview(buffer)
        offset = self._first_block_offset
        total = len(buffer)
        remaining = self.header.entries
        block_entries = self.header.block_entries
        seen_blocks = 0
        while remaining > 0:
            if offset + _BLOCK_STRUCT.size > total:
                raise TraceFormatError(
                    f"{self.path}: truncated at block {seen_blocks} "
                    f"(file ends inside the block header)"
                )
            payload_len, crc = _BLOCK_STRUCT.unpack_from(buffer, offset)
            offset += _BLOCK_STRUCT.size
            if offset + payload_len > total:
                raise TraceFormatError(
                    f"{self.path}: truncated at block {seen_blocks} "
                    f"(payload needs {payload_len} bytes, file has "
                    f"{total - offset})"
                )
            in_block = min(block_entries, remaining)
            if skip_entries >= in_block:
                skip_entries -= in_block
            else:
                payload = view[offset : offset + payload_len]
                if zlib.crc32(payload) != crc:
                    raise TraceFormatError(
                        f"{self.path}: checksum mismatch in block "
                        f"{seen_blocks}: the file is corrupt"
                    )
                yield in_block, payload
            offset += payload_len
            remaining -= in_block
            seen_blocks += 1
        if seen_blocks != self.header.blocks:
            raise TraceFormatError(
                f"{self.path}: header promises {self.header.blocks} blocks, "
                f"found {seen_blocks}"
            )

    def entries(
        self, start: int = 0, limit: Optional[int] = None, offset: int = 0
    ) -> Iterator[TraceEntry]:
        """Decode records ``start:start+limit``, adding ``offset`` to addresses.

        Blocks before ``start`` are skipped without decoding.  Memory is
        bounded by one block regardless of trace length.  The stream is
        flattened from :meth:`entry_batches` through the C chain iterator,
        so per-entry consumers (``next(core.trace)``) never resume a
        Python generator frame per record (DESIGN.md §15).
        """
        return chain.from_iterable(
            self.entry_batches(start=start, limit=limit, offset=offset)
        )

    def entry_batches(
        self, start: int = 0, limit: Optional[int] = None, offset: int = 0
    ) -> Iterator[List[TraceEntry]]:
        """Decode the same window as :meth:`entries`, one list per block.

        The final batch may be short (the limit can land mid-block); a
        window that ends mid-block returns without validating that
        block's trailing bytes, exactly like the per-entry decoder did.
        """
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        to_yield = limit if limit is not None else self.header.entries
        if to_yield <= 0:
            return
        block_entries = self.header.block_entries
        skip_blocks_entries = (start // block_entries) * block_entries
        drop = start - skip_blocks_entries
        unzigzag = _unzigzag
        read_varint = _read_varint
        entry_new = tuple.__new__
        entry_cls = TraceEntry
        for in_block, payload in self._blocks(skip_entries=skip_blocks_entries):
            position = 0
            line = 0
            batch: List[TraceEntry] = []
            batch_append = batch.append
            done = False
            for _ in range(in_block):
                gap_write, position = read_varint(payload, position)
                delta, position = read_varint(payload, position)
                pc, position = read_varint(payload, position)
                line += unzigzag(delta)
                if drop > 0:
                    drop -= 1
                    continue
                batch_append(
                    entry_new(
                        entry_cls,
                        (gap_write >> 1, line + offset, pc, bool(gap_write & 1)),
                    )
                )
                to_yield -= 1
                if to_yield <= 0:
                    done = True
                    break
            if done:
                if batch:
                    yield batch
                return
            if position != len(payload):
                raise TraceFormatError(
                    f"{self.path}: block payload has {len(payload) - position} "
                    "trailing bytes after its last record"
                )
            if batch:
                yield batch

    def __iter__(self) -> Iterator[TraceEntry]:
        return self.entries()


def read_trace(
    path: PathLike,
    start: int = 0,
    limit: Optional[int] = None,
    offset: int = 0,
) -> Iterator[TraceEntry]:
    """Decode a trace file lazily (constant memory; see :class:`TraceReader`)."""
    reader = TraceReader(path)
    return reader.entries(start=start, limit=limit, offset=offset)


def validate_trace(path: PathLike) -> TraceHeader:
    """Fully verify one trace file; returns its header or raises.

    Checks, in order: header magic/version, every block's length and
    CRC, record counts, per-block trailing bytes, and finally that the
    canonical stream recomputed from the decoded entries matches the
    embedded content digest.
    """
    reader = TraceReader(path)
    digest = hashlib.sha256()
    prev_line = 0
    count = 0
    record = bytearray()
    for entry in reader.entries():
        record.clear()
        _encode_record(record, entry, prev_line)
        digest.update(record)
        prev_line = entry.line_addr
        count += 1
    if count != reader.header.entries:
        raise TraceFormatError(
            f"{path}: header promises {reader.header.entries} entries, "
            f"decoded {count}"
        )
    if digest.hexdigest() != reader.header.digest:
        raise TraceFormatError(
            f"{path}: content digest mismatch — the payload does not match "
            f"the header digest {reader.header.digest[:16]}..."
        )
    return reader.header
