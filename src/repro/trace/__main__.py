"""Trace toolbox CLI: ``python -m repro.trace``.

Subcommands::

    convert   <input> <output.rtr> [--from champsim|gem5|repro-text]
    synth     <benchmark> <output.rtr> --accesses N [--seed S]
    info      <trace.rtr> [--json]
    validate  <trace.rtr>
    head      <trace.rtr> [-n 10] [--start K]
    profile   <trace.rtr> [--name X] [--limit N] [--json]

Examples::

    python -m repro.trace convert dumps/mcf.l2.txt traces/mcf.rtr
    python -m repro.trace convert gem5.csv traces/app.rtr --from gem5 \\
        --ticks-per-instr 500
    python -m repro.trace synth swim traces/swim.rtr --accesses 100000
    REPRO_TRACE_PATH=traces python -m repro simulate --cores 1 \\
        --benchmarks trace:mcf --accesses 5000
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.trace.convert import (
    CONVERTERS,
    DEFAULT_TICKS_PER_INSTR,
    ConvertError,
    convert,
    sniff_dialect,
)
from repro.trace.format import (
    DEFAULT_BLOCK_ENTRIES,
    TraceFormatError,
    TraceReader,
    probe_header,
    validate_trace,
    write_trace,
)
from repro.trace.profile import measure_trace, profile_from_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    conv = sub.add_parser("convert", help="convert an access dump to .rtr")
    conv.add_argument("input")
    conv.add_argument("output")
    conv.add_argument(
        "--from",
        dest="dialect",
        choices=CONVERTERS,
        default=None,
        help="input dialect (default: sniffed from suffix/content)",
    )
    conv.add_argument("--line-bytes", type=int, default=64)
    conv.add_argument(
        "--ticks-per-instr",
        type=int,
        default=DEFAULT_TICKS_PER_INSTR,
        help="gem5 tick-to-instruction divisor (gem5 dialect only)",
    )
    conv.add_argument("--limit", type=int, default=None)
    conv.add_argument("--block-entries", type=int, default=DEFAULT_BLOCK_ENTRIES)

    synth = sub.add_parser(
        "synth", help="render a synthetic benchmark profile into a .rtr trace"
    )
    synth.add_argument("benchmark")
    synth.add_argument("output")
    synth.add_argument("--accesses", type=int, default=100_000)
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument("--block-entries", type=int, default=DEFAULT_BLOCK_ENTRIES)

    info = sub.add_parser("info", help="print the header of a trace")
    info.add_argument("trace")
    info.add_argument("--json", action="store_true")

    val = sub.add_parser(
        "validate", help="fully verify blocks, counts and content digest"
    )
    val.add_argument("trace")

    head = sub.add_parser("head", help="print the first records of a trace")
    head.add_argument("trace")
    head.add_argument("-n", "--count", type=int, default=10)
    head.add_argument("--start", type=int, default=0)

    prof = sub.add_parser(
        "profile", help="measure the trace and derive a BenchmarkProfile"
    )
    prof.add_argument("trace")
    prof.add_argument("--name", default=None)
    prof.add_argument("--start", type=int, default=0)
    prof.add_argument("--limit", type=int, default=None)
    prof.add_argument("--json", action="store_true")
    return parser


def _cmd_convert(args) -> int:
    dialect = args.dialect or sniff_dialect(args.input)
    header = convert(
        args.input,
        args.output,
        dialect,
        line_bytes=args.line_bytes,
        ticks_per_instr=args.ticks_per_instr,
        limit=args.limit,
        block_entries=args.block_entries,
    )
    print(
        f"converted {args.input} ({dialect}) -> {args.output}: "
        f"{header.entries} entries in {header.blocks} blocks, "
        f"digest {header.digest[:16]}..."
    )
    return 0


def _cmd_synth(args) -> int:
    from repro.workloads import make_trace

    header = write_trace(
        args.output,
        make_trace(args.benchmark, seed=args.seed),
        limit=args.accesses,
        block_entries=args.block_entries,
    )
    print(
        f"synthesized {args.benchmark} (seed {args.seed}) -> {args.output}: "
        f"{header.entries} entries, digest {header.digest[:16]}..."
    )
    return 0


def _cmd_info(args) -> int:
    header = probe_header(args.trace)
    if args.json:
        print(json.dumps(header.to_dict(), indent=2, sort_keys=True))
        return 0
    for key, value in header.to_dict().items():
        print(f"{key:>14}: {value}")
    return 0


def _cmd_validate(args) -> int:
    header = validate_trace(args.trace)
    print(
        f"{args.trace}: OK — {header.entries} entries, {header.blocks} "
        f"blocks, digest {header.digest}"
    )
    return 0


def _cmd_head(args) -> int:
    reader = TraceReader(args.trace)
    print("gap line_addr pc write")
    for entry in reader.entries(start=args.start, limit=args.count):
        print(
            f"{entry.gap} {entry.line_addr:#x} {entry.pc:#x} "
            f"{'W' if entry.is_write else '-'}"
        )
    return 0


def _cmd_profile(args) -> int:
    stats = measure_trace(args.trace, start=args.start, limit=args.limit)
    profile = profile_from_trace(
        args.trace, name=args.name, start=args.start, limit=args.limit
    )
    if args.json:
        payload = {"measured": stats.to_dict(), "profile": profile.__dict__}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print("measured:")
    for key, value in stats.to_dict().items():
        print(f"  {key:>16}: {value}")
    print("derived BenchmarkProfile:")
    for key, value in sorted(profile.__dict__.items()):
        print(f"  {key:>16}: {value}")
    return 0


_COMMANDS = {
    "convert": _cmd_convert,
    "synth": _cmd_synth,
    "info": _cmd_info,
    "validate": _cmd_validate,
    "head": _cmd_head,
    "profile": _cmd_profile,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ConvertError, TraceFormatError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
