"""Converters from common L2-access dump formats into ``.rtr`` traces.

Each converter streams its input line by line through a
:class:`~repro.trace.format.TraceWriter`, so arbitrarily large dumps
convert in constant memory.  All converters share the same output
contract: one :class:`~repro.core.trace.TraceEntry` per input access,
with byte addresses reduced to *line* addresses (``addr >> log2(line
bytes)``) and inter-access distances expressed in instructions.

Supported input dialects:

* **champsim** — whitespace-separated ChampSim-style L2 access dumps::

      <instr_id> <address> <type> [<pc>]

  ``instr_id`` is the (monotonically non-decreasing) retired-instruction
  count at the access; ``address``/``pc`` are hex (``0x`` optional) or
  decimal; ``type`` is one of R, L, P (reads) or W, S, RFO, WB (writes).
  The gap of entry *i* is ``instr_id[i] - instr_id[i-1]`` clamped at 0.

* **gem5** — gem5-style CSV packet dumps with a header row naming at
  least ``tick``, ``cmd`` and ``addr`` columns (``pc`` optional)::

      tick,cmd,addr,pc
      1000,ReadReq,0x80000040,0x400123

  Commands containing ``Write`` (WriteReq, WritebackDirty, ...) are
  stores; everything else is a load.  Ticks are converted to instruction
  gaps with ``ticks_per_instr`` (gem5 counts picoseconds-ish ticks, not
  instructions — the knob is the stand-in for a real instruction
  stream and defaults to 500).

* **repro-text** — the legacy gzip text format written by
  :func:`repro.core.tracefile.save_trace` (``gap addr pc [W]``).

Blank lines and ``#`` comments are ignored everywhere.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.core.trace import TraceEntry
from repro.core.tracefile import load_trace
from repro.trace.format import DEFAULT_BLOCK_ENTRIES, TraceHeader, write_trace

PathLike = Union[str, Path]

CONVERTERS = ("champsim", "gem5", "repro-text")

_READ_TYPES = {"R", "L", "P"}
_WRITE_TYPES = {"W", "S", "RFO", "WB"}

DEFAULT_TICKS_PER_INSTR = 500


class ConvertError(ValueError):
    """An input dump line could not be parsed; the message names it."""


def _parse_int(token: str, where: str, what: str) -> int:
    """Parse a decimal or hex (with or without ``0x``) non-negative int."""
    text = token.strip()
    try:
        if text.lower().startswith("0x"):
            value = int(text, 16)
        elif any(c in "abcdefABCDEF" for c in text):
            value = int(text, 16)
        else:
            value = int(text, 10)
    except ValueError:
        raise ConvertError(f"{where}: {what} {token!r} is not a number") from None
    if value < 0:
        raise ConvertError(f"{where}: {what} {token!r} is negative")
    return value


def _line_shift(line_bytes: int) -> int:
    shift = line_bytes.bit_length() - 1
    if line_bytes <= 0 or (1 << shift) != line_bytes:
        raise ConvertError(f"line_bytes must be a power of two, got {line_bytes}")
    return shift


def iter_champsim(path: PathLike, line_bytes: int = 64) -> Iterator[TraceEntry]:
    """Parse a ChampSim-style dump into trace entries (streaming)."""
    shift = _line_shift(line_bytes)
    prev_instr: Optional[int] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            text = raw.strip()
            if not text or text.startswith("#"):
                continue
            fields = text.split()
            where = f"{path}:{line_number}"
            if len(fields) not in (3, 4):
                raise ConvertError(
                    f"{where}: expected '<instr_id> <address> <type> [<pc>]', "
                    f"got {text!r}"
                )
            instr_id = _parse_int(fields[0], where, "instr_id")
            address = _parse_int(fields[1], where, "address")
            access_type = fields[2].upper()
            if access_type in _WRITE_TYPES:
                is_write = True
            elif access_type in _READ_TYPES:
                is_write = False
            else:
                raise ConvertError(
                    f"{where}: unknown access type {fields[2]!r}; expected one "
                    f"of {', '.join(sorted(_READ_TYPES | _WRITE_TYPES))}"
                )
            pc = _parse_int(fields[3], where, "pc") if len(fields) == 4 else 0
            gap = 0 if prev_instr is None else max(0, instr_id - prev_instr)
            prev_instr = instr_id
            yield TraceEntry(gap, address >> shift, pc, is_write)


def iter_gem5(
    path: PathLike,
    line_bytes: int = 64,
    ticks_per_instr: int = DEFAULT_TICKS_PER_INSTR,
) -> Iterator[TraceEntry]:
    """Parse a gem5-style CSV packet dump into trace entries (streaming)."""
    shift = _line_shift(line_bytes)
    if ticks_per_instr <= 0:
        raise ConvertError(f"ticks_per_instr must be positive, got {ticks_per_instr}")
    prev_tick: Optional[int] = None
    with open(path, "r", encoding="utf-8", newline="") as handle:
        rows = csv.reader(handle)
        columns = None
        for row_number, row in enumerate(rows, start=1):
            if not row or (row[0].strip().startswith("#")):
                continue
            where = f"{path}:{row_number}"
            if columns is None:
                columns = {name.strip().lower(): i for i, name in enumerate(row)}
                missing = {"tick", "cmd", "addr"} - set(columns)
                if missing:
                    raise ConvertError(
                        f"{where}: gem5 CSV header must name tick, cmd and "
                        f"addr columns; missing {', '.join(sorted(missing))} "
                        f"in {row!r}"
                    )
                continue
            try:
                tick_token = row[columns["tick"]]
                cmd = row[columns["cmd"]].strip()
                addr_token = row[columns["addr"]]
            except IndexError:
                raise ConvertError(
                    f"{where}: row has {len(row)} fields, header promised "
                    f"{len(columns)}"
                ) from None
            tick = _parse_int(tick_token, where, "tick")
            address = _parse_int(addr_token, where, "addr")
            pc_index = columns.get("pc")
            pc = (
                _parse_int(row[pc_index], where, "pc")
                if pc_index is not None and pc_index < len(row) and row[pc_index].strip()
                else 0
            )
            is_write = "write" in cmd.lower()
            gap = (
                0
                if prev_tick is None
                else max(0, (tick - prev_tick) // ticks_per_instr)
            )
            prev_tick = tick
            yield TraceEntry(gap, address >> shift, pc, is_write)


def iter_repro_text(path: PathLike) -> Iterator[TraceEntry]:
    """Parse the legacy gzip text format (``repro.core.tracefile``)."""
    return load_trace(path)


def convert(
    source: PathLike,
    destination: PathLike,
    dialect: str,
    *,
    line_bytes: int = 64,
    ticks_per_instr: int = DEFAULT_TICKS_PER_INSTR,
    limit: Optional[int] = None,
    block_entries: int = DEFAULT_BLOCK_ENTRIES,
) -> TraceHeader:
    """Convert one input dump into a ``.rtr`` trace; returns its header."""
    if dialect == "champsim":
        entries = iter_champsim(source, line_bytes=line_bytes)
    elif dialect == "gem5":
        entries = iter_gem5(
            source, line_bytes=line_bytes, ticks_per_instr=ticks_per_instr
        )
    elif dialect == "repro-text":
        entries = iter_repro_text(source)
    else:
        raise ConvertError(
            f"unknown input dialect {dialect!r}; known: {', '.join(CONVERTERS)}"
        )
    return write_trace(
        destination, entries, limit=limit, block_entries=block_entries
    )


def sniff_dialect(path: PathLike) -> str:
    """Best-effort input dialect guess from suffix and first bytes."""
    name = str(path).lower()
    if name.endswith((".gz", ".trace.gz")):
        return "repro-text"
    if name.endswith(".csv"):
        return "gem5"
    try:
        with open(path, "rb") as handle:
            head = handle.read(2)
        if head == b"\x1f\x8b":  # gzip magic
            return "repro-text"
    except OSError:
        pass
    return "champsim"
